//! # symbi-net — socket transport for the SYMBIOSYS fabric
//!
//! Implements the fabric's [`Transport`] trait over real OS sockets (TCP
//! and Unix-domain), so Mercury/Margo/services code written against
//! [`symbi_fabric::Fabric`] runs unchanged with servers and clients in
//! **separate OS processes**.
//!
//! The wire protocol is a length-prefixed framing
//! (`[len u32 LE][type u8][body]`, see [`wire`]) carrying:
//!
//! * `MSG` — two-sided sends; the payload bytes (the Mercury header with
//!   its span/parent-span/hop trace context plus the user body) cross the
//!   wire byte-identically, so eager-size thresholds and header decoding
//!   behave exactly as in-process.
//! * `GET_REQ`/`GET_RESP`, `PUT_REQ`/`PUT_RESP` — one-sided RDMA
//!   emulation: `rdma_get`/`rdma_put` against a remote key become
//!   explicit pull/push requests served from the owner's registered-
//!   region table.
//! * `HELLO` — the connection handshake exchanging node ids.
//!
//! Use [`NetTransport::start`] with a [`NetConfig`], then wrap it with
//! [`fabric_over`] (or `Fabric::from_transport`):
//!
//! ```no_run
//! use symbi_net::{fabric_over, NetConfig};
//!
//! let server = fabric_over(NetConfig::listen("tcp://127.0.0.1:0")).unwrap();
//! let url = server.listen_url().unwrap();
//! let ep = server.open_endpoint();
//!
//! let client = fabric_over(NetConfig::client()).unwrap();
//! let server_addr = client.lookup(&url).unwrap();
//! # let _ = (ep, server_addr);
//! ```

#![warn(missing_docs)]

mod poll;
mod stream;
mod transport;
pub mod wire;

pub use stream::{NetListener, NetStream};
pub use transport::{NetConfig, NetTransport};

use std::io;
use std::sync::Arc;
use symbi_fabric::{Fabric, Transport};

/// Start a socket transport and wrap it in a [`Fabric`] handle.
pub fn fabric_over(config: NetConfig) -> io::Result<Fabric> {
    let transport = NetTransport::start(config)?;
    let dyn_transport: Arc<dyn Transport> = Arc::new(transport);
    Ok(Fabric::from_transport(dyn_transport))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::time::Duration;

    fn pair(listen: &str) -> (Fabric, Fabric, String) {
        let server =
            fabric_over(NetConfig::listen(listen).with_rdma_timeout(Duration::from_secs(2)))
                .unwrap();
        let url = server.listen_url().unwrap();
        let client =
            fabric_over(NetConfig::client().with_rdma_timeout(Duration::from_secs(2))).unwrap();
        (server, client, url)
    }

    fn unix_url(tag: &str) -> String {
        format!(
            "unix://{}",
            std::env::temp_dir()
                .join(format!("symbi-net-{tag}-{}.sock", std::process::id()))
                .display()
        )
    }

    #[test]
    fn tcp_echo_roundtrip() {
        let (server, client, url) = pair("tcp://127.0.0.1:0");
        let srv_ep = server.open_endpoint();
        let cli_ep = client.open_endpoint();
        let srv_addr = client.lookup(&url).unwrap();
        assert_eq!(srv_addr, srv_ep.addr());

        client
            .send(cli_ep.addr(), srv_addr, 42, Bytes::from_static(b"ping"))
            .unwrap();
        let got = srv_ep.poll_timeout(16, Duration::from_secs(2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tag, 42);
        assert_eq!(&got[0].payload[..], b"ping");
        assert_eq!(got[0].src, cli_ep.addr());

        // Reply over the same socket: no listener on the client side.
        server
            .send(srv_ep.addr(), got[0].src, 43, Bytes::from_static(b"pong"))
            .unwrap();
        let back = cli_ep.poll_timeout(16, Duration::from_secs(2));
        assert_eq!(back.len(), 1);
        assert_eq!(&back[0].payload[..], b"pong");
    }

    #[cfg(unix)]
    #[test]
    fn unix_echo_roundtrip() {
        let (server, client, url) = pair(&unix_url("echo"));
        let srv_ep = server.open_endpoint();
        let cli_ep = client.open_endpoint();
        let srv_addr = client.lookup(&url).unwrap();
        client
            .send(cli_ep.addr(), srv_addr, 7, Bytes::from_static(b"over-unix"))
            .unwrap();
        let got = srv_ep.poll_timeout(16, Duration::from_secs(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b"over-unix");
        assert_eq!(server.kind(), "unix");
    }

    #[test]
    fn cross_process_style_rdma_get_and_put() {
        let (server, client, url) = pair("tcp://127.0.0.1:0");
        let _srv_ep = server.open_endpoint();
        let _ = client.lookup(&url).unwrap();

        // Pull: server exposes, client gets by key across the socket.
        let data: Vec<u8> = (0..100_000).map(|i| (i % 241) as u8).collect();
        let region = server.expose_read(Arc::new(data.clone()));
        let pulled = client.rdma_get(region.key, 0, region.len).unwrap();
        assert_eq!(&pulled[..], &data[..]);
        let mid = client.rdma_get(region.key, 1000, 64).unwrap();
        assert_eq!(&mid[..], &data[1000..1064]);

        // Push: server exposes writable, client puts.
        let (wregion, buf) = server.expose_write(256);
        client.rdma_put(wregion.key, 16, b"written-across").unwrap();
        assert_eq!(&buf.read()[16..30], b"written-across");

        // Error statuses travel back decoded.
        assert!(matches!(
            client.rdma_get(region.key, region.len, 1),
            Err(symbi_fabric::FabricError::OutOfBounds { .. })
        ));
        assert!(matches!(
            client.rdma_put(region.key, 0, b"x"),
            Err(symbi_fabric::FabricError::ReadOnlyRegion(_))
        ));
        server.unregister(region.key);
        assert!(matches!(
            client.rdma_get(region.key, 0, 1),
            Err(symbi_fabric::FabricError::UnknownMemory(_))
        ));
    }

    #[test]
    fn restarted_peer_does_not_receive_stale_addressed_sends() {
        // The satellite regression: a peer that dies and comes back at the
        // SAME url but as a new incarnation must never see deliveries
        // addressed to its old incarnation.
        let url = "tcp://127.0.0.1:0";
        let server1 = fabric_over(NetConfig::listen(url).with_node_id(1111)).unwrap();
        let bound = server1.listen_url().unwrap();
        let srv_ep1 = server1.open_endpoint();
        let client = fabric_over(NetConfig::client().with_node_id(3333)).unwrap();
        let cli_ep = client.open_endpoint();
        let old_addr = client.lookup(&bound).unwrap();
        client
            .send(cli_ep.addr(), old_addr, 1, Bytes::from_static(b"first"))
            .unwrap();
        assert_eq!(srv_ep1.poll_timeout(16, Duration::from_secs(2)).len(), 1);

        // Kill incarnation one; restart on the same port with a new node
        // id (as a restarted process would have).
        let port_url = bound.clone();
        drop(srv_ep1);
        drop(server1);
        std::thread::sleep(Duration::from_millis(50));
        let server2 = fabric_over(NetConfig::listen(&port_url).with_node_id(2222)).unwrap();
        let srv_ep2 = server2.open_endpoint();

        // Sending to the OLD address must fail (peer identity changed),
        // not get delivered to the new incarnation's endpoint.
        let err = client
            .send(cli_ep.addr(), old_addr, 2, Bytes::from_static(b"stale"))
            .unwrap_err();
        assert!(err.retryable(), "wire failure should be retryable: {err}");
        assert!(srv_ep2
            .poll_timeout(16, Duration::from_millis(200))
            .is_empty());

        // A fresh lookup resolves the new incarnation and works.
        let new_addr = client.lookup(&port_url).unwrap();
        assert_ne!(new_addr, old_addr);
        client
            .send(cli_ep.addr(), new_addr, 3, Bytes::from_static(b"fresh"))
            .unwrap();
        let got = srv_ep2.poll_timeout(16, Duration::from_secs(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b"fresh");
    }

    #[test]
    fn reconnect_same_identity_is_transparent_and_counted() {
        // Keep a direct handle on the server transport so we can bounce
        // its links mid-test.
        let server_t =
            Arc::new(NetTransport::start(NetConfig::listen("tcp://127.0.0.1:0")).unwrap());
        let server = Fabric::from_transport(server_t.clone() as Arc<dyn Transport>);
        let url = server.listen_url().unwrap();
        let client = fabric_over(NetConfig::client()).unwrap();
        let srv_ep = server.open_endpoint();
        let cli_ep = client.open_endpoint();
        let srv_addr = client.lookup(&url).unwrap();
        client
            .send(cli_ep.addr(), srv_addr, 1, Bytes::from_static(b"a"))
            .unwrap();
        assert_eq!(srv_ep.poll_timeout(16, Duration::from_secs(2)).len(), 1);

        // Bounce the link: the server drops every connection (as if the
        // NIC reset); the same server process keeps running, so the
        // client's next send must re-dial the same node id transparently.
        let before = client.link_stats().unwrap().reconnects;
        server_t.close_all_connections();
        std::thread::sleep(Duration::from_millis(100));
        client
            .send(cli_ep.addr(), srv_addr, 2, Bytes::from_static(b"b"))
            .unwrap();
        let after = client.link_stats().unwrap().reconnects;
        assert_eq!(
            after,
            before + 1,
            "link bounce should cost exactly one reconnect"
        );
        let got = srv_ep.poll_timeout(16, Duration::from_secs(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b"b");
    }

    #[test]
    fn link_stats_track_frames_and_bytes_per_peer() {
        let (server, client, url) = pair("tcp://127.0.0.1:0");
        let srv_ep = server.open_endpoint();
        let cli_ep = client.open_endpoint();
        let srv_addr = client.lookup(&url).unwrap();
        for i in 0..10u64 {
            client
                .send(
                    cli_ep.addr(),
                    srv_addr,
                    i,
                    Bytes::from_static(b"0123456789"),
                )
                .unwrap();
        }
        let mut seen = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while seen < 10 && std::time::Instant::now() < deadline {
            seen += srv_ep.poll_timeout(16, Duration::from_millis(100)).len();
        }
        assert_eq!(seen, 10);
        let cli_stats = client.link_stats().unwrap();
        assert_eq!(cli_stats.frames_sent, 10);
        assert!(cli_stats.bytes_sent >= 10 * 10);
        assert_eq!(cli_stats.connects, 1);
        assert_eq!(cli_stats.per_link.len(), 1);
        let srv_stats = server.link_stats().unwrap();
        assert_eq!(srv_stats.frames_received, 10);
        assert_eq!(srv_stats.accepts, 1);
        assert_eq!(srv_stats.active_links(), 1);
    }

    #[test]
    fn fault_blackout_applies_over_the_socket() {
        use symbi_fabric::FaultPlan;
        let (server, client, url) = pair("tcp://127.0.0.1:0");
        let srv_ep = server.open_endpoint();
        let cli_ep = client.open_endpoint();
        let srv_addr = client.lookup(&url).unwrap();

        client.install_fault_plan(FaultPlan::seeded(42).with_blackout(
            srv_addr,
            Duration::ZERO,
            Duration::from_millis(300),
        ));
        client
            .send(cli_ep.addr(), srv_addr, 1, Bytes::from_static(b"dropped"))
            .unwrap();
        assert!(
            srv_ep
                .poll_timeout(16, Duration::from_millis(150))
                .is_empty(),
            "blacked-out send must not cross the wire"
        );
        std::thread::sleep(Duration::from_millis(300));
        client
            .send(cli_ep.addr(), srv_addr, 2, Bytes::from_static(b"after"))
            .unwrap();
        let got = srv_ep.poll_timeout(16, Duration::from_secs(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b"after");
        let counters = client.fault_counters().unwrap();
        assert_eq!(counters.blackout_drops, 1);
    }

    #[test]
    fn lookup_is_cached_and_kind_reported() {
        let (server, client, url) = pair("tcp://127.0.0.1:0");
        let _ep = server.open_endpoint();
        let a = client.lookup(&url).unwrap();
        let b = client.lookup(&url).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            client.link_stats().unwrap().connects,
            1,
            "second lookup cached"
        );
        assert_eq!(server.kind(), "tcp");
        assert!(server.listen_url().is_some());
        assert!(client.listen_url().is_none());
    }

    #[test]
    fn send_to_unknown_node_fails_fast() {
        let client = fabric_over(NetConfig::client().with_node_id(77)).unwrap();
        let ep = client.open_endpoint();
        let bogus = symbi_fabric::Addr((999u64 << 32) | 1);
        let err = client.send(ep.addr(), bogus, 0, Bytes::new()).unwrap_err();
        assert!(err.retryable());
        assert!(client.lookup("tcp://127.0.0.1:1").is_err());
    }

    #[test]
    fn coalescing_counters_account_every_frame() {
        let (server, client, url) = pair("tcp://127.0.0.1:0");
        let srv_ep = server.open_endpoint();
        let srv_addr = client.lookup(&url).unwrap();
        // Many sender threads race on one connection: every frame must
        // travel through the coalescing flush path and be accounted.
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let client = client.clone();
                std::thread::spawn(move || {
                    let ep = client.open_endpoint();
                    for i in 0..50u64 {
                        client
                            .send(ep.addr(), srv_addr, (t << 16) | i, Bytes::from_static(b"x"))
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut seen = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen < 400 && std::time::Instant::now() < deadline {
            seen += srv_ep.poll_timeout(64, Duration::from_millis(100)).len();
        }
        assert_eq!(seen, 400);
        let s = client.link_stats().unwrap();
        assert_eq!(s.msg_frames_sent, 400);
        assert_eq!(s.frames_sent, 400);
        assert_eq!(
            s.coalesced_frames, 400,
            "every frame crosses through the flush path"
        );
        assert!(s.flushes >= 1 && s.flushes <= 400);
        assert!(s.max_frames_per_flush >= 1);
        assert_eq!(s.send_queue_depth, 0, "all queues drained");
        // The server's receive side saw every MSG too.
        let r = server.link_stats().unwrap();
        assert_eq!(r.msg_frames_received, 400);
        assert!(r.reactor_wakeups >= 1);
        assert!(r.reactor_loop_ns_max >= 1);
    }

    #[test]
    fn peer_shutdown_synthesizes_link_down_to_endpoints() {
        use symbi_fabric::LINK_DOWN_TAG;
        let server_t =
            Arc::new(NetTransport::start(NetConfig::listen("tcp://127.0.0.1:0")).unwrap());
        let server = Fabric::from_transport(server_t.clone() as Arc<dyn Transport>);
        let url = server.listen_url().unwrap();
        let _srv_ep = server.open_endpoint();
        let client = fabric_over(NetConfig::client()).unwrap();
        let cli_ep = client.open_endpoint();
        let srv_addr = client.lookup(&url).unwrap();
        let srv_node = (srv_addr.0 >> 32) as u32;

        // Kill the server: the client's reactor must notice EOF and
        // synthesize exactly one link-down delivery per local endpoint,
        // tagged with the reserved control tag and carrying the dead
        // peer's node id.
        server_t.shutdown();
        let got = cli_ep.poll_timeout(16, Duration::from_secs(2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tag, LINK_DOWN_TAG);
        assert_eq!(got[0].src.node(), srv_node);
        assert!(got[0].payload.is_empty());
    }

    #[test]
    fn reconnect_does_not_leak_parked_rdma_ops() {
        let server_t =
            Arc::new(NetTransport::start(NetConfig::listen("tcp://127.0.0.1:0")).unwrap());
        let server = Fabric::from_transport(server_t.clone() as Arc<dyn Transport>);
        let url = server.listen_url().unwrap();
        let _srv_ep = server.open_endpoint();
        let client =
            fabric_over(NetConfig::client().with_rdma_timeout(Duration::from_secs(2))).unwrap();
        let _ = client.lookup(&url).unwrap();

        let data: Vec<u8> = (0..10_000).map(|i| (i % 13) as u8).collect();
        let region = server.expose_read(Arc::new(data.clone()));
        assert_eq!(
            &client.rdma_get(region.key, 0, 64).unwrap()[..],
            &data[..64]
        );

        // Bounce the link and go again: the re-dialed connection must
        // serve one-sided ops, and no pending slot may survive either the
        // bounce or the successful second op.
        server_t.close_all_connections();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            &client.rdma_get(region.key, 64, 64).unwrap()[..],
            &data[64..128]
        );
        assert_eq!(client.link_stats().unwrap().parked_rdma_ops, 0);
        assert_eq!(server.link_stats().unwrap().parked_rdma_ops, 0);
    }

    #[test]
    fn local_delivery_within_one_net_transport() {
        // Two endpoints in the same process short-circuit: no socket hop.
        let fabric = fabric_over(NetConfig::client()).unwrap();
        let a = fabric.open_endpoint();
        let b = fabric.open_endpoint();
        fabric
            .send(a.addr(), b.addr(), 5, Bytes::from_static(b"loopback"))
            .unwrap();
        let got = b.poll_timeout(16, Duration::from_secs(1));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b"loopback");
        assert_eq!(fabric.link_stats().unwrap().frames_sent, 0);
    }
}
