//! The socket-backed [`Transport`] implementation.
//!
//! ## Address scheme
//!
//! Every process picks a 32-bit **node id** (from `SYMBI_NET_NODE_ID` or
//! derived from the pid and clock). Fabric addresses and memory keys pack
//! it into their high 32 bits: `Addr = node << 32 | endpoint`,
//! `MemKey = node << 32 | registration`. Routing a send or an RDMA
//! operation is then a single shift: the high bits name the owning
//! process, the low bits the object inside it. A restarted peer draws a
//! fresh node id, so addresses of a dead incarnation can never alias into
//! the new one — the socket-transport equivalent of the local transport's
//! route-generation stamp.
//!
//! ## Connections
//!
//! One socket per peer pair, established by [`NetTransport`]'s `lookup`
//! (client side) or the accept loop (server side), with a `HELLO`
//! exchange identifying node ids. Responses travel back over the same
//! socket, so only servers need to listen.
//!
//! ## The reactor
//!
//! A single **reactor thread** per transport multiplexes every live
//! connection with `poll(2)` over non-blocking sockets (plus a self-pipe
//! for wakeups), replacing the old reader-thread-per-connection design.
//! Readable sockets are drained into per-connection [`wire::FrameDecoder`]
//! buffers and complete frames demultiplexed: `MSG` into the destination
//! endpoint's completion queue, `GET_REQ`/`PUT_REQ` served from the
//! registered-region table, `*_RESP` completing the initiator's pending
//! one-sided operation. When a connection dies the reactor synthesizes a
//! link-down delivery ([`symbi_fabric::LINK_DOWN_TAG`]) into every local
//! endpoint so upper layers can fail their whole in-flight window at once
//! instead of waiting out per-RPC deadlines.
//!
//! ## The coalescing write path
//!
//! Senders never write sockets directly: they encode frames into a
//! per-connection **combining buffer** and the first sender to find no
//! flush in progress becomes the flusher, writing everything queued at
//! that moment with one socket write. Under a deep RPC pipeline this
//! turns N small `write`+`flush` syscall pairs into one large write —
//! the transport-level analogue of Mercury's handle pipelining. See
//! `NetStream::connect` for why `TCP_NODELAY` stays on despite (because
//! of) this batching.
//!
//! On a write failure to a dialed peer the flusher re-dials the URL once
//! and replays the unsent batch: same node id → transparent reconnect
//! (counted in the link stats); different node id → the peer restarted,
//! the old address is permanently dead and subsequent sends fail so the
//! caller re-`lookup`s.

use crate::stream::{NetListener, NetStream};
use crate::wire::{self, read_frame, write_frame, Frame};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use symbi_fabric::{
    Addr, Delivery, FabricError, FabricStats, FabricStatsSnapshot, FaultCountersSnapshot,
    FaultPlan, FaultSlot, LinkRow, LinkStatsSnapshot, MemKey, NetworkModel, ObsDelivery, ObsSink,
    Region, RemoteRegion, SendVerdict, Transport, LINK_DOWN_TAG,
};

#[cfg(unix)]
use crate::poll;

/// Upper bound a coalescing flush will wait for socket drain room before
/// declaring the connection wedged and tearing it down. Generous: hitting
/// it means the peer stopped reading for this long.
const FLUSH_TIMEOUT: Duration = Duration::from_secs(30);

/// Max `read` calls the reactor issues per connection per wakeup, for
/// fairness under a flooding peer; `poll` is level-triggered so leftover
/// bytes re-report immediately.
#[cfg(unix)]
const MAX_READS_PER_WAKEUP: usize = 8;

/// Configuration for a [`NetTransport`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// URL to listen on (`tcp://host:port`, port 0 picks a free one, or
    /// `unix:///path`). `None` for pure clients — they reach servers via
    /// `lookup` and receive responses over the dialed socket.
    pub listen: Option<String>,
    /// Node id override; defaults to `SYMBI_NET_NODE_ID` or a value
    /// derived from the pid and clock.
    pub node_id: Option<u32>,
    /// How long a cross-process `rdma_get`/`rdma_put` waits for its
    /// response frame before failing as a (retryable) transport error.
    pub rdma_timeout: Duration,
    /// How long connect/accept waits for the peer's `HELLO`.
    pub handshake_timeout: Duration,
}

impl NetConfig {
    /// Listen on the given URL with default timeouts.
    pub fn listen(url: impl Into<String>) -> Self {
        NetConfig {
            listen: Some(url.into()),
            ..NetConfig::client()
        }
    }

    /// A non-listening (client) configuration with default timeouts.
    pub fn client() -> Self {
        NetConfig {
            listen: None,
            node_id: None,
            rdma_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(5),
        }
    }

    /// Override the node id (mainly for tests; colliding node ids between
    /// communicating processes are rejected at handshake).
    #[must_use]
    pub fn with_node_id(mut self, node: u32) -> Self {
        self.node_id = Some(node);
        self
    }

    /// Override the cross-process RDMA response timeout.
    #[must_use]
    pub fn with_rdma_timeout(mut self, timeout: Duration) -> Self {
        self.rdma_timeout = timeout;
        self
    }
}

fn pack(node: u32, low: u32) -> u64 {
    ((node as u64) << 32) | low as u64
}

fn node_of(bits: u64) -> u32 {
    (bits >> 32) as u32
}

fn low_of(bits: u64) -> u32 {
    bits as u32
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn derive_node_id() -> u32 {
    if let Ok(v) = std::env::var("SYMBI_NET_NODE_ID") {
        if let Ok(n) = v.trim().parse::<u32>() {
            if n != 0 {
                return n;
            }
        }
    }
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 32))
        .unwrap_or(0);
    let mixed = splitmix64((std::process::id() as u64) << 32 ^ nanos) as u32;
    mixed.max(1)
}

fn transport_err(op: &'static str, detail: impl std::fmt::Display) -> FabricError {
    FabricError::Transport {
        op,
        detail: detail.to_string(),
    }
}

/// Per-connection combining buffer: frames encoded by senders, flushed to
/// the socket in batches by whichever sender finds no flush in progress.
#[derive(Default)]
struct OutBuf {
    /// Encoded-but-unflushed frames, back to back.
    buf: Vec<u8>,
    /// How many frames `buf` currently holds.
    frames: u64,
    /// A flusher is active; enqueuers must not start a second one.
    flushing: bool,
}

/// One live peer connection. The reactor owns the read half; writes go
/// through the combining buffer (`out`) and the flusher takes `writer`.
struct Conn {
    peer_node: u32,
    peer_primary: u32,
    writer: Mutex<NetStream>,
    /// Combining buffer for the coalescing write path.
    out: Mutex<OutBuf>,
    /// A socket handle outside the `writer` lock, so teardown can
    /// `shutdown(2)` a connection whose flusher is mid-write without
    /// blocking on (or deadlocking with) the writer lock.
    closer: Option<NetStream>,
    alive: AtomicBool,
}

impl Conn {
    /// Mark dead and shut the socket down, unblocking any reader or
    /// flusher currently parked on it.
    fn kill(&self) {
        self.alive.store(false, Ordering::Release);
        match &self.closer {
            Some(s) => s.shutdown(),
            None => {
                if let Some(w) = self.writer.try_lock() {
                    w.shutdown();
                }
            }
        }
    }
}

/// A parked cross-process RDMA operation awaiting its response frame.
struct PendingRdma {
    node: u32,
    key: u64,
    tx: Sender<Result<Bytes, FabricError>>,
}

#[derive(Default)]
struct PerLink {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

#[derive(Default)]
struct LinkCounters {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    connects: AtomicU64,
    accepts: AtomicU64,
    reconnects: AtomicU64,
    send_failures: AtomicU64,
    msg_frames_sent: AtomicU64,
    msg_frames_received: AtomicU64,
    flushes: AtomicU64,
    coalesced_frames: AtomicU64,
    max_frames_per_flush: AtomicU64,
    reactor_wakeups: AtomicU64,
    reactor_loop_ns_total: AtomicU64,
    reactor_loop_ns_max: AtomicU64,
    per_link: RwLock<HashMap<u32, Arc<PerLink>>>,
}

impl LinkCounters {
    fn link(&self, node: u32) -> Arc<PerLink> {
        if let Some(l) = self.per_link.read().get(&node) {
            return l.clone();
        }
        self.per_link
            .write()
            .entry(node)
            .or_insert_with(|| Arc::new(PerLink::default()))
            .clone()
    }

    /// Count a coalesced flush of `frames` frames totalling `body_bytes`
    /// payload bytes to one peer (all frames in a batch share a socket,
    /// hence a peer).
    fn count_sent_batch(&self, node: u32, frames: u64, body_bytes: u64) {
        self.frames_sent.fetch_add(frames, Ordering::Relaxed);
        self.bytes_sent.fetch_add(body_bytes, Ordering::Relaxed);
        let l = self.link(node);
        l.frames_sent.fetch_add(frames, Ordering::Relaxed);
        l.bytes_sent.fetch_add(body_bytes, Ordering::Relaxed);
    }

    fn count_flush(&self, frames: u64) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.coalesced_frames.fetch_add(frames, Ordering::Relaxed);
        self.max_frames_per_flush
            .fetch_max(frames, Ordering::Relaxed);
    }

    fn count_received(&self, node: u32, body_bytes: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(body_bytes as u64, Ordering::Relaxed);
        let l = self.link(node);
        l.frames_received.fetch_add(1, Ordering::Relaxed);
        l.bytes_received
            .fetch_add(body_bytes as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LinkStatsSnapshot {
        let mut per_link: Vec<LinkRow> = self
            .per_link
            .read()
            .iter()
            .map(|(node, l)| LinkRow {
                node: *node,
                frames_sent: l.frames_sent.load(Ordering::Relaxed),
                frames_received: l.frames_received.load(Ordering::Relaxed),
                bytes_sent: l.bytes_sent.load(Ordering::Relaxed),
                bytes_received: l.bytes_received.load(Ordering::Relaxed),
            })
            .collect();
        per_link.sort_by_key(|r| r.node);
        LinkStatsSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            send_failures: self.send_failures.load(Ordering::Relaxed),
            msg_frames_sent: self.msg_frames_sent.load(Ordering::Relaxed),
            msg_frames_received: self.msg_frames_received.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            coalesced_frames: self.coalesced_frames.load(Ordering::Relaxed),
            max_frames_per_flush: self.max_frames_per_flush.load(Ordering::Relaxed),
            // Gauges filled from live transport state by `link_stats`.
            send_queue_depth: 0,
            parked_rdma_ops: 0,
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            reactor_loop_ns_total: self.reactor_loop_ns_total.load(Ordering::Relaxed),
            reactor_loop_ns_max: self.reactor_loop_ns_max.load(Ordering::Relaxed),
            per_link,
        }
    }
}

struct NetInner {
    node_id: u32,
    kind: &'static str,
    listen_url: Option<String>,
    rdma_timeout: Duration,
    handshake_timeout: Duration,
    endpoints: RwLock<HashMap<u32, Sender<Delivery>>>,
    /// First opened endpoint id — what peers' `lookup` resolves to.
    primary_ep: AtomicU32,
    next_ep: AtomicU32,
    next_key: AtomicU32,
    memory: RwLock<HashMap<u32, Region>>,
    conns: RwLock<HashMap<u32, Arc<Conn>>>,
    urls: RwLock<HashMap<String, u32>>,
    /// Reverse map for dialed peers (node → URL), consulted to re-dial
    /// when a connection died between sends.
    node_urls: RwLock<HashMap<u32, String>>,
    pending: Mutex<HashMap<u64, PendingRdma>>,
    next_req: AtomicU64,
    /// Observability sinks keyed by destination endpoint address: the
    /// reactor delivers inbound `OBS` frames addressed to a local
    /// endpoint here (see [`ObsDelivery`] for the fire-and-forget
    /// contract). Frames to an address without a sink vanish silently.
    obs_sinks: RwLock<HashMap<Addr, ObsSink>>,
    stats: FabricStats,
    link: LinkCounters,
    faults: FaultSlot,
    shutdown: AtomicBool,
    #[cfg(unix)]
    reactor: ReactorHandle,
}

/// The sender-side handle to the reactor thread: new connections are
/// parked in `adds` and the thread woken through the self-pipe to adopt
/// them into its poll set.
#[cfg(unix)]
struct ReactorHandle {
    /// Write half of the self-pipe (`UnixStream::pair`); the reactor
    /// polls the read half alongside every connection.
    wake: Mutex<std::os::unix::net::UnixStream>,
    /// Connections registered but not yet adopted by the reactor.
    adds: Mutex<Vec<ReactorAdd>>,
}

#[cfg(unix)]
struct ReactorAdd {
    conn: Arc<Conn>,
    stream: NetStream,
}

#[cfg(unix)]
impl ReactorHandle {
    fn wake(&self) {
        use std::io::Write;
        let _ = self.wake.lock().write(&[1u8]);
    }
}

/// The TCP/Unix-socket transport (see the module docs).
pub struct NetTransport {
    inner: Arc<NetInner>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    #[cfg(unix)]
    reactor_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for NetTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NetTransport(node={}, listen={:?}, conns={})",
            self.inner.node_id,
            self.inner.listen_url,
            self.inner.conns.read().len()
        )
    }
}

impl NetTransport {
    /// Start a transport: bind the listener (if configured) and spawn the
    /// accept loop.
    pub fn start(config: NetConfig) -> io::Result<NetTransport> {
        let node_id = config.node_id.unwrap_or_else(derive_node_id);
        let (listener, listen_url) = match &config.listen {
            Some(url) => {
                let (l, actual) = NetListener::bind(url)?;
                (Some(l), Some(actual))
            }
            None => (None, None),
        };
        #[cfg(unix)]
        let (wake_tx, wake_rx) = std::os::unix::net::UnixStream::pair()?;
        let inner = Arc::new(NetInner {
            node_id,
            kind: match listen_url.as_deref().or(config.listen.as_deref()) {
                Some(url) if url.starts_with("unix://") => "unix",
                Some(_) => "tcp",
                // A pure client's kind follows whatever it dials; label
                // it by family on first lookup is overkill — "tcp" covers
                // the common case and kind() is informational.
                None => "tcp",
            },
            listen_url,
            rdma_timeout: config.rdma_timeout,
            handshake_timeout: config.handshake_timeout,
            endpoints: RwLock::new(HashMap::new()),
            primary_ep: AtomicU32::new(0),
            next_ep: AtomicU32::new(1),
            next_key: AtomicU32::new(1),
            memory: RwLock::new(HashMap::new()),
            conns: RwLock::new(HashMap::new()),
            urls: RwLock::new(HashMap::new()),
            node_urls: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            next_req: AtomicU64::new(1),
            obs_sinks: RwLock::new(HashMap::new()),
            stats: FabricStats::default(),
            link: LinkCounters::default(),
            faults: FaultSlot::new(),
            shutdown: AtomicBool::new(false),
            #[cfg(unix)]
            reactor: ReactorHandle {
                wake: Mutex::new(wake_tx),
                adds: Mutex::new(Vec::new()),
            },
        });
        let accept_thread = listener.map(|listener| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name(format!("symbi-net-accept-{node_id}"))
                .spawn(move || accept_loop(inner, listener))
                .expect("spawn accept thread")
        });
        #[cfg(unix)]
        let reactor_thread = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name(format!("symbi-net-reactor-{node_id}"))
                .spawn(move || reactor_loop(inner, wake_rx))
                .expect("spawn reactor thread")
        };
        Ok(NetTransport {
            inner,
            accept_thread: Mutex::new(accept_thread),
            #[cfg(unix)]
            reactor_thread: Mutex::new(Some(reactor_thread)),
        })
    }

    /// This process's node id (the high 32 bits of its addresses).
    pub fn node_id(&self) -> u32 {
        self.inner.node_id
    }

    /// Drop every live connection: sockets are shut down and the reactor
    /// retires them on its next wakeup. Dialed peers are re-dialed
    /// transparently on the next send; inbound peers must reconnect
    /// themselves. Emulates a link bounce — used by tests and fault
    /// drills.
    pub fn close_all_connections(&self) {
        for (_, conn) in self.inner.conns.write().drain() {
            conn.kill();
        }
    }

    /// Stop the accept loop and the reactor, shut every connection down,
    /// and fail all pending one-sided operations. Idempotent; also run by
    /// `Drop`.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection; the loop
        // re-checks the shutdown flag after every accept.
        if let Some(url) = &self.inner.listen_url {
            let _ = NetStream::connect(url);
        }
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
        for conn in self.inner.conns.write().drain().map(|(_, c)| c) {
            conn.kill();
        }
        #[cfg(unix)]
        {
            self.inner.reactor.wake();
            if let Some(h) = self.reactor_thread.lock().take() {
                let _ = h.join();
            }
        }
        let pending: Vec<PendingRdma> = {
            let mut p = self.inner.pending.lock();
            p.drain().map(|(_, slot)| slot).collect()
        };
        for slot in pending {
            let _ = slot
                .tx
                .send(Err(transport_err("rdma", "transport shut down")));
        }
    }
}

impl Drop for NetTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(inner: Arc<NetInner>, listener: NetListener) {
    loop {
        match listener.accept() {
            Ok(stream) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                inner.link.accepts.fetch_add(1, Ordering::Relaxed);
                let inner = inner.clone();
                // Handshake on a helper thread so one slow client cannot
                // stall the accept queue.
                let _ = std::thread::Builder::new()
                    .name("symbi-net-handshake".into())
                    .spawn(move || {
                        if let Err(e) = handle_inbound(&inner, stream) {
                            if !inner.shutdown.load(Ordering::SeqCst) {
                                eprintln!("[symbi-net] inbound handshake failed: {e}");
                            }
                        }
                    });
            }
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    listener.cleanup();
}

fn handle_inbound(inner: &Arc<NetInner>, stream: NetStream) -> io::Result<()> {
    stream.set_read_timeout(Some(inner.handshake_timeout))?;
    let mut reader = stream.try_clone()?;
    let (frame, _) = read_frame(&mut reader)?;
    let Frame::Hello { node, primary_ep } = frame else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected HELLO as first frame",
        ));
    };
    if node == inner.node_id {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("node id collision: peer also claims {node}"),
        ));
    }
    stream.set_read_timeout(None)?;
    let hello = Frame::Hello {
        node: inner.node_id,
        primary_ep: inner.primary_ep.load(Ordering::Acquire),
    };
    // Write the reply directly: the conn is registered only afterwards,
    // so no other thread can be writing to this socket yet.
    let mut writer = stream;
    write_frame(&mut writer, &hello)?;
    register_conn(inner, writer, reader, node, primary_ep, None);
    Ok(())
}

/// Dial `url`, exchange `HELLO`s, and return the write stream, a read
/// clone, and the peer's identity.
fn dial(inner: &Arc<NetInner>, url: &str) -> io::Result<(NetStream, NetStream, u32, u32)> {
    let stream = NetStream::connect(url)?;
    let mut writer = stream.try_clone()?;
    write_frame(
        &mut writer,
        &Frame::Hello {
            node: inner.node_id,
            primary_ep: inner.primary_ep.load(Ordering::Acquire),
        },
    )?;
    stream.set_read_timeout(Some(inner.handshake_timeout))?;
    let mut reader = stream.try_clone()?;
    let (frame, _) = read_frame(&mut reader)?;
    stream.set_read_timeout(None)?;
    let Frame::Hello { node, primary_ep } = frame else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected HELLO reply",
        ));
    };
    if node == inner.node_id {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("node id collision with peer at {url}"),
        ));
    }
    Ok((stream, reader, node, primary_ep))
}

/// Install a connection in the routing maps and hand its read half to the
/// reactor (or, off-unix, a fallback reader thread).
fn register_conn(
    inner: &Arc<NetInner>,
    writer: NetStream,
    reader: NetStream,
    peer_node: u32,
    peer_primary: u32,
    peer_url: Option<String>,
) -> Arc<Conn> {
    let closer = writer.try_clone().ok();
    let conn = Arc::new(Conn {
        peer_node,
        peer_primary,
        writer: Mutex::new(writer),
        out: Mutex::new(OutBuf::default()),
        closer,
        alive: AtomicBool::new(true),
    });
    if let Some(url) = peer_url {
        inner.urls.write().insert(url.clone(), peer_node);
        inner.node_urls.write().insert(peer_node, url);
    }
    if let Some(old) = inner.conns.write().insert(peer_node, conn.clone()) {
        // A fresh socket to a node we already knew (reconnect from the
        // peer's side): retire the old one.
        old.kill();
    }
    #[cfg(unix)]
    {
        // Nonblocking from here on (shared file-description flag: the
        // write half goes nonblocking too, which is why the flusher uses
        // `write_all_nb`). The handshake above ran blocking.
        let _ = reader.set_nonblocking(true);
        inner.reactor.adds.lock().push(ReactorAdd {
            conn: conn.clone(),
            stream: reader,
        });
        inner.reactor.wake();
    }
    #[cfg(not(unix))]
    {
        let inner2 = inner.clone();
        let conn2 = conn.clone();
        let _ = std::thread::Builder::new()
            .name(format!("symbi-net-read-{peer_node}"))
            .spawn(move || blocking_reader_loop(inner2, conn2, reader));
    }
    conn
}

/// Demultiplex one decoded frame (shared by the reactor and the off-unix
/// fallback reader).
fn dispatch_frame(inner: &Arc<NetInner>, conn: &Arc<Conn>, frame: Frame, body_len: usize) -> bool {
    inner.link.count_received(conn.peer_node, body_len);
    match frame {
        Frame::Msg {
            src,
            dst,
            payload,
            tag,
        } => {
            inner
                .link
                .msg_frames_received
                .fetch_add(1, Ordering::Relaxed);
            // Silence for a closed/unknown endpoint, like a NIC writing
            // to a freed queue: the sender's deadline is the error path.
            if node_of(dst) == inner.node_id {
                if let Some(tx) = inner.endpoints.read().get(&low_of(dst)) {
                    let _ = tx.send(Delivery {
                        src: Addr(src),
                        tag,
                        payload,
                    });
                }
            }
        }
        Frame::GetReq {
            req,
            key,
            offset,
            len,
        } => {
            let resp = serve_get(inner, key, offset, len);
            write_reply(
                inner,
                conn,
                &Frame::GetResp {
                    req,
                    status: resp.0,
                    body: resp.1,
                },
            );
        }
        Frame::PutReq {
            req,
            key,
            offset,
            payload,
        } => {
            let resp = serve_put(inner, key, offset, &payload);
            write_reply(
                inner,
                conn,
                &Frame::PutResp {
                    req,
                    status: resp.0,
                    body: resp.1,
                },
            );
        }
        Frame::GetResp { req, status, body } | Frame::PutResp { req, status, body } => {
            if let Some(slot) = inner.pending.lock().remove(&req) {
                let _ = slot.tx.send(decode_rdma_status(slot.key, status, body));
            }
        }
        Frame::Obs {
            src,
            dst,
            seq,
            kind,
            payload,
        } => {
            // Fire-and-forget: deliver to the registered sink if one
            // exists, otherwise drop silently — never an error path.
            if node_of(dst) == inner.node_id {
                let sink = inner.obs_sinks.read().get(&Addr(dst)).cloned();
                if let Some(sink) = sink {
                    sink(ObsDelivery {
                        src: Addr(src),
                        kind,
                        seq,
                        payload,
                    });
                }
            }
        }
        Frame::Hello { .. } => {
            // HELLO after the handshake is a protocol violation; poison
            // the connection.
            return false;
        }
    }
    true
}

/// Retire a dead connection: unroute it, fail every pending one-sided
/// operation aimed at its peer, and — if it was the routed connection and
/// the transport is not shutting down — synthesize a link-down delivery
/// into every local endpoint so upper layers fail their whole in-flight
/// window through the normal completion path instead of waiting out
/// per-RPC deadlines.
fn teardown_conn(inner: &Arc<NetInner>, conn: &Arc<Conn>) {
    let peer = conn.peer_node;
    conn.kill();
    let was_routed = {
        let mut conns = inner.conns.write();
        if conns
            .get(&peer)
            .map(|c| Arc::ptr_eq(c, conn))
            .unwrap_or(false)
        {
            conns.remove(&peer);
            true
        } else {
            false
        }
    };
    inner.fail_pending_for(peer, "connection lost");
    if was_routed && !inner.shutdown.load(Ordering::SeqCst) {
        let link_down = Delivery {
            src: Addr(pack(peer, 0)),
            tag: LINK_DOWN_TAG,
            payload: Bytes::new(),
        };
        for tx in inner.endpoints.read().values() {
            let _ = tx.send(link_down.clone());
        }
    }
}

/// One connection as the reactor sees it: the nonblocking read half plus
/// the incremental frame decoder buffering partial frames between
/// readable events.
#[cfg(unix)]
struct ConnEntry {
    conn: Arc<Conn>,
    stream: NetStream,
    dec: wire::FrameDecoder,
}

/// Drain whatever the kernel has buffered for one readable connection and
/// dispatch every complete frame. `Err(())` means the connection is dead
/// (EOF, socket error, or corrupt stream) and must be torn down.
#[cfg(unix)]
fn service_readable(inner: &Arc<NetInner>, e: &mut ConnEntry, buf: &mut [u8]) -> Result<(), ()> {
    use std::io::Read;
    for _ in 0..MAX_READS_PER_WAKEUP {
        match e.stream.read(buf) {
            Ok(0) => return Err(()),
            Ok(n) => {
                e.dec.push(&buf[..n]);
                loop {
                    match e.dec.next_frame() {
                        Ok(Some((frame, body_len))) => {
                            if !dispatch_frame(inner, &e.conn, frame, body_len) {
                                return Err(());
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return Err(()),
                    }
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    // Read budget exhausted; poll is level-triggered, the leftover bytes
    // re-report on the next wakeup.
    Ok(())
}

/// The reactor: one thread multiplexing every connection's read side (see
/// the module docs).
#[cfg(unix)]
fn reactor_loop(inner: Arc<NetInner>, wake_rx: std::os::unix::net::UnixStream) {
    use std::io::Read;
    use std::os::unix::io::AsRawFd;
    let _ = wake_rx.set_nonblocking(true);
    let mut entries: Vec<ConnEntry> = Vec::new();
    let mut buf = vec![0u8; 256 * 1024];
    let mut wake_buf = [0u8; 64];
    loop {
        let mut fds = Vec::with_capacity(entries.len() + 1);
        fds.push(poll::PollFd::new(wake_rx.as_raw_fd(), poll::POLL_IN));
        for e in &entries {
            fds.push(poll::PollFd::new(e.stream.as_raw_fd(), poll::POLL_IN));
        }
        match poll::poll_fds(&mut fds, -1) {
            Ok(0) => continue,
            Ok(_) => {}
            Err(_) => {
                // A torn-down fd raced the poll set; rebuild after a
                // breather rather than spinning.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        }
        let started = std::time::Instant::now();
        if fds[0].readable() {
            loop {
                match (&wake_rx).read(&mut wake_buf) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            if inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            for add in inner.reactor.adds.lock().drain(..) {
                entries.push(ConnEntry {
                    conn: add.conn,
                    stream: add.stream,
                    dec: wire::FrameDecoder::new(),
                });
            }
        }
        // Entries adopted above were not in this poll set; only the first
        // `fds.len() - 1` entries have revents.
        let polled = fds.len() - 1;
        let mut dead: Vec<usize> = Vec::new();
        for i in 0..polled {
            if !fds[i + 1].readable() {
                continue;
            }
            if service_readable(&inner, &mut entries[i], &mut buf).is_err() {
                dead.push(i);
            }
        }
        for i in dead.into_iter().rev() {
            let e = entries.swap_remove(i);
            teardown_conn(&inner, &e.conn);
        }
        let ns = started.elapsed().as_nanos() as u64;
        inner.link.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
        inner
            .link
            .reactor_loop_ns_total
            .fetch_add(ns, Ordering::Relaxed);
        inner
            .link
            .reactor_loop_ns_max
            .fetch_max(ns, Ordering::Relaxed);
    }
}

/// Off-unix fallback: blocking per-connection reader thread (the pre-
/// reactor design), sharing the same dispatch and teardown paths.
#[cfg(not(unix))]
fn blocking_reader_loop(inner: Arc<NetInner>, conn: Arc<Conn>, mut reader: NetStream) {
    while conn.alive.load(Ordering::Acquire) {
        match read_frame(&mut reader) {
            Ok((frame, body_len)) => {
                if !dispatch_frame(&inner, &conn, frame, body_len) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    teardown_conn(&inner, &conn);
}

fn serve_get(inner: &NetInner, key: u64, offset: u64, len: u64) -> (u8, Bytes) {
    if node_of(key) != inner.node_id {
        return (wire::STATUS_UNKNOWN_MEMORY, Bytes::new());
    }
    let mem = inner.memory.read();
    let Some(region) = mem.get(&low_of(key)) else {
        return (wire::STATUS_UNKNOWN_MEMORY, Bytes::new());
    };
    match region.read_range(MemKey(key), offset as usize, len as usize) {
        Ok(data) => (wire::STATUS_OK, data),
        Err(e) => encode_rdma_error(&e),
    }
}

fn serve_put(inner: &NetInner, key: u64, offset: u64, data: &[u8]) -> (u8, Bytes) {
    if node_of(key) != inner.node_id {
        return (wire::STATUS_UNKNOWN_MEMORY, Bytes::new());
    }
    let mem = inner.memory.read();
    let Some(region) = mem.get(&low_of(key)) else {
        return (wire::STATUS_UNKNOWN_MEMORY, Bytes::new());
    };
    match region.write_range(MemKey(key), offset as usize, data) {
        Ok(()) => (wire::STATUS_OK, Bytes::new()),
        Err(e) => encode_rdma_error(&e),
    }
}

fn encode_rdma_error(e: &FabricError) -> (u8, Bytes) {
    match e {
        FabricError::UnknownMemory(_) => (wire::STATUS_UNKNOWN_MEMORY, Bytes::new()),
        FabricError::ReadOnlyRegion(_) => (wire::STATUS_READ_ONLY, Bytes::new()),
        FabricError::OutOfBounds {
            requested_end, len, ..
        } => {
            let mut body = Vec::with_capacity(16);
            body.extend_from_slice(&(*requested_end as u64).to_le_bytes());
            body.extend_from_slice(&(*len as u64).to_le_bytes());
            (wire::STATUS_OUT_OF_BOUNDS, Bytes::from(body))
        }
        // No other error can come out of Region::read_range/write_range;
        // map anything unexpected to unknown-memory rather than panic a
        // reader thread.
        _ => (wire::STATUS_UNKNOWN_MEMORY, Bytes::new()),
    }
}

fn decode_rdma_status(key: u64, status: u8, body: Bytes) -> Result<Bytes, FabricError> {
    match status {
        wire::STATUS_OK => Ok(body),
        wire::STATUS_UNKNOWN_MEMORY => Err(FabricError::UnknownMemory(MemKey(key))),
        wire::STATUS_READ_ONLY => Err(FabricError::ReadOnlyRegion(MemKey(key))),
        wire::STATUS_OUT_OF_BOUNDS if body.len() >= 16 => {
            let requested_end = u64::from_le_bytes(body[0..8].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
            Err(FabricError::OutOfBounds {
                key: MemKey(key),
                requested_end,
                len,
            })
        }
        other => Err(transport_err(
            "rdma",
            format!("bad response status {other}"),
        )),
    }
}

/// Queue a response frame from the reactor (no reconnect: if the socket
/// died the requester's pending slot fails through teardown anyway).
fn write_reply(inner: &Arc<NetInner>, conn: &Arc<Conn>, frame: &Frame) {
    inner.enqueue_and_flush(conn, frame, "reply", false);
}

/// Write `buf` fully to a (possibly nonblocking) stream. On `WouldBlock`
/// the flusher parks in `poll` until the socket drains, bounded by
/// [`FLUSH_TIMEOUT`].
#[cfg(unix)]
fn write_all_stream(stream: &mut NetStream, mut buf: &[u8]) -> io::Result<()> {
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    let deadline = std::time::Instant::now() + FLUSH_TIMEOUT;
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "socket closed")),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                let remain = deadline.saturating_duration_since(std::time::Instant::now());
                if remain.is_zero() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stopped reading; flush timed out",
                    ));
                }
                // Wait in slices so a concurrent `kill` (shutdown(2) on
                // the fd) surfaces within a second.
                let ms = (remain.as_millis() as i64).clamp(1, 1_000) as i32;
                poll::wait_writable(stream.as_raw_fd(), ms)?;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(not(unix))]
fn write_all_stream(stream: &mut NetStream, buf: &[u8]) -> io::Result<()> {
    use std::io::Write;
    stream.write_all(buf)?;
    stream.flush()
}

impl NetInner {
    fn conn_to(&self, node: u32) -> Option<Arc<Conn>> {
        self.conns.read().get(&node).cloned()
    }

    /// Dial + handshake + register; shared by `lookup` and reconnect.
    fn dial_and_register(self: &Arc<Self>, url: &str) -> io::Result<(u32, u32)> {
        let (writer, reader, node, primary) = dial(self, url)?;
        self.link.connects.fetch_add(1, Ordering::Relaxed);
        register_conn(self, writer, reader, node, primary, Some(url.to_string()));
        Ok((node, primary))
    }

    /// A live connection to `node`, re-dialing a previously dialed URL if
    /// the old connection died. The re-dial only satisfies the caller if
    /// the peer kept its node id — a restarted peer (new id) fails
    /// permanently, which is the wire analogue of the local transport's
    /// stale-generation check: addresses of a dead incarnation never
    /// deliver into the new one.
    fn conn_or_redial(
        self: &Arc<Self>,
        node: u32,
        op: &'static str,
    ) -> Result<Arc<Conn>, FabricError> {
        if let Some(conn) = self.conn_to(node) {
            if conn.alive.load(Ordering::Acquire) {
                return Ok(conn);
            }
        }
        let Some(url) = self.node_urls.read().get(&node).cloned() else {
            return Err(transport_err(
                op,
                format!("no connection to node {node} (inbound peer must re-dial)"),
            ));
        };
        match self.dial_and_register(&url) {
            Ok((fresh_node, _)) if fresh_node == node => {
                self.link.reconnects.fetch_add(1, Ordering::Relaxed);
                self.conn_to(node)
                    .ok_or_else(|| transport_err(op, "reconnect raced with shutdown"))
            }
            Ok((fresh_node, _)) => {
                // The peer restarted under a new identity; drop the
                // stale reverse mapping so we stop re-dialing on behalf
                // of the dead incarnation.
                self.node_urls.write().remove(&node);
                Err(transport_err(
                    op,
                    format!(
                        "peer at {url} restarted: node {node} is now node {fresh_node}; \
                         old addresses are dead, re-lookup the URL"
                    ),
                ))
            }
            Err(e) => Err(transport_err(op, format!("reconnect to {url}: {e}"))),
        }
    }

    /// Fail every parked one-sided operation aimed at `peer` now, rather
    /// than letting each wait out its timeout.
    fn fail_pending_for(&self, peer: u32, why: &str) {
        let stranded: Vec<PendingRdma> = {
            let mut p = self.pending.lock();
            let ids: Vec<u64> = p
                .iter()
                .filter(|(_, slot)| slot.node == peer)
                .map(|(id, _)| *id)
                .collect();
            ids.into_iter().filter_map(|id| p.remove(&id)).collect()
        };
        for slot in stranded {
            let _ = slot.tx.send(Err(transport_err(
                "rdma",
                format!("{why}: node {peer} unreachable"),
            )));
        }
    }

    /// The coalescing send path: encode `frame` into `conn`'s combining
    /// buffer; if no flush is in progress, become the flusher and write
    /// everything queued (this frame plus whatever other senders appended
    /// since the last flush) with one socket write. Otherwise the active
    /// flusher picks this frame up — enqueue is wait-free past the buffer
    /// lock, which is what lets a deep pipeline post frames faster than
    /// the socket accepts them.
    ///
    /// `allow_redial`: on a flush failure, re-dial the peer once and
    /// replay the unsent batch (sends); replies never redial — the
    /// requester's pending slot fails through teardown.
    fn enqueue_and_flush(
        self: &Arc<Self>,
        conn: &Arc<Conn>,
        frame: &Frame,
        op: &'static str,
        allow_redial: bool,
    ) {
        let is_msg = matches!(frame, Frame::Msg { .. });
        let become_flusher = {
            let mut out = conn.out.lock();
            frame.encode_into(&mut out.buf);
            out.frames += 1;
            if out.flushing {
                false
            } else {
                out.flushing = true;
                true
            }
        };
        if is_msg {
            self.link.msg_frames_sent.fetch_add(1, Ordering::Relaxed);
        }
        if become_flusher {
            self.flush_conn(conn, op, !allow_redial);
        }
    }

    /// Drain `conn`'s combining buffer to the socket, batch by batch,
    /// until it is empty; then hand the flusher role back. On a write
    /// failure: tear the connection down and (unless `retried`) re-dial
    /// once, replaying the failed batch on the fresh connection. A frame
    /// fully delivered before the failure point may be replayed as a
    /// duplicate — upper layers dedup by handle id, the same contract as
    /// retry-at-depth.
    fn flush_conn(self: &Arc<Self>, conn: &Arc<Conn>, op: &'static str, retried: bool) {
        loop {
            let (batch, frames) = {
                let mut out = conn.out.lock();
                if out.buf.is_empty() {
                    out.flushing = false;
                    return;
                }
                (
                    std::mem::take(&mut out.buf),
                    std::mem::replace(&mut out.frames, 0),
                )
            };
            let result = {
                let mut w = conn.writer.lock();
                write_all_stream(&mut w, &batch)
            };
            match result {
                Ok(()) => {
                    let body_bytes = batch.len() as u64 - 5 * frames;
                    self.link
                        .count_sent_batch(conn.peer_node, frames, body_bytes);
                    self.link.count_flush(frames);
                }
                Err(_) => {
                    self.link.send_failures.fetch_add(1, Ordering::Relaxed);
                    // Carry everything unsent — this batch plus frames
                    // enqueued behind it — to the retry, and release the
                    // flusher role on the dead connection.
                    let (mut bytes, mut lost_frames) = (batch, frames);
                    {
                        let mut out = conn.out.lock();
                        bytes.extend_from_slice(&out.buf);
                        lost_frames += out.frames;
                        out.buf = Vec::new();
                        out.frames = 0;
                        out.flushing = false;
                    }
                    teardown_conn(self, conn);
                    if !retried {
                        if let Ok(fresh) = self.conn_or_redial(conn.peer_node, op) {
                            let flush_now = {
                                let mut out = fresh.out.lock();
                                out.buf.extend_from_slice(&bytes);
                                out.frames += lost_frames;
                                if out.flushing {
                                    false
                                } else {
                                    out.flushing = true;
                                    true
                                }
                            };
                            if flush_now {
                                self.flush_conn(&fresh, op, true);
                            }
                            return;
                        }
                    }
                    // Batch dropped: send is an asynchronous post; upper-
                    // layer deadlines and retries are the recovery path.
                    return;
                }
            }
        }
    }
}

impl Transport for NetTransport {
    fn kind(&self) -> &'static str {
        self.inner.kind
    }

    fn open_endpoint(&self) -> (Addr, Receiver<Delivery>) {
        let ep = self.inner.next_ep.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = crossbeam::channel::unbounded();
        self.inner.endpoints.write().insert(ep, tx);
        let _ = self
            .inner
            .primary_ep
            .compare_exchange(0, ep, Ordering::AcqRel, Ordering::Relaxed);
        (Addr(pack(self.inner.node_id, ep)), rx)
    }

    fn close_endpoint(&self, addr: Addr) {
        if node_of(addr.0) == self.inner.node_id {
            self.inner.endpoints.write().remove(&low_of(addr.0));
        }
    }

    fn send(&self, src: Addr, dst: Addr, tag: u64, payload: Bytes) -> Result<(), FabricError> {
        self.inner
            .stats
            .messages_sent
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .message_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        // Faults are judged before the frame ever reaches a socket, so a
        // seeded plan produces the same schedule over the wire as it does
        // in-process.
        let mut copies = 1;
        if let Some(rt) = self.inner.faults.runtime() {
            match rt.judge_send(src, dst) {
                SendVerdict::Drop => return Ok(()),
                SendVerdict::Deliver { copies: c, delay } => {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    copies = c;
                }
            }
        }
        let dst_node = node_of(dst.0);
        if dst_node == self.inner.node_id {
            let tx = self
                .inner
                .endpoints
                .read()
                .get(&low_of(dst.0))
                .cloned()
                .ok_or(FabricError::UnknownAddr(dst))?;
            for _ in 0..copies {
                tx.send(Delivery {
                    src,
                    tag,
                    payload: payload.clone(),
                })
                .map_err(|_| FabricError::Closed)?;
            }
            return Ok(());
        }
        let conn = self.inner.conn_or_redial(dst_node, "send")?;
        let frame = Frame::Msg {
            src: src.0,
            dst: dst.0,
            tag,
            payload,
        };
        for _ in 0..copies {
            self.inner.enqueue_and_flush(&conn, &frame, "send", true);
        }
        Ok(())
    }

    fn expose_read(&self, data: Arc<Vec<u8>>) -> RemoteRegion {
        let low = self.inner.next_key.fetch_add(1, Ordering::Relaxed);
        let key = MemKey(pack(self.inner.node_id, low));
        let len = data.len();
        self.inner.memory.write().insert(low, Region::Read(data));
        RemoteRegion { key, len }
    }

    fn expose_write(&self, len: usize) -> (RemoteRegion, Arc<RwLock<Vec<u8>>>) {
        let low = self.inner.next_key.fetch_add(1, Ordering::Relaxed);
        let key = MemKey(pack(self.inner.node_id, low));
        let buf = Arc::new(RwLock::new(vec![0u8; len]));
        self.inner
            .memory
            .write()
            .insert(low, Region::Write(buf.clone()));
        (RemoteRegion { key, len }, buf)
    }

    fn unregister(&self, key: MemKey) {
        if node_of(key.0) == self.inner.node_id {
            self.inner.memory.write().remove(&low_of(key.0));
        }
    }

    fn rdma_get(&self, key: MemKey, offset: usize, len: usize) -> Result<Bytes, FabricError> {
        if let Some(rt) = self.inner.faults.runtime() {
            if rt.judge_rdma("rdma_get") {
                return Err(FabricError::InjectedFault { op: "rdma_get" });
            }
        }
        let node = node_of(key.0);
        let data = if node == self.inner.node_id {
            let mem = self.inner.memory.read();
            let region = mem
                .get(&low_of(key.0))
                .ok_or(FabricError::UnknownMemory(key))?;
            region.read_range(key, offset, len)?
        } else {
            let conn = self.inner.conn_or_redial(node, "rdma_get")?;
            let req = self.inner.next_req.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = bounded(1);
            self.inner.pending.lock().insert(
                req,
                PendingRdma {
                    node,
                    key: key.0,
                    tx,
                },
            );
            let frame = Frame::GetReq {
                req,
                key: key.0,
                offset: offset as u64,
                len: len as u64,
            };
            self.inner
                .enqueue_and_flush(&conn, &frame, "rdma_get", true);
            match rx.recv_timeout(self.inner.rdma_timeout) {
                Ok(result) => result?,
                Err(_) => {
                    self.inner.pending.lock().remove(&req);
                    return Err(transport_err(
                        "rdma_get",
                        format!("no response within {:?}", self.inner.rdma_timeout),
                    ));
                }
            }
        };
        self.inner.stats.rdma_gets.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .rdma_bytes
            .fetch_add(len as u64, Ordering::Relaxed);
        Ok(data)
    }

    fn rdma_put(&self, key: MemKey, offset: usize, data: &[u8]) -> Result<(), FabricError> {
        if let Some(rt) = self.inner.faults.runtime() {
            if rt.judge_rdma("rdma_put") {
                return Err(FabricError::InjectedFault { op: "rdma_put" });
            }
        }
        let node = node_of(key.0);
        if node == self.inner.node_id {
            let mem = self.inner.memory.read();
            let region = mem
                .get(&low_of(key.0))
                .ok_or(FabricError::UnknownMemory(key))?;
            region.write_range(key, offset, data)?;
        } else {
            let conn = self.inner.conn_or_redial(node, "rdma_put")?;
            let req = self.inner.next_req.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = bounded(1);
            self.inner.pending.lock().insert(
                req,
                PendingRdma {
                    node,
                    key: key.0,
                    tx,
                },
            );
            let frame = Frame::PutReq {
                req,
                key: key.0,
                offset: offset as u64,
                payload: Bytes::copy_from_slice(data),
            };
            self.inner
                .enqueue_and_flush(&conn, &frame, "rdma_put", true);
            match rx.recv_timeout(self.inner.rdma_timeout) {
                Ok(result) => {
                    result?;
                }
                Err(_) => {
                    self.inner.pending.lock().remove(&req);
                    return Err(transport_err(
                        "rdma_put",
                        format!("no response within {:?}", self.inner.rdma_timeout),
                    ));
                }
            }
        }
        self.inner.stats.rdma_puts.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .rdma_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn lookup(&self, url: &str) -> Result<Addr, FabricError> {
        if let Some(node) = self.inner.urls.read().get(url).copied() {
            if let Some(conn) = self.inner.conn_to(node) {
                if conn.alive.load(Ordering::Acquire) {
                    return Ok(Addr(pack(node, conn.peer_primary)));
                }
            }
        }
        match self.inner.dial_and_register(url) {
            Ok((node, primary)) => {
                if primary == 0 {
                    return Err(transport_err(
                        "lookup",
                        format!("peer at {url} has no endpoint open yet"),
                    ));
                }
                Ok(Addr(pack(node, primary)))
            }
            Err(e) => Err(transport_err("lookup", format!("{url}: {e}"))),
        }
    }

    fn listen_url(&self) -> Option<String> {
        self.inner.listen_url.clone()
    }

    fn model(&self) -> NetworkModel {
        // The wire provides real latency; charging a model on top would
        // double-count.
        NetworkModel::instant()
    }

    fn stats(&self) -> FabricStatsSnapshot {
        self.inner.stats.snapshot()
    }

    fn link_stats(&self) -> Option<LinkStatsSnapshot> {
        let mut s = self.inner.link.snapshot();
        s.send_queue_depth = self
            .inner
            .conns
            .read()
            .values()
            .map(|c| c.out.lock().frames)
            .sum();
        s.parked_rdma_ops = self.inner.pending.lock().len() as u64;
        Some(s)
    }

    fn send_obs(
        &self,
        src: Addr,
        dst: Addr,
        kind: u8,
        seq: u64,
        payload: Bytes,
    ) -> Result<(), FabricError> {
        // Obs traffic deliberately skips judge_send: consuming per-link
        // RNG here would shift seeded data-plane fault schedules. Only
        // the (deterministic, non-counting) blackout probe applies.
        if let Some(rt) = self.inner.faults.runtime() {
            if rt.blacked_out_now(dst) {
                return Ok(());
            }
        }
        let dst_node = node_of(dst.0);
        if dst_node == self.inner.node_id {
            let sink = self.inner.obs_sinks.read().get(&dst).cloned();
            if let Some(sink) = sink {
                sink(ObsDelivery {
                    src,
                    kind,
                    seq,
                    payload,
                });
            }
            return Ok(());
        }
        // Unreachable collector == silent loss: the pusher's flight rings
        // remain the local record, and the next push re-attempts the
        // (re)dial. Never surface an error into the monitoring loop.
        let Ok(conn) = self.inner.conn_or_redial(dst_node, "send_obs") else {
            return Ok(());
        };
        let frame = Frame::Obs {
            src: src.0,
            dst: dst.0,
            seq,
            kind,
            payload,
        };
        self.inner
            .enqueue_and_flush(&conn, &frame, "send_obs", true);
        Ok(())
    }

    fn set_obs_sink(&self, dst: Addr, sink: ObsSink) {
        self.inner.obs_sinks.write().insert(dst, sink);
    }

    fn clear_obs_sink(&self, dst: Addr) {
        self.inner.obs_sinks.write().remove(&dst);
    }

    fn install_fault_plan(&self, plan: FaultPlan) {
        self.inner.faults.install(plan);
    }

    fn clear_fault_plan(&self) {
        self.inner.faults.clear();
    }

    fn fault_counters(&self) -> Option<FaultCountersSnapshot> {
        self.inner.faults.counters()
    }
}
