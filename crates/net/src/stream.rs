//! Socket abstraction: one stream/listener type over TCP and Unix-domain
//! sockets, addressed by URL (`tcp://host:port`, `unix:///path`).

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A connected byte stream over either socket family.
#[derive(Debug)]
pub enum NetStream {
    /// A TCP connection (`tcp://`).
    Tcp(TcpStream),
    /// A Unix-domain connection (`unix://`).
    #[cfg(unix)]
    Unix(UnixStream),
}

impl NetStream {
    /// Connect to a `tcp://host:port` or `unix:///path` URL.
    ///
    /// TCP sockets get `TCP_NODELAY` set unconditionally. Nagle's
    /// algorithm and the transport's own coalescing flush solve the same
    /// problem (amortizing small writes) but at different layers with very
    /// different latency costs: Nagle delays the *first* small frame up to
    /// an RTT waiting for more, while the combining buffer batches only
    /// frames that are *already pending* and flushes immediately. With
    /// application-level coalescing in place, Nagle adds latency and no
    /// throughput — so it is disabled on every symbi-net TCP socket (here
    /// and in [`NetListener::accept`]).
    pub fn connect(url: &str) -> io::Result<NetStream> {
        if let Some(hostport) = url.strip_prefix("tcp://") {
            let s = TcpStream::connect(hostport)?;
            s.set_nodelay(true)?;
            return Ok(NetStream::Tcp(s));
        }
        #[cfg(unix)]
        if let Some(path) = url.strip_prefix("unix://") {
            return Ok(NetStream::Unix(UnixStream::connect(path)?));
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unsupported transport url: {url}"),
        ))
    }

    /// An independently readable/writable handle to the same socket.
    pub fn try_clone(&self) -> io::Result<NetStream> {
        Ok(match self {
            NetStream::Tcp(s) => NetStream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            NetStream::Unix(s) => NetStream::Unix(s.try_clone()?),
        })
    }

    /// Shut down both directions, unblocking any reader thread.
    pub fn shutdown(&self) {
        match self {
            NetStream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            NetStream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }

    /// Bound or unbind the read timeout (used around the handshake so a
    /// silent peer cannot wedge connect).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            NetStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Switch the socket between blocking and non-blocking mode. The
    /// reactor runs every registered connection non-blocking; the
    /// handshake runs blocking (with a read timeout) before registration.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            NetStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

#[cfg(unix)]
impl std::os::unix::io::AsRawFd for NetStream {
    fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        match self {
            NetStream::Tcp(s) => s.as_raw_fd(),
            NetStream::Unix(s) => s.as_raw_fd(),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            NetStream::Unix(s) => s.flush(),
        }
    }
}

/// A listening socket over either family.
#[derive(Debug)]
pub enum NetListener {
    /// Listening TCP socket.
    Tcp(TcpListener),
    /// Listening Unix-domain socket plus its filesystem path (removed on
    /// [`NetListener::cleanup`]).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl NetListener {
    /// Bind a `tcp://host:port` (port 0 picks a free one) or
    /// `unix:///path` URL. Returns the listener and the canonical URL
    /// (with the actual bound port) peers should connect to.
    pub fn bind(url: &str) -> io::Result<(NetListener, String)> {
        if let Some(hostport) = url.strip_prefix("tcp://") {
            let l = TcpListener::bind(hostport)?;
            let actual = l.local_addr()?;
            return Ok((NetListener::Tcp(l), format!("tcp://{actual}")));
        }
        #[cfg(unix)]
        if let Some(path) = url.strip_prefix("unix://") {
            // A leftover socket file from a dead process blocks bind;
            // remove it the way real services do.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            return Ok((
                NetListener::Unix(l, PathBuf::from(path)),
                format!("unix://{path}"),
            ));
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unsupported transport url: {url}"),
        ))
    }

    /// Accept one inbound connection (blocking).
    pub fn accept(&self) -> io::Result<NetStream> {
        match self {
            NetListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(NetStream::Tcp(s))
            }
            #[cfg(unix)]
            NetListener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(NetStream::Unix(s))
            }
        }
    }

    /// Remove filesystem residue (the Unix socket path). TCP listeners
    /// need no cleanup.
    pub fn cleanup(&self) {
        #[cfg(unix)]
        if let NetListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_bind_reports_actual_port() {
        let (listener, url) = NetListener::bind("tcp://127.0.0.1:0").unwrap();
        assert!(url.starts_with("tcp://127.0.0.1:"));
        assert!(!url.ends_with(":0"));
        let h = std::thread::spawn(move || listener.accept().unwrap());
        let mut client = NetStream::connect(&url).unwrap();
        let mut server = h.join().unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_connect_and_cleanup() {
        let path = std::env::temp_dir().join(format!("symbi-net-test-{}.sock", std::process::id()));
        let url = format!("unix://{}", path.display());
        let (listener, bound) = NetListener::bind(&url).unwrap();
        assert_eq!(bound, url);
        let h = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let mut buf = [0u8; 2];
            s.read_exact(&mut buf).unwrap();
            listener.cleanup();
            buf
        });
        let mut client = NetStream::connect(&url).unwrap();
        client.write_all(b"hi").unwrap();
        assert_eq!(&h.join().unwrap(), b"hi");
        assert!(!path.exists());
    }

    #[test]
    fn bad_scheme_rejected() {
        assert!(NetStream::connect("carrier-pigeon://x").is_err());
        assert!(NetListener::bind("carrier-pigeon://x").is_err());
    }
}
