//! Readiness multiplexing for the reactor thread.
//!
//! The reactor parks in `poll(2)` over every live connection plus a wake
//! pipe, instead of dedicating a blocked reader thread to each socket.
//! `poll` is used rather than `epoll` because the interest set is small
//! (one fd per peer process plus the pipe) and rebuilt each iteration
//! anyway as connections come and go — O(n) scan cost is noise next to
//! frame dispatch, and `poll` is portable across the Unix platforms CI
//! runs on.
//!
//! The bindings are declared here directly: `poll` is part of the C
//! runtime that `std` already links on every Unix target, so no external
//! crate is needed.

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;

/// Event bit: fd is readable (POLLIN).
pub const POLL_IN: i16 = 0x001;
/// Event bit: fd is writable (POLLOUT).
pub const POLL_OUT: i16 = 0x004;
/// Event bit (revents only): error condition (POLLERR).
pub const POLL_ERR: i16 = 0x008;
/// Event bit (revents only): hang up (POLLHUP).
pub const POLL_HUP: i16 = 0x010;
/// Event bit (revents only): invalid fd (POLLNVAL).
pub const POLL_NVAL: i16 = 0x020;

/// One entry of the `poll(2)` interest set, layout-compatible with the
/// C `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch.
    pub fd: RawFd,
    /// Requested event bits ([`POLL_IN`] / [`POLL_OUT`]).
    pub events: i16,
    /// Returned event bits, filled by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for the given event bits.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Did the kernel report readability (or a condition — error/hangup —
    /// that a read will surface)?
    pub fn readable(&self) -> bool {
        self.revents & (POLL_IN | POLL_ERR | POLL_HUP | POLL_NVAL) != 0
    }

    /// Did the kernel report writability (or an error a write will
    /// surface)?
    pub fn writable(&self) -> bool {
        self.revents & (POLL_OUT | POLL_ERR | POLL_HUP | POLL_NVAL) != 0
    }
}

unsafe extern "C" {
    // From the C runtime std already links; nfds_t is unsigned long on
    // the platforms we target.
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Block until at least one fd in `fds` is ready, `timeout_ms`
/// milliseconds pass (`-1` = forever), or a signal interrupts. Returns the
/// number of fds with nonzero `revents`; `Ok(0)` is a timeout. `EINTR` is
/// retried internally.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Block until `fd` is writable or `timeout_ms` passes. Used by the
/// coalescing flush path when a nonblocking socket returns `WouldBlock`
/// mid-batch: the flusher waits for drain room rather than spinning.
/// Returns `Ok(true)` if writable, `Ok(false)` on timeout.
pub fn wait_writable(fd: RawFd, timeout_ms: i32) -> io::Result<bool> {
    let mut set = [PollFd::new(fd, POLL_OUT)];
    let n = poll_fds(&mut set, timeout_ms)?;
    Ok(n > 0 && set[0].writable())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn pipe_readability_is_reported() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLL_IN)];
        // Nothing written yet: poll with a short timeout sees no events.
        assert_eq!(poll_fds(&mut fds, 50).unwrap(), 0);
        a.write_all(b"x").unwrap();
        a.flush().unwrap();
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn fresh_socket_is_writable() {
        let (a, _b) = UnixStream::pair().unwrap();
        assert!(wait_writable(a.as_raw_fd(), 1000).unwrap());
    }

    #[test]
    fn closed_peer_reports_hangup_as_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), POLL_IN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        // A read on this fd will return 0 (EOF) — the reactor treats
        // readable-then-EOF as connection teardown.
        assert!(fds[0].readable());
    }
}
