//! The framed wire protocol.
//!
//! Every frame is a 4-byte little-endian body length, a 1-byte frame
//! type, then the body. Bodies are fixed-layout little-endian scalars
//! followed by a variable payload tail — no self-describing serialization
//! on the wire, matching Mercury's fixed-header style (the RPC header with
//! its span/Lamport trace context travels *inside* the MSG payload,
//! byte-identical to what the local transport delivers).
//!
//! Frame inventory:
//!
//! | type | name       | body |
//! |------|------------|------|
//! | 1    | `HELLO`    | node `u32`, primary endpoint `u32` |
//! | 2    | `MSG`      | src `u64`, dst `u64`, tag `u64`, payload |
//! | 3    | `GET_REQ`  | req `u64`, key `u64`, offset `u64`, len `u64` |
//! | 4    | `GET_RESP` | req `u64`, status `u8`, payload / error detail |
//! | 5    | `PUT_REQ`  | req `u64`, key `u64`, offset `u64`, payload |
//! | 6    | `PUT_RESP` | req `u64`, status `u8`, error detail |
//! | 7    | `OBS`      | src `u64`, dst `u64`, seq `u64`, kind `u8`, payload |
//!
//! `GET_REQ`/`PUT_REQ` are how one-sided `rdma_get`/`rdma_put` cross the
//! process boundary: explicit pull/push requests served by the peer's
//! reader thread from its registered-region table, so registered-buffer
//! semantics (bounds checks, read-only protection) survive the wire.

use bytes::Bytes;
use std::io::{self, Read, Write};

/// Upper bound on a frame body; larger frames indicate a corrupt or
/// hostile stream and poison the connection.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Handshake: first frame in each direction on a new connection.
pub const TYPE_HELLO: u8 = 1;
/// A two-sided message delivery.
pub const TYPE_MSG: u8 = 2;
/// One-sided read request (the wire form of `rdma_get`).
pub const TYPE_GET_REQ: u8 = 3;
/// Response to [`TYPE_GET_REQ`].
pub const TYPE_GET_RESP: u8 = 4;
/// One-sided write request (the wire form of `rdma_put`).
pub const TYPE_PUT_REQ: u8 = 5;
/// Response to [`TYPE_PUT_REQ`].
pub const TYPE_PUT_RESP: u8 = 6;
/// A fire-and-forget observability datagram (telemetry/span push or a
/// collector advisory). Never answered, never retried; carried on the
/// same coalesced connections as data-plane traffic but judged only by
/// blackout windows, never by the seeded fault RNG.
pub const TYPE_OBS: u8 = 7;

/// RDMA response status: success.
pub const STATUS_OK: u8 = 0;
/// RDMA response status: key not registered at the serving node.
pub const STATUS_UNKNOWN_MEMORY: u8 = 1;
/// RDMA response status: write to a read-only region.
pub const STATUS_READ_ONLY: u8 = 2;
/// RDMA response status: access outside the region bounds; the body
/// carries `requested_end u64, len u64`.
pub const STATUS_OUT_OF_BOUNDS: u8 = 3;

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Peer identification, exchanged once per direction at connect time.
    Hello {
        /// The peer's node id (high 32 bits of all its addresses).
        node: u32,
        /// The peer's primary endpoint id (what `lookup` resolves to).
        primary_ep: u32,
    },
    /// A two-sided message.
    Msg {
        /// Full source address bits.
        src: u64,
        /// Full destination address bits.
        dst: u64,
        /// Application tag.
        tag: u64,
        /// Message payload.
        payload: Bytes,
    },
    /// Pull request against a registered region on the receiving node.
    GetReq {
        /// Request id, echoed in the response.
        req: u64,
        /// Full memory-key bits.
        key: u64,
        /// Byte offset into the region.
        offset: u64,
        /// Bytes requested.
        len: u64,
    },
    /// Pull response.
    GetResp {
        /// Echoed request id.
        req: u64,
        /// One of the `STATUS_*` codes.
        status: u8,
        /// Pulled bytes on success; status-specific detail on failure.
        body: Bytes,
    },
    /// Push request against a registered region on the receiving node.
    PutReq {
        /// Request id, echoed in the response.
        req: u64,
        /// Full memory-key bits.
        key: u64,
        /// Byte offset into the region.
        offset: u64,
        /// Bytes to write.
        payload: Bytes,
    },
    /// Push response.
    PutResp {
        /// Echoed request id.
        req: u64,
        /// One of the `STATUS_*` codes.
        status: u8,
        /// Status-specific detail on failure, empty on success.
        body: Bytes,
    },
    /// An observability datagram (see [`TYPE_OBS`]).
    Obs {
        /// Full source address bits of the pushing endpoint.
        src: u64,
        /// Full destination address bits (the sink's endpoint).
        dst: u64,
        /// Sender-assigned sequence number.
        seq: u64,
        /// Application-defined datagram kind (push, advisory, ...).
        kind: u8,
        /// Opaque payload.
        payload: Bytes,
    },
}

impl Frame {
    /// The frame's wire type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TYPE_HELLO,
            Frame::Msg { .. } => TYPE_MSG,
            Frame::GetReq { .. } => TYPE_GET_REQ,
            Frame::GetResp { .. } => TYPE_GET_RESP,
            Frame::PutReq { .. } => TYPE_PUT_REQ,
            Frame::PutResp { .. } => TYPE_PUT_RESP,
            Frame::Obs { .. } => TYPE_OBS,
        }
    }

    /// Encode into `[len u32][type u8][body]` wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Append the encoded frame to `out` and return the body length (the
    /// per-frame byte count the link counters track).
    ///
    /// This is the combining-buffer entry point: senders encode directly
    /// into the per-connection output buffer under its lock, and the
    /// flusher writes the whole buffer — every frame queued since the last
    /// flush — with one socket write.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let header_at = out.len();
        out.extend_from_slice(&[0u8; 4]);
        out.push(self.type_byte());
        let body_at = out.len();
        self.encode_body(out);
        let body_len = out.len() - body_at;
        out[header_at..header_at + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
        body_len
    }

    fn encode_body(&self, body: &mut Vec<u8>) {
        match self {
            Frame::Hello { node, primary_ep } => {
                body.extend_from_slice(&node.to_le_bytes());
                body.extend_from_slice(&primary_ep.to_le_bytes());
            }
            Frame::Msg {
                src,
                dst,
                tag,
                payload,
            } => {
                body.extend_from_slice(&src.to_le_bytes());
                body.extend_from_slice(&dst.to_le_bytes());
                body.extend_from_slice(&tag.to_le_bytes());
                body.extend_from_slice(payload);
            }
            Frame::GetReq {
                req,
                key,
                offset,
                len,
            } => {
                body.extend_from_slice(&req.to_le_bytes());
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&offset.to_le_bytes());
                body.extend_from_slice(&len.to_le_bytes());
            }
            Frame::GetResp {
                req,
                status,
                body: b,
            } => {
                body.extend_from_slice(&req.to_le_bytes());
                body.push(*status);
                body.extend_from_slice(b);
            }
            Frame::PutReq {
                req,
                key,
                offset,
                payload,
            } => {
                body.extend_from_slice(&req.to_le_bytes());
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&offset.to_le_bytes());
                body.extend_from_slice(payload);
            }
            Frame::PutResp {
                req,
                status,
                body: b,
            } => {
                body.extend_from_slice(&req.to_le_bytes());
                body.push(*status);
                body.extend_from_slice(b);
            }
            Frame::Obs {
                src,
                dst,
                seq,
                kind,
                payload,
            } => {
                body.extend_from_slice(&src.to_le_bytes());
                body.extend_from_slice(&dst.to_le_bytes());
                body.extend_from_slice(&seq.to_le_bytes());
                body.push(*kind);
                body.extend_from_slice(payload);
            }
        }
    }

    /// Decode a frame from its type byte and body.
    pub fn decode(ty: u8, body: Bytes) -> io::Result<Frame> {
        fn need(body: &Bytes, n: usize, what: &str) -> io::Result<()> {
            if body.len() < n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{what} frame too short: {} < {n}", body.len()),
                ));
            }
            Ok(())
        }
        fn u32_at(body: &[u8], at: usize) -> u32 {
            u32::from_le_bytes(body[at..at + 4].try_into().unwrap())
        }
        fn u64_at(body: &[u8], at: usize) -> u64 {
            u64::from_le_bytes(body[at..at + 8].try_into().unwrap())
        }
        Ok(match ty {
            TYPE_HELLO => {
                need(&body, 8, "HELLO")?;
                Frame::Hello {
                    node: u32_at(&body, 0),
                    primary_ep: u32_at(&body, 4),
                }
            }
            TYPE_MSG => {
                need(&body, 24, "MSG")?;
                Frame::Msg {
                    src: u64_at(&body, 0),
                    dst: u64_at(&body, 8),
                    tag: u64_at(&body, 16),
                    payload: body.slice(24..),
                }
            }
            TYPE_GET_REQ => {
                need(&body, 32, "GET_REQ")?;
                Frame::GetReq {
                    req: u64_at(&body, 0),
                    key: u64_at(&body, 8),
                    offset: u64_at(&body, 16),
                    len: u64_at(&body, 24),
                }
            }
            TYPE_GET_RESP => {
                need(&body, 9, "GET_RESP")?;
                Frame::GetResp {
                    req: u64_at(&body, 0),
                    status: body[8],
                    body: body.slice(9..),
                }
            }
            TYPE_PUT_REQ => {
                need(&body, 24, "PUT_REQ")?;
                Frame::PutReq {
                    req: u64_at(&body, 0),
                    key: u64_at(&body, 8),
                    offset: u64_at(&body, 16),
                    payload: body.slice(24..),
                }
            }
            TYPE_PUT_RESP => {
                need(&body, 9, "PUT_RESP")?;
                Frame::PutResp {
                    req: u64_at(&body, 0),
                    status: body[8],
                    body: body.slice(9..),
                }
            }
            TYPE_OBS => {
                need(&body, 25, "OBS")?;
                Frame::Obs {
                    src: u64_at(&body, 0),
                    dst: u64_at(&body, 8),
                    seq: u64_at(&body, 16),
                    kind: body[24],
                    payload: body.slice(25..),
                }
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame type {other}"),
                ))
            }
        })
    }
}

/// Write one frame; returns the number of body bytes written (for the
/// link counters).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<usize> {
    let encoded = frame.encode();
    w.write_all(&encoded)?;
    w.flush()?;
    Ok(encoded.len() - 5)
}

/// Incremental frame parser over a nonblocking byte stream.
///
/// The reactor reads whatever the kernel has buffered for a connection in
/// one `read` call and feeds it here; `next_frame` then yields every
/// complete frame accumulated so far. Partial frames (a header split
/// across reads, a body still in flight) stay buffered until the next
/// readable event — no thread ever blocks waiting for the rest of a
/// frame, which is what lets a single thread service every connection.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    // Consumed prefix of `buf`; compacted when it grows past half the
    // buffer to keep amortized cost linear without memmove per frame.
    pos: usize,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append freshly read bytes.
    pub fn push(&mut self, data: &[u8]) {
        if self.pos > 0 && self.pos >= self.buf.len() / 2 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pop the next complete frame, or `None` if more bytes are needed.
    /// Returns `Err` on a corrupt stream (oversized or malformed frame);
    /// the connection must then be poisoned.
    pub fn next_frame(&mut self) -> io::Result<Option<(Frame, usize)>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 5 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[0..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame body {len} exceeds MAX_FRAME {MAX_FRAME}"),
            ));
        }
        if avail.len() < 5 + len {
            return Ok(None);
        }
        let ty = avail[4];
        let body = Bytes::copy_from_slice(&avail[5..5 + len]);
        self.pos += 5 + len;
        Ok(Some((Frame::decode(ty, body)?, len)))
    }
}

/// Read one frame; returns the frame and its body length. Blocks until a
/// full frame arrives or the stream fails.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(Frame, usize)> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body {len} exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((Frame::decode(header[4], Bytes::from(body))?, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let encoded = frame.encode();
        let mut cursor = std::io::Cursor::new(encoded.clone());
        let (decoded, len) = read_frame(&mut cursor).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(len, encoded.len() - 5);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Hello {
            node: 7,
            primary_ep: 3,
        });
        roundtrip(Frame::Msg {
            src: (7u64 << 32) | 1,
            dst: (9u64 << 32) | 2,
            tag: 0xDEAD_BEEF,
            payload: Bytes::from_static(b"hello wire"),
        });
        roundtrip(Frame::GetReq {
            req: 42,
            key: (7u64 << 32) | 5,
            offset: 128,
            len: 4096,
        });
        roundtrip(Frame::GetResp {
            req: 42,
            status: STATUS_OK,
            body: Bytes::from_static(b"pulled"),
        });
        roundtrip(Frame::PutReq {
            req: 43,
            key: (7u64 << 32) | 6,
            offset: 0,
            payload: Bytes::from_static(b"pushed"),
        });
        roundtrip(Frame::PutResp {
            req: 43,
            status: STATUS_READ_ONLY,
            body: Bytes::new(),
        });
        roundtrip(Frame::Obs {
            src: (7u64 << 32) | 1,
            dst: (3u64 << 32) | 1,
            seq: 99,
            kind: 1,
            payload: Bytes::from_static(b"{\"obs\":\"push\"}"),
        });
    }

    #[test]
    fn truncated_obs_rejected() {
        assert!(Frame::decode(TYPE_OBS, Bytes::from_static(b"tooshort")).is_err());
        // 25 bytes is the minimum (empty payload).
        let min = Frame::Obs {
            src: 0,
            dst: 0,
            seq: 0,
            kind: 0,
            payload: Bytes::new(),
        };
        roundtrip(min);
    }

    #[test]
    fn empty_payload_roundtrips() {
        roundtrip(Frame::Msg {
            src: 1,
            dst: 2,
            tag: 0,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut encoded = Frame::Hello {
            node: 1,
            primary_ep: 1,
        }
        .encode();
        encoded[0..4].copy_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(encoded);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(Frame::decode(99, Bytes::new()).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        assert!(Frame::decode(TYPE_MSG, Bytes::from_static(b"short")).is_err());
    }

    #[test]
    fn encode_into_matches_encode_and_coalesces() {
        let a = Frame::Msg {
            src: 1,
            dst: 2,
            tag: 3,
            payload: Bytes::from_static(b"first"),
        };
        let b = Frame::Hello {
            node: 4,
            primary_ep: 5,
        };
        let mut combined = Vec::new();
        let a_body = a.encode_into(&mut combined);
        let b_body = b.encode_into(&mut combined);
        let mut expect = a.encode();
        expect.extend_from_slice(&b.encode());
        assert_eq!(combined, expect);
        assert_eq!(a_body, a.encode().len() - 5);
        assert_eq!(b_body, 8);
    }

    #[test]
    fn decoder_handles_split_and_batched_frames() {
        let frames = [
            Frame::Msg {
                src: 1,
                dst: 2,
                tag: 3,
                payload: Bytes::from_static(b"payload-one"),
            },
            Frame::GetReq {
                req: 9,
                key: 8,
                offset: 7,
                len: 6,
            },
            Frame::PutResp {
                req: 10,
                status: STATUS_OK,
                body: Bytes::new(),
            },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            f.encode_into(&mut stream);
        }
        // Feed the byte stream one byte at a time: every frame must still
        // come out whole and in order.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for byte in &stream {
            dec.push(std::slice::from_ref(byte));
            while let Some((f, _)) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.pending_bytes(), 0);

        // And in one big push (a coalesced flush arriving at once).
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        let mut got = Vec::new();
        while let Some((f, _)) = dec.next_frame().unwrap() {
            got.push(f);
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn decoder_rejects_oversized_frame() {
        let mut dec = FrameDecoder::new();
        let mut bytes = ((MAX_FRAME as u32) + 1).to_le_bytes().to_vec();
        bytes.push(TYPE_MSG);
        dec.push(&bytes);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let a = Frame::Msg {
            src: 1,
            dst: 2,
            tag: 3,
            payload: Bytes::from_static(b"first"),
        };
        let b = Frame::GetReq {
            req: 9,
            key: 8,
            offset: 7,
            len: 6,
        };
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor).unwrap().0, a);
        assert_eq!(read_frame(&mut cursor).unwrap().0, b);
    }
}
