//! The framed wire protocol.
//!
//! Every frame is a 4-byte little-endian body length, a 1-byte frame
//! type, then the body. Bodies are fixed-layout little-endian scalars
//! followed by a variable payload tail — no self-describing serialization
//! on the wire, matching Mercury's fixed-header style (the RPC header with
//! its span/Lamport trace context travels *inside* the MSG payload,
//! byte-identical to what the local transport delivers).
//!
//! Frame inventory:
//!
//! | type | name       | body |
//! |------|------------|------|
//! | 1    | `HELLO`    | node `u32`, primary endpoint `u32` |
//! | 2    | `MSG`      | src `u64`, dst `u64`, tag `u64`, payload |
//! | 3    | `GET_REQ`  | req `u64`, key `u64`, offset `u64`, len `u64` |
//! | 4    | `GET_RESP` | req `u64`, status `u8`, payload / error detail |
//! | 5    | `PUT_REQ`  | req `u64`, key `u64`, offset `u64`, payload |
//! | 6    | `PUT_RESP` | req `u64`, status `u8`, error detail |
//!
//! `GET_REQ`/`PUT_REQ` are how one-sided `rdma_get`/`rdma_put` cross the
//! process boundary: explicit pull/push requests served by the peer's
//! reader thread from its registered-region table, so registered-buffer
//! semantics (bounds checks, read-only protection) survive the wire.

use bytes::Bytes;
use std::io::{self, Read, Write};

/// Upper bound on a frame body; larger frames indicate a corrupt or
/// hostile stream and poison the connection.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Handshake: first frame in each direction on a new connection.
pub const TYPE_HELLO: u8 = 1;
/// A two-sided message delivery.
pub const TYPE_MSG: u8 = 2;
/// One-sided read request (the wire form of `rdma_get`).
pub const TYPE_GET_REQ: u8 = 3;
/// Response to [`TYPE_GET_REQ`].
pub const TYPE_GET_RESP: u8 = 4;
/// One-sided write request (the wire form of `rdma_put`).
pub const TYPE_PUT_REQ: u8 = 5;
/// Response to [`TYPE_PUT_REQ`].
pub const TYPE_PUT_RESP: u8 = 6;

/// RDMA response status: success.
pub const STATUS_OK: u8 = 0;
/// RDMA response status: key not registered at the serving node.
pub const STATUS_UNKNOWN_MEMORY: u8 = 1;
/// RDMA response status: write to a read-only region.
pub const STATUS_READ_ONLY: u8 = 2;
/// RDMA response status: access outside the region bounds; the body
/// carries `requested_end u64, len u64`.
pub const STATUS_OUT_OF_BOUNDS: u8 = 3;

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Peer identification, exchanged once per direction at connect time.
    Hello {
        /// The peer's node id (high 32 bits of all its addresses).
        node: u32,
        /// The peer's primary endpoint id (what `lookup` resolves to).
        primary_ep: u32,
    },
    /// A two-sided message.
    Msg {
        /// Full source address bits.
        src: u64,
        /// Full destination address bits.
        dst: u64,
        /// Application tag.
        tag: u64,
        /// Message payload.
        payload: Bytes,
    },
    /// Pull request against a registered region on the receiving node.
    GetReq {
        /// Request id, echoed in the response.
        req: u64,
        /// Full memory-key bits.
        key: u64,
        /// Byte offset into the region.
        offset: u64,
        /// Bytes requested.
        len: u64,
    },
    /// Pull response.
    GetResp {
        /// Echoed request id.
        req: u64,
        /// One of the `STATUS_*` codes.
        status: u8,
        /// Pulled bytes on success; status-specific detail on failure.
        body: Bytes,
    },
    /// Push request against a registered region on the receiving node.
    PutReq {
        /// Request id, echoed in the response.
        req: u64,
        /// Full memory-key bits.
        key: u64,
        /// Byte offset into the region.
        offset: u64,
        /// Bytes to write.
        payload: Bytes,
    },
    /// Push response.
    PutResp {
        /// Echoed request id.
        req: u64,
        /// One of the `STATUS_*` codes.
        status: u8,
        /// Status-specific detail on failure, empty on success.
        body: Bytes,
    },
}

impl Frame {
    /// The frame's wire type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TYPE_HELLO,
            Frame::Msg { .. } => TYPE_MSG,
            Frame::GetReq { .. } => TYPE_GET_REQ,
            Frame::GetResp { .. } => TYPE_GET_RESP,
            Frame::PutReq { .. } => TYPE_PUT_REQ,
            Frame::PutResp { .. } => TYPE_PUT_RESP,
        }
    }

    /// Encode into `[len u32][type u8][body]` wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut body: Vec<u8> = Vec::new();
        match self {
            Frame::Hello { node, primary_ep } => {
                body.extend_from_slice(&node.to_le_bytes());
                body.extend_from_slice(&primary_ep.to_le_bytes());
            }
            Frame::Msg {
                src,
                dst,
                tag,
                payload,
            } => {
                body.extend_from_slice(&src.to_le_bytes());
                body.extend_from_slice(&dst.to_le_bytes());
                body.extend_from_slice(&tag.to_le_bytes());
                body.extend_from_slice(payload);
            }
            Frame::GetReq {
                req,
                key,
                offset,
                len,
            } => {
                body.extend_from_slice(&req.to_le_bytes());
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&offset.to_le_bytes());
                body.extend_from_slice(&len.to_le_bytes());
            }
            Frame::GetResp {
                req,
                status,
                body: b,
            } => {
                body.extend_from_slice(&req.to_le_bytes());
                body.push(*status);
                body.extend_from_slice(b);
            }
            Frame::PutReq {
                req,
                key,
                offset,
                payload,
            } => {
                body.extend_from_slice(&req.to_le_bytes());
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&offset.to_le_bytes());
                body.extend_from_slice(payload);
            }
            Frame::PutResp {
                req,
                status,
                body: b,
            } => {
                body.extend_from_slice(&req.to_le_bytes());
                body.push(*status);
                body.extend_from_slice(b);
            }
        }
        let mut out = Vec::with_capacity(5 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.push(self.type_byte());
        out.extend_from_slice(&body);
        out
    }

    /// Decode a frame from its type byte and body.
    pub fn decode(ty: u8, body: Bytes) -> io::Result<Frame> {
        fn need(body: &Bytes, n: usize, what: &str) -> io::Result<()> {
            if body.len() < n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{what} frame too short: {} < {n}", body.len()),
                ));
            }
            Ok(())
        }
        fn u32_at(body: &[u8], at: usize) -> u32 {
            u32::from_le_bytes(body[at..at + 4].try_into().unwrap())
        }
        fn u64_at(body: &[u8], at: usize) -> u64 {
            u64::from_le_bytes(body[at..at + 8].try_into().unwrap())
        }
        Ok(match ty {
            TYPE_HELLO => {
                need(&body, 8, "HELLO")?;
                Frame::Hello {
                    node: u32_at(&body, 0),
                    primary_ep: u32_at(&body, 4),
                }
            }
            TYPE_MSG => {
                need(&body, 24, "MSG")?;
                Frame::Msg {
                    src: u64_at(&body, 0),
                    dst: u64_at(&body, 8),
                    tag: u64_at(&body, 16),
                    payload: body.slice(24..),
                }
            }
            TYPE_GET_REQ => {
                need(&body, 32, "GET_REQ")?;
                Frame::GetReq {
                    req: u64_at(&body, 0),
                    key: u64_at(&body, 8),
                    offset: u64_at(&body, 16),
                    len: u64_at(&body, 24),
                }
            }
            TYPE_GET_RESP => {
                need(&body, 9, "GET_RESP")?;
                Frame::GetResp {
                    req: u64_at(&body, 0),
                    status: body[8],
                    body: body.slice(9..),
                }
            }
            TYPE_PUT_REQ => {
                need(&body, 24, "PUT_REQ")?;
                Frame::PutReq {
                    req: u64_at(&body, 0),
                    key: u64_at(&body, 8),
                    offset: u64_at(&body, 16),
                    payload: body.slice(24..),
                }
            }
            TYPE_PUT_RESP => {
                need(&body, 9, "PUT_RESP")?;
                Frame::PutResp {
                    req: u64_at(&body, 0),
                    status: body[8],
                    body: body.slice(9..),
                }
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown frame type {other}"),
                ))
            }
        })
    }
}

/// Write one frame; returns the number of body bytes written (for the
/// link counters).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<usize> {
    let encoded = frame.encode();
    w.write_all(&encoded)?;
    w.flush()?;
    Ok(encoded.len() - 5)
}

/// Read one frame; returns the frame and its body length. Blocks until a
/// full frame arrives or the stream fails.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(Frame, usize)> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body {len} exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((Frame::decode(header[4], Bytes::from(body))?, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let encoded = frame.encode();
        let mut cursor = std::io::Cursor::new(encoded.clone());
        let (decoded, len) = read_frame(&mut cursor).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(len, encoded.len() - 5);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Hello {
            node: 7,
            primary_ep: 3,
        });
        roundtrip(Frame::Msg {
            src: (7u64 << 32) | 1,
            dst: (9u64 << 32) | 2,
            tag: 0xDEAD_BEEF,
            payload: Bytes::from_static(b"hello wire"),
        });
        roundtrip(Frame::GetReq {
            req: 42,
            key: (7u64 << 32) | 5,
            offset: 128,
            len: 4096,
        });
        roundtrip(Frame::GetResp {
            req: 42,
            status: STATUS_OK,
            body: Bytes::from_static(b"pulled"),
        });
        roundtrip(Frame::PutReq {
            req: 43,
            key: (7u64 << 32) | 6,
            offset: 0,
            payload: Bytes::from_static(b"pushed"),
        });
        roundtrip(Frame::PutResp {
            req: 43,
            status: STATUS_READ_ONLY,
            body: Bytes::new(),
        });
    }

    #[test]
    fn empty_payload_roundtrips() {
        roundtrip(Frame::Msg {
            src: 1,
            dst: 2,
            tag: 0,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut encoded = Frame::Hello {
            node: 1,
            primary_ep: 1,
        }
        .encode();
        encoded[0..4].copy_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(encoded);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(Frame::decode(99, Bytes::new()).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        assert!(Frame::decode(TYPE_MSG, Bytes::from_static(b"short")).is_err());
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let a = Frame::Msg {
            src: 1,
            dst: 2,
            tag: 3,
            payload: Bytes::from_static(b"first"),
        };
        let b = Frame::GetReq {
            req: 9,
            key: 8,
            offset: 7,
            len: 6,
        };
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor).unwrap().0, a);
        assert_eq!(read_frame(&mut cursor).unwrap().0, b);
    }
}
