//! Scripted anomaly scenarios — the paper's §V case studies as
//! ready-made [`ScenarioSpec`]s for open-loop replay.
//!
//! Each preset fixes the *shape* of an anomaly (server provisioning,
//! payload schedule, fault script); callers still pick the offered rate
//! and horizon for their hardware with the spec builders.

use std::time::Duration;
use symbi_services::scenario::{AdaptiveSpec, FaultScript, ScenarioSpec};

/// The plain rate-sweep point: default mixed read/write/scan workload at
/// `rate_hz`, no anomaly. Sweeping this across rates traces the
/// open-loop throughput/latency curve and its p99 knee.
pub fn rate_sweep(rate_hz: f64) -> ScenarioSpec {
    ScenarioSpec::named("rate-sweep").with_rate_hz(rate_hz)
}

/// Progress-ULT starvation (paper Fig. 7): handler work long enough to
/// monopolise the execution streams, offered rate near the service
/// capacity, so request processing starves the progress loop and p99
/// climbs far above the handler cost.
pub fn starvation(rate_hz: f64) -> ScenarioSpec {
    ScenarioSpec::named("starvation")
        .with_rate_hz(rate_hz)
        .with_mix(70, 30, 0)
        .with_server_shape(2, 4, Duration::from_millis(2))
}

/// The eager→RDMA payload-threshold crossing (paper Fig. 8): halfway
/// through the horizon, put payloads jump from comfortably-eager to
/// firmly in RDMA territory. The early/late phase split in the summary
/// shows the latency regime change.
pub fn rdma_crossing(rate_hz: f64, horizon: Duration) -> ScenarioSpec {
    let mut spec = ScenarioSpec::named("rdma-crossing")
        .with_rate_hz(rate_hz)
        .with_mix(100, 0, 0)
        .with_duration(horizon);
    spec.value_size = 1024;
    spec.large_value_size = 32 * 1024;
    spec.large_after_ms = spec.duration_ms / 2;
    spec
}

/// Blackout storm over the existing fault plan (paper Figs. 9–10):
/// `blackouts` scripted link blackouts of `blackout_ms` each, rotating
/// across the server set, starting after a clean warm-up quarter of the
/// horizon. Deterministic under `spec.seed` like every fault plan.
pub fn blackout_storm(rate_hz: f64, horizon: Duration, blackouts: u32) -> ScenarioSpec {
    let mut spec = ScenarioSpec::named("blackout-storm")
        .with_rate_hz(rate_hz)
        .with_duration(horizon);
    let horizon_ms = spec.duration_ms.max(4);
    let first_ms = horizon_ms / 4;
    let n = blackouts.max(1);
    let seed = spec.seed;
    spec = spec.with_fault(FaultScript {
        seed,
        blackouts: n,
        first_ms,
        // Spread the storm over the middle half of the horizon.
        period_ms: (horizon_ms / 2 / n as u64).max(1),
        blackout_ms: 100,
    });
    spec
}

/// Enable the PR 7 adaptive control loop on any scenario, with shedding
/// allowed — the "adaptive" arm of a static-vs-adaptive comparison. The
/// returned spec keeps the same seed, so both arms replay an identical
/// arrival schedule.
pub fn adaptive_arm(spec: ScenarioSpec) -> ScenarioSpec {
    let name = format!("{}+adaptive", spec.name);
    let mut spec = spec.with_adaptive(AdaptiveSpec {
        enabled: true,
        cooldown_ms: 50,
        max_lanes: 1024,
        max_streams: 4,
        shedding: true,
    });
    spec.name = name;
    spec
}

/// The durability drill: a write-heavy mix against the real `ldb-disk`
/// engine (WAL + group commit; no simulated handler cost — the service
/// time is genuine fsync work), with a blackout storm over the middle of
/// the horizon so recovery and retry behaviour both get exercised. Pair
/// with `Deployment::kill_server` for the full kill-and-replay recipe in
/// EXPERIMENTS.md.
pub fn durability(rate_hz: f64, horizon: Duration) -> ScenarioSpec {
    let mut spec = ScenarioSpec::named("durability")
        .with_rate_hz(rate_hz)
        .with_duration(horizon)
        .with_mix(80, 15, 5)
        .with_backend("ldb-disk");
    spec.handler_cost_us = 0;
    spec.handler_cost_per_key_us = 0;
    let horizon_ms = spec.duration_ms.max(4);
    let seed = spec.seed;
    spec.with_fault(FaultScript {
        seed,
        blackouts: 2,
        first_ms: horizon_ms / 4,
        period_ms: (horizon_ms / 4).max(1),
        blackout_ms: 100,
    })
}

/// A scan-heavy mix useful for multi-key handler-cost scenarios.
pub fn scan_heavy(rate_hz: f64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::named("scan-heavy")
        .with_rate_hz(rate_hz)
        .with_mix(20, 30, 50);
    spec.handler_cost_per_key_us = 50;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_services::scenario::ArrivalProcess;

    #[test]
    fn presets_are_well_formed_and_deterministic() {
        for spec in [
            rate_sweep(1000.0),
            starvation(900.0),
            rdma_crossing(500.0, Duration::from_secs(2)),
            blackout_storm(800.0, Duration::from_secs(2), 3),
            durability(600.0, Duration::from_secs(2)),
            scan_heavy(400.0),
        ] {
            assert!(spec.mix.total() > 0, "{}: degenerate mix", spec.name);
            assert!(spec.total_ops() > 0, "{}: empty schedule", spec.name);
            // Round-trip through the wire format preserves the preset.
            let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, back, "{}: json round trip", spec.name);
        }
    }

    #[test]
    fn rdma_crossing_switches_payload_mid_horizon() {
        let spec = rdma_crossing(500.0, Duration::from_secs(4));
        assert_eq!(spec.large_after_ms, 2000);
        assert!(spec.large_value_size > spec.value_size);
        assert!(matches!(spec.arrivals, ArrivalProcess::Poisson { .. }));
    }

    #[test]
    fn blackout_storm_schedules_every_blackout_inside_the_horizon() {
        let spec = blackout_storm(800.0, Duration::from_secs(2), 4);
        let fault = spec.fault.as_ref().unwrap();
        assert_eq!(fault.blackouts, 4);
        let last_start = fault.first_ms + (fault.blackouts as u64 - 1) * fault.period_ms;
        assert!(last_start + fault.blackout_ms <= spec.duration_ms);
    }

    #[test]
    fn durability_preset_targets_the_real_engine() {
        let spec = durability(600.0, Duration::from_secs(2));
        assert_eq!(spec.backend, "ldb-disk");
        assert!(spec.mix.put > spec.mix.get, "write-heavy by design");
        assert_eq!(spec.handler_cost_us, 0, "service time is real fsync work");
        assert!(spec.fault.is_some());
    }

    #[test]
    fn adaptive_arm_keeps_the_schedule_but_enables_control() {
        let base = starvation(900.0);
        let adaptive = adaptive_arm(base.clone());
        assert_eq!(adaptive.seed, base.seed);
        assert_eq!(adaptive.rate_hz(), base.rate_hz());
        assert!(adaptive.adaptive.enabled && adaptive.adaptive.shedding);
        assert!(adaptive.control_policy().is_some());
        assert!(base.control_policy().is_none());
        assert_eq!(adaptive.name, "starvation+adaptive");
    }
}
