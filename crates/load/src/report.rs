//! Serialization of [`LoadSummary`] and the `BENCH_load.json` sweep
//! schema, in the repo's hand-rolled JSON dialect
//! ([`symbi_core::telemetry::jsonl`]).
//!
//! Two uses: the `load` role of `symbi-netd` writes a summary JSON for
//! the deploying parent to parse back, and the rate-sweep example folds
//! per-rate summaries into `BENCH_load.json`.

use crate::generator::{LoadSummary, PhaseStats};
use std::fmt::Write as _;
use symbi_core::telemetry::jsonl::{parse_json, JsonValue};

/// Serialize one open-loop summary as a flat JSON object
/// (`"kind":"load_summary"`).
pub fn summary_to_json(s: &LoadSummary) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"kind\":\"load_summary\",\"scenario\":");
    push_json_str(&mut out, &s.scenario);
    out.push_str(",\"target\":");
    push_json_str(&mut out, &s.target);
    let _ = write!(
        out,
        ",\"offered_hz\":{},\"achieved_hz\":{},\"duration_s\":{}",
        s.offered_hz, s.achieved_hz, s.duration_s
    );
    let _ = write!(
        out,
        ",\"ops\":{},\"ok\":{},\"shed\":{},\"errors\":{}",
        s.ops, s.ok, s.shed, s.errors
    );
    let _ = write!(
        out,
        ",\"puts\":{},\"gets\":{},\"scans\":{}",
        s.puts, s.gets, s.scans
    );
    let _ = write!(
        out,
        ",\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"mean_ns\":{},\"max_ns\":{}",
        s.p50_ns, s.p99_ns, s.p999_ns, s.mean_ns, s.max_ns
    );
    let _ = write!(
        out,
        ",\"early_ops\":{},\"early_p50_ns\":{},\"early_p99_ns\":{}",
        s.early.ops, s.early.p50_ns, s.early.p99_ns
    );
    if let Some(late) = &s.late {
        let _ = write!(
            out,
            ",\"late_ops\":{},\"late_p50_ns\":{},\"late_p99_ns\":{}",
            late.ops, late.p50_ns, late.p99_ns
        );
    }
    out.push('}');
    out
}

/// Parse a summary produced by [`summary_to_json`].
pub fn summary_from_json(input: &str) -> Result<LoadSummary, String> {
    let v = parse_json(input)?;
    summary_from_value(&v)
}

fn summary_from_value(v: &JsonValue) -> Result<LoadSummary, String> {
    if v.get("kind").and_then(JsonValue::as_str) != Some("load_summary") {
        return Err("not a load summary".into());
    }
    let u = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("load summary missing {key}"))
    };
    let f = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("load summary missing {key}"))
    };
    let s = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("load summary missing {key}"))
    };
    let late = match v.get("late_ops").and_then(JsonValue::as_u64) {
        Some(ops) => Some(PhaseStats {
            ops,
            p50_ns: u("late_p50_ns")?,
            p99_ns: u("late_p99_ns")?,
        }),
        None => None,
    };
    Ok(LoadSummary {
        scenario: s("scenario")?,
        target: s("target")?,
        offered_hz: f("offered_hz")?,
        achieved_hz: f("achieved_hz")?,
        duration_s: f("duration_s")?,
        ops: u("ops")?,
        ok: u("ok")?,
        shed: u("shed")?,
        errors: u("errors")?,
        puts: u("puts")?,
        gets: u("gets")?,
        scans: u("scans")?,
        p50_ns: u("p50_ns")?,
        p99_ns: u("p99_ns")?,
        p999_ns: u("p999_ns")?,
        mean_ns: u("mean_ns")?,
        max_ns: u("max_ns")?,
        early: PhaseStats {
            ops: u("early_ops")?,
            p50_ns: u("early_p50_ns")?,
            p99_ns: u("early_p99_ns")?,
        },
        late,
    })
}

/// Fold a rate sweep into the `BENCH_load.json` document: run metadata
/// plus one `results` entry per offered rate, ordered as given.
pub fn sweep_json(transport: &str, scenario: &str, servers: u32, points: &[LoadSummary]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"kind\":\"bench_load\",\"transport\":");
    push_json_str(&mut out, transport);
    out.push_str(",\"scenario\":");
    push_json_str(&mut out, scenario);
    let _ = write!(out, ",\"servers\":{servers},\"results\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&summary_to_json(p));
    }
    out.push_str("]}");
    out
}

/// Parse the `results` entries of a `BENCH_load.json` document.
pub fn sweep_from_json(input: &str) -> Result<Vec<LoadSummary>, String> {
    let v = parse_json(input)?;
    if v.get("kind").and_then(JsonValue::as_str) != Some("bench_load") {
        return Err("not a bench_load document".into());
    }
    v.get("results")
        .and_then(JsonValue::as_arr)
        .ok_or("bench_load missing results")?
        .iter()
        .map(summary_from_value)
        .collect()
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(late: bool) -> LoadSummary {
        LoadSummary {
            scenario: "sweep \"q\"".into(),
            target: "sdskv@2xfab".into(),
            offered_hz: 1250.0,
            achieved_hz: 1187.5,
            duration_s: 2.5,
            ops: 3125,
            ok: 2969,
            shed: 120,
            errors: 36,
            puts: 1875,
            gets: 1094,
            scans: 156,
            p50_ns: 410_000,
            p99_ns: 9_300_000,
            p999_ns: 22_000_000,
            mean_ns: 910_000,
            max_ns: 41_000_000,
            early: PhaseStats {
                ops: 1500,
                p50_ns: 400_000,
                p99_ns: 4_000_000,
            },
            late: late.then_some(PhaseStats {
                ops: 1469,
                p50_ns: 900_000,
                p99_ns: 18_000_000,
            }),
        }
    }

    #[test]
    fn summary_round_trips_with_and_without_a_late_phase() {
        for late in [false, true] {
            let s = sample(late);
            let back = summary_from_json(&summary_to_json(&s)).unwrap();
            assert_eq!(s, back);
        }
    }

    #[test]
    fn sweep_document_round_trips_every_point_in_order() {
        let points = vec![sample(false), sample(true)];
        let doc = sweep_json("tcp", "rate-sweep", 2, &points);
        let back = sweep_from_json(&doc).unwrap();
        assert_eq!(points, back);
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("transport").and_then(JsonValue::as_str), Some("tcp"));
        assert_eq!(v.get("servers").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn foreign_documents_are_rejected() {
        assert!(summary_from_json("{\"kind\":\"scenario\"}").is_err());
        assert!(sweep_from_json("{\"kind\":\"load_summary\"}").is_err());
    }
}
