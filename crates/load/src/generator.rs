//! The open-loop generator: a fixed virtual-client pool replaying an
//! arrival schedule against a [`WorkloadTarget`].
//!
//! ## Why intended-send-time stamping
//!
//! Each arrival `i` has an intended send time `start + offsets[i]` fixed
//! by the schedule. A virtual client that picks up arrival `i` sleeps
//! until that instant, issues the operation, and records
//!
//! ```text
//! latency(i) = completion(i) − intended(i)
//! ```
//!
//! — *not* `completion − actual_send`. When the pool falls behind (every
//! virtual client stuck waiting on a slow server), the schedule keeps
//! advancing and the slip is charged to the measurement. This is the
//! wrk2 discipline: a closed-loop measurement at the same offered rate
//! would pause the schedule instead and report a flattering p99
//! (coordinated omission). Past saturation the open-loop p99 grows with
//! the backlog — the knee this crate exists to expose.

use crate::rng::mix;
use crate::schedule::arrival_offsets_ns;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use symbi_core::analysis::online::StreamingHistogram;
use symbi_margo::MargoError;
use symbi_mercury::RpcStatus;
use symbi_services::scenario::ScenarioSpec;
use symbi_services::workload::WorkloadTarget;

/// Salt for the op-kind decision stream.
const OP_SALT: u64 = 0x6F70;
/// Salt for the key-choice decision stream.
const KEY_SALT: u64 = 0x6B_6579;

/// Percentiles of one schedule phase (before/after the payload switch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// Successful operations in the phase.
    pub ops: u64,
    /// Median latency from intended send time, ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
}

/// Everything one open-loop run measured. Latency percentiles cover
/// *successful* operations only; `shed` and `errors` are counted but do
/// not dilute the distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSummary {
    /// Scenario name.
    pub scenario: String,
    /// Target description ([`WorkloadTarget::describe`]).
    pub target: String,
    /// Offered rate of the schedule, Hz.
    pub offered_hz: f64,
    /// Successful completions per second of wall time.
    pub achieved_hz: f64,
    /// Wall time from generator start to the last completion, seconds.
    pub duration_s: f64,
    /// Arrivals issued (= the schedule length).
    pub ops: u64,
    /// Operations that completed successfully.
    pub ok: u64,
    /// Operations the server rejected with `Overloaded` — deliberate
    /// backpressure, its own bucket.
    pub shed: u64,
    /// Operations that failed for any other reason.
    pub errors: u64,
    /// Put arrivals.
    pub puts: u64,
    /// Get arrivals.
    pub gets: u64,
    /// Scan arrivals.
    pub scans: u64,
    /// Median latency from intended send, ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// 99.9th percentile, ns.
    pub p999_ns: u64,
    /// Mean, ns.
    pub mean_ns: u64,
    /// Maximum, ns.
    pub max_ns: u64,
    /// Stats of the pre-switch phase (the whole run when the scenario
    /// has no payload switch).
    pub early: PhaseStats,
    /// Stats after `large_after_ms`, when the scenario scripts the
    /// eager→RDMA payload crossing.
    pub late: Option<PhaseStats>,
}

impl LoadSummary {
    /// One human-readable report line.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{}: offered {:.0}/s achieved {:.0}/s ops {} (ok {} shed {} err {}) \
             p50 {:.3}ms p99 {:.3}ms p999 {:.3}ms",
            self.scenario,
            self.offered_hz,
            self.achieved_hz,
            self.ops,
            self.ok,
            self.shed,
            self.errors,
            self.p50_ns as f64 / 1e6,
            self.p99_ns as f64 / 1e6,
            self.p999_ns as f64 / 1e6,
        );
        if let Some(late) = &self.late {
            line.push_str(&format!(
                " | early p99 {:.3}ms -> late p99 {:.3}ms",
                self.early.p99_ns as f64 / 1e6,
                late.p99_ns as f64 / 1e6
            ));
        }
        line
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Put,
    Get,
    Scan,
}

/// The deterministic decision for arrival `i`: op kind and key index.
fn decide(spec: &ScenarioSpec, i: u64) -> (OpKind, u64) {
    let mix_total = spec.mix.total() as u64;
    let r = mix(spec.seed ^ OP_SALT, i) % mix_total;
    let kind = if r < spec.mix.put as u64 {
        OpKind::Put
    } else if r < (spec.mix.put + spec.mix.get) as u64 {
        OpKind::Get
    } else {
        OpKind::Scan
    };
    let key = mix(spec.seed ^ KEY_SALT, i) % spec.key_space.max(1);
    (kind, key)
}

#[derive(Default)]
struct WorkerStats {
    hist: StreamingHistogram,
    early: StreamingHistogram,
    late: StreamingHistogram,
    ok: u64,
    shed: u64,
    errors: u64,
    puts: u64,
    gets: u64,
    scans: u64,
    last_completion_ns: u64,
}

/// Replay `spec`'s schedule against `target` from a pool of
/// `spec.virtual_clients` threads and aggregate the measurement. The
/// target is flushed once after the schedule drains (batched targets
/// issue their tail writes there).
pub fn run_open_loop(target: &dyn WorkloadTarget, spec: &ScenarioSpec) -> LoadSummary {
    let offsets = arrival_offsets_ns(spec);
    let next = AtomicUsize::new(0);
    let workers = spec.virtual_clients.max(1) as usize;
    let large_after_ns = spec.large_after_ms.saturating_mul(1_000_000);
    let start = Instant::now();

    let mut all = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut w = WorkerStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= offsets.len() {
                            break;
                        }
                        let intended_ns = offsets[i];
                        let now_ns = start.elapsed().as_nanos() as u64;
                        if intended_ns > now_ns {
                            std::thread::sleep(Duration::from_nanos(intended_ns - now_ns));
                        }
                        let (kind, key_idx) = decide(spec, i as u64);
                        let key = format!("k-{key_idx:012x}");
                        let is_late = large_after_ns > 0 && intended_ns >= large_after_ns;
                        let result = match kind {
                            OpKind::Put => {
                                w.puts += 1;
                                let size = if is_late && spec.large_value_size > 0 {
                                    spec.large_value_size
                                } else {
                                    spec.value_size
                                } as usize;
                                let fill = mix(spec.seed, i as u64) as u8;
                                target.put(key.as_bytes(), &vec![fill; size]).map(|_| ())
                            }
                            OpKind::Get => {
                                w.gets += 1;
                                target.get(key.as_bytes()).map(|_| ())
                            }
                            OpKind::Scan => {
                                w.scans += 1;
                                target
                                    .scan(key.as_bytes(), spec.scan_span.max(1) as usize)
                                    .map(|_| ())
                            }
                        };
                        let done_ns = start.elapsed().as_nanos() as u64;
                        w.last_completion_ns = w.last_completion_ns.max(done_ns);
                        match result {
                            Ok(()) => {
                                let latency = done_ns.saturating_sub(intended_ns);
                                w.hist.observe(latency);
                                if is_late {
                                    w.late.observe(latency);
                                } else {
                                    w.early.observe(latency);
                                }
                                w.ok += 1;
                            }
                            Err(MargoError::Remote(RpcStatus::Overloaded)) => w.shed += 1,
                            Err(_) => w.errors += 1,
                        }
                    }
                    w
                })
            })
            .collect();
        for h in handles {
            all.push(h.join().expect("virtual client panicked"));
        }
    });

    let mut merged = WorkerStats::default();
    for w in &all {
        merged.hist.merge(&w.hist);
        merged.early.merge(&w.early);
        merged.late.merge(&w.late);
        merged.ok += w.ok;
        merged.shed += w.shed;
        merged.errors += w.errors;
        merged.puts += w.puts;
        merged.gets += w.gets;
        merged.scans += w.scans;
        merged.last_completion_ns = merged.last_completion_ns.max(w.last_completion_ns);
    }
    // Final durability barrier: batched targets drain, durable targets
    // prove everything acked is fsynced. A shedding admission gate
    // refuses the barrier exactly like it refused the ops it would have
    // covered — that is load shedding, not a durability failure.
    match target.flush() {
        Ok(()) | Err(MargoError::Remote(RpcStatus::Overloaded)) => {}
        Err(_) => merged.errors += 1,
    }

    let duration_s = (merged.last_completion_ns.max(1)) as f64 / 1e9;
    let q = |h: &StreamingHistogram, p: f64| h.quantile(p).unwrap_or(0);
    let phase = |h: &StreamingHistogram| PhaseStats {
        ops: h.count(),
        p50_ns: q(h, 0.50),
        p99_ns: q(h, 0.99),
    };
    LoadSummary {
        scenario: spec.name.clone(),
        target: target.describe(),
        offered_hz: spec.rate_hz(),
        achieved_hz: merged.ok as f64 / duration_s,
        duration_s,
        ops: offsets.len() as u64,
        ok: merged.ok,
        shed: merged.shed,
        errors: merged.errors,
        puts: merged.puts,
        gets: merged.gets,
        scans: merged.scans,
        p50_ns: q(&merged.hist, 0.50),
        p99_ns: q(&merged.hist, 0.99),
        p999_ns: q(&merged.hist, 0.999),
        mean_ns: if merged.hist.count() > 0 {
            merged.hist.sum_ns() / merged.hist.count()
        } else {
            0
        },
        max_ns: merged.hist.max_ns(),
        early: phase(&merged.early),
        late: if large_after_ns > 0 {
            Some(phase(&merged.late))
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_decisions_are_deterministic_and_respect_the_mix() {
        let spec = ScenarioSpec::named("mix-test").with_mix(50, 50, 0);
        let mut puts = 0u64;
        for i in 0..10_000 {
            let (a, ka) = decide(&spec, i);
            let (b, kb) = decide(&spec, i);
            assert!(a == b && ka == kb, "decisions are pure");
            if a == OpKind::Put {
                puts += 1;
            }
            assert!(ka < spec.key_space);
        }
        let frac = puts as f64 / 10_000.0;
        assert!((0.45..0.55).contains(&frac), "put fraction {frac}");
        // No scans when the scan weight is zero.
        assert!((0..10_000).all(|i| decide(&spec, i).0 != OpKind::Scan));
    }
}
