//! # symbi-load — the open-loop load plane
//!
//! Every bench the repo had before this crate was *closed-loop*: a fixed
//! set of workers, each issuing its next request only after the previous
//! one completed. Closed loops cannot show queueing collapse — when the
//! server slows down, the offered load politely slows down with it, and
//! the latency a stalled request *would have caused* to the requests
//! queued behind it is never measured. That blind spot is coordinated
//! omission, and it hides exactly the regime where the paper's §V
//! anomalies (progress-ULT starvation, pool backlog) live.
//!
//! This crate drives the composed services **open-loop**:
//!
//! * [`schedule`] turns a [`ScenarioSpec`] into a seeded, deterministic
//!   arrival schedule — Poisson or heavy-tail Pareto inter-arrivals at
//!   an offered rate the *server does not control*;
//! * [`generator`] replays the schedule from a fixed pool of virtual
//!   clients, stamping every request with its **intended** send time.
//!   Latency is measured from the intended time, not the actual send,
//!   so schedule slip (a busy client pool falling behind the arrival
//!   process) is *charged to the server* instead of silently dropped;
//! * results land in log-bucketed
//!   [`symbi_core::analysis::online::StreamingHistogram`]s and are
//!   reported as p50/p99/p999 vs offered rate ([`report`],
//!   `BENCH_load.json`);
//! * [`scenarios`] scripts the paper's anomaly reproductions — progress
//!   starvation, the eager→RDMA payload-threshold crossing, blackout
//!   storms over the existing fault plan — as ready-made specs.
//!
//! Requests the server sheds with `RpcStatus::Overloaded` are counted in
//! their own `shed` bucket, separate from hard `errors`: backpressure is
//! a control decision, not a failure.

pub mod generator;
pub mod report;
pub mod rng;
pub mod scenarios;
pub mod schedule;

pub use generator::{run_open_loop, LoadSummary, PhaseStats};
pub use report::{summary_from_json, summary_to_json, sweep_json};
pub use schedule::arrival_offsets_ns;
pub use symbi_services::scenario::{
    AdaptiveSpec, ArrivalProcess, FaultScript, ScenarioSpec, WorkloadMix, SCENARIO_ENV,
};
pub use symbi_services::workload::{
    BakeTarget, HepnosTarget, RoutedTarget, SdskvTarget, WorkloadTarget,
};
