//! Seeded open-loop arrival schedules.
//!
//! A schedule is the list of *intended* send times (ns offsets from
//! generator start), one per arrival, fixed before the run begins. The
//! server never sees the schedule and cannot slow it down — that is the
//! definition of open-loop. Two runs of the same [`ScenarioSpec`]
//! produce byte-identical schedules (the reproducibility contract the
//! fault plane already keeps).

use crate::rng::SplitMix64;
use symbi_services::scenario::{ArrivalProcess, ScenarioSpec};

/// Generate the arrival schedule of `spec`: `spec.total_ops()`
/// non-decreasing nanosecond offsets from the generator start.
///
/// * Poisson — exponential gaps `-ln(U)/rate`, the memoryless arrival
///   stream of independent users.
/// * Pareto — gaps `x_m · U^(-1/α)` with `x_m = (α-1)/(α·rate)`, mean
///   matched to `1/rate` but heavy-tailed: long quiet gaps and dense
///   bursts at the *same* offered rate, the burstier traffic shape
///   production services see.
pub fn arrival_offsets_ns(spec: &ScenarioSpec) -> Vec<u64> {
    let n = spec.total_ops() as usize;
    let rate = spec.rate_hz().max(1e-9);
    let mean_gap_ns = 1e9 / rate;
    let mut rng = SplitMix64::new(spec.seed ^ 0x5CED_41E5_0FF5_E75A);
    let mut t_ns = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let u = rng.next_unit();
        let gap = match &spec.arrivals {
            ArrivalProcess::Poisson { .. } => -mean_gap_ns * u.ln(),
            ArrivalProcess::Pareto { alpha, .. } => {
                // alpha must exceed 1 for the mean to exist; clamp so a
                // mis-specified spec degrades instead of diverging.
                let a = alpha.max(1.05);
                let xm = mean_gap_ns * (a - 1.0) / a;
                xm * u.powf(-1.0 / a)
            }
        };
        t_ns += gap;
        out.push(t_ns as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn poisson_spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec::named("sched-test")
            .with_rate_hz(10_000.0)
            .with_duration(Duration::from_secs(5))
            .with_seed(seed)
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let a = arrival_offsets_ns(&poisson_spec(42));
        let b = arrival_offsets_ns(&poisson_spec(42));
        let c = arrival_offsets_ns(&poisson_spec(43));
        assert_eq!(a, b, "same spec, same schedule");
        assert_ne!(a, c, "seed changes the schedule");
        assert_eq!(a.len(), 50_000);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
    }

    #[test]
    fn poisson_mean_gap_matches_the_offered_rate() {
        let offs = arrival_offsets_ns(&poisson_spec(7));
        let horizon = *offs.last().unwrap() as f64 / 1e9;
        let achieved = offs.len() as f64 / horizon;
        assert!(
            (achieved - 10_000.0).abs() / 10_000.0 < 0.05,
            "offered ~10k Hz, schedule carries {achieved:.0} Hz"
        );
    }

    #[test]
    fn pareto_matches_rate_but_is_heavier_tailed() {
        let pareto = ScenarioSpec::named("pareto-test")
            .with_arrivals(ArrivalProcess::Pareto {
                rate_hz: 10_000.0,
                alpha: 1.5,
            })
            .with_duration(Duration::from_secs(5))
            .with_seed(7);
        let p_offs = arrival_offsets_ns(&pareto);
        let horizon = *p_offs.last().unwrap() as f64 / 1e9;
        let achieved = p_offs.len() as f64 / horizon;
        assert!(
            (achieved - 10_000.0).abs() / 10_000.0 < 0.35,
            "pareto mean rate within sampling error of 10k Hz, got {achieved:.0}"
        );
        // Tail check: the largest Pareto gap dwarfs the largest Poisson
        // gap at the same rate and sample count.
        let max_gap = |offs: &[u64]| offs.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        let poisson_max = max_gap(&arrival_offsets_ns(&poisson_spec(7)));
        let pareto_max = max_gap(&p_offs);
        assert!(
            pareto_max > poisson_max * 2,
            "heavy tail: pareto max gap {pareto_max}ns vs poisson {poisson_max}ns"
        );
    }
}
