//! Deterministic randomness for schedules and workload choices.
//!
//! SplitMix64 — the same zero-dependency generator family the retry
//! jitter and synthetic-event paths use. Two forms: a sequential stream
//! for schedule generation, and a stateless mix for per-arrival
//! decisions (op kind, key), so any worker can decide arrival `i`
//! without sharing generator state.

/// Sequential SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded stream; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Next uniform draw in the half-open-at-zero interval `(0, 1]` —
    /// safe as a log argument.
    pub fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }
}

/// Stateless per-index hash: the decision stream for arrival `i` under
/// `seed`, independent of which worker evaluates it.
pub fn mix(seed: u64, i: u64) -> u64 {
    mix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_draws_stay_in_range_and_spread() {
        let mut r = SplitMix64::new(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.next_unit();
            assert!(u > 0.0 && u <= 1.0, "u = {u}");
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn stateless_mix_is_order_free() {
        assert_eq!(mix(1, 5), mix(1, 5));
        assert_ne!(mix(1, 5), mix(1, 6));
        assert_ne!(mix(1, 5), mix(2, 5));
    }
}
