//! End-to-end smoke of the open-loop generator over a real (in-process)
//! fabric: schedule replay, result classification, the shed bucket, and
//! the early/late phase split.

use std::time::Duration;
use symbi_fabric::{Fabric, NetworkModel};
use symbi_load::{run_open_loop, scenarios, summary_from_json, summary_to_json, ScenarioSpec};
use symbi_load::{RoutedTarget, SdskvTarget, WorkloadTarget};
use symbi_margo::{MargoConfig, MargoInstance};
use symbi_services::kv::{BackendKind, BackendMode};
use symbi_services::sdskv::{SdskvClient, SdskvProvider, SdskvSpec};

fn quick_spec() -> SdskvSpec {
    SdskvSpec {
        num_databases: 4,
        backend: BackendKind::Map,
        mode: BackendMode::simulated_free(),
        handler_cost: Duration::ZERO,
        handler_cost_per_key: Duration::ZERO,
    }
}

struct Deployment {
    servers: Vec<MargoInstance>,
    client: MargoInstance,
}

impl Deployment {
    fn launch(fabric: &Fabric, n: usize) -> (Deployment, RoutedTarget) {
        let client = MargoInstance::new(fabric.clone(), MargoConfig::client("load-smoke"));
        let mut servers = Vec::new();
        let mut targets: Vec<Box<dyn WorkloadTarget>> = Vec::new();
        for i in 0..n {
            let server = MargoInstance::new(
                fabric.clone(),
                MargoConfig::server(format!("load-srv-{i}"), 2),
            );
            let _provider = SdskvProvider::attach(&server, quick_spec());
            targets.push(Box::new(SdskvTarget::new(
                SdskvClient::new(client.clone(), server.addr()),
                4,
            )));
            servers.push(server);
        }
        (Deployment { servers, client }, RoutedTarget::new(targets))
    }

    fn finalize(self) {
        self.client.finalize();
        for s in self.servers {
            s.finalize();
        }
    }
}

#[test]
fn open_loop_run_accounts_for_every_arrival() {
    let fabric = Fabric::new(NetworkModel::instant());
    let (dep, target) = Deployment::launch(&fabric, 2);
    let spec = ScenarioSpec::named("smoke")
        .with_rate_hz(4000.0)
        .with_duration(Duration::from_millis(250))
        .with_virtual_clients(8);

    let summary = run_open_loop(&target, &spec);
    assert_eq!(summary.ops, spec.total_ops());
    assert_eq!(summary.ok + summary.shed + summary.errors, summary.ops);
    assert_eq!(summary.errors, 0, "healthy run: {}", summary.render());
    assert_eq!(summary.shed, 0);
    assert_eq!(summary.puts + summary.gets + summary.scans, summary.ops);
    assert!(summary.puts > 0 && summary.gets > 0 && summary.scans > 0);
    assert!(summary.p50_ns > 0 && summary.p99_ns >= summary.p50_ns);
    assert!(summary.p999_ns >= summary.p99_ns);
    assert!(summary.achieved_hz > 0.0);
    assert!(summary.late.is_none(), "no payload switch scripted");
    assert_eq!(summary.early.ops, summary.ok);

    // The wire format carries the whole measurement.
    let back = summary_from_json(&summary_to_json(&summary)).unwrap();
    assert_eq!(summary, back);
    dep.finalize();
}

#[test]
fn overloaded_rejections_land_in_the_shed_bucket_not_errors() {
    let fabric = Fabric::new(NetworkModel::instant());
    let (dep, target) = Deployment::launch(&fabric, 1);
    // Close the admission gate: every RPC now comes back Overloaded.
    dep.servers[0].force_shed(true);

    let spec = ScenarioSpec::named("shed-all")
        .with_rate_hz(2000.0)
        .with_duration(Duration::from_millis(100))
        .with_virtual_clients(4);
    let summary = run_open_loop(&target, &spec);
    assert_eq!(summary.ok, 0, "{}", summary.render());
    assert_eq!(
        summary.errors,
        0,
        "shed is not an error: {}",
        summary.render()
    );
    assert_eq!(summary.shed, summary.ops);
    assert!(
        dep.servers[0].shed_rejected_total() >= summary.shed,
        "server counted its rejections"
    );
    dep.finalize();
}

#[test]
fn rdma_crossing_scenario_splits_early_and_late_phases() {
    let fabric = Fabric::new(NetworkModel::instant());
    let (dep, target) = Deployment::launch(&fabric, 2);
    let spec = scenarios::rdma_crossing(2000.0, Duration::from_millis(400)).with_virtual_clients(8);

    let summary = run_open_loop(&target, &spec);
    let late = summary.late.as_ref().expect("payload switch scripted");
    assert_eq!(summary.errors, 0, "{}", summary.render());
    assert_eq!(summary.early.ops + late.ops, summary.ok);
    assert!(summary.early.ops > 0, "ops before the switch");
    assert!(late.ops > 0, "ops after the switch");
    dep.finalize();
}
