//! Accuracy contract for the log-bucketed latency histogram the load
//! plane reports through: across qualitatively different latency
//! shapes, every quantile estimate must land within one bucket of the
//! exact sorted percentile.

use symbi_core::analysis::online::StreamingHistogram;
use symbi_load::rng::SplitMix64;

/// Exact percentile of a sorted sample using the ceil-rank convention.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Assert the histogram estimate is within one log-linear bucket of the
/// exact value: the estimate is a bucket upper bound, and it must be the
/// bound of the exact value's bucket or an immediately adjacent one.
fn assert_within_one_bucket(label: &str, q: f64, estimate: u64, exact: u64) {
    let (lo, ub) = StreamingHistogram::bucket_bounds(exact);
    let prev = StreamingHistogram::bucket_upper_bound(lo.max(1));
    let next = StreamingHistogram::bucket_upper_bound(ub.saturating_add(1));
    let neighbors = [prev, ub, next];
    assert!(
        neighbors.contains(&estimate),
        "{label} q={q}: estimate {estimate}ns not within one bucket of \
         exact {exact}ns (bucket upper bound {ub}ns)"
    );
    assert!(
        estimate >= lo,
        "{label} q={q}: estimate {estimate}ns underestimates exact {exact}ns \
         by more than a bucket"
    );
    // The log-linear sub-buckets bound the overestimate at ~25% of the
    // octave base plus one-bucket adjacency slack (pure power-of-two
    // buckets could be 2x off here).
    assert!(
        estimate <= exact + exact / 2 + 2048,
        "{label} q={q}: estimate {estimate}ns overestimates exact {exact}ns \
         beyond the sub-bucket error bound"
    );
}

fn check_distribution(label: &str, samples: Vec<u64>) {
    let mut hist = StreamingHistogram::default();
    for &s in &samples {
        hist.observe(s);
    }
    let mut sorted = samples;
    sorted.sort_unstable();
    for q in [0.50, 0.90, 0.99, 0.999] {
        let estimate = hist.quantile(q).expect("non-empty histogram");
        let exact = exact_percentile(&sorted, q);
        assert_within_one_bucket(label, q, estimate, exact);
    }
}

#[test]
fn uniform_latencies_estimate_within_one_bucket() {
    let mut rng = SplitMix64::new(11);
    // Uniform over [50µs, 950µs].
    let samples: Vec<u64> = (0..20_000)
        .map(|_| 50_000 + (rng.next_unit() * 900_000.0) as u64)
        .collect();
    check_distribution("uniform", samples);
}

#[test]
fn exponential_latencies_estimate_within_one_bucket() {
    let mut rng = SplitMix64::new(12);
    // Exponential with a 200µs mean — the long right tail stresses the
    // coarse upper buckets.
    let samples: Vec<u64> = (0..20_000)
        .map(|_| (-200_000.0 * rng.next_unit().ln()) as u64)
        .collect();
    check_distribution("exponential", samples);
}

#[test]
fn bimodal_latencies_estimate_within_one_bucket() {
    let mut rng = SplitMix64::new(13);
    // 90% fast (~80µs) / 10% slow (~12ms) — the fast-path/slow-path
    // split services actually produce; p99 sits in the slow mode.
    let samples: Vec<u64> = (0..20_000)
        .map(|_| {
            if rng.next_unit() < 0.9 {
                60_000 + (rng.next_unit() * 40_000.0) as u64
            } else {
                8_000_000 + (rng.next_unit() * 8_000_000.0) as u64
            }
        })
        .collect();
    check_distribution("bimodal", samples);
}
