//! Wire codec for RPC metadata and service arguments.
//!
//! Mercury serializes RPC input/output with user-supplied proc routines;
//! the (de)serialization cost is visible in the paper as the
//! `input_serialization_time` / `input_deserialization_time` PVARs and
//! accounts for 27% of target execution time in the Sonata case study
//! (Figure 7). This codec performs real byte-level encoding so those costs
//! scale with payload size in the reproduction too.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the read required.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// A length prefix or enum discriminant was out of range.
    Invalid(&'static str),
    /// Payload was not valid UTF-8 where a string was expected.
    Utf8(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated {
                what,
                needed,
                available,
            } => write!(f, "truncated {what}: needed {needed}, had {available}"),
            CodecError::Invalid(what) => write!(f, "invalid {what}"),
            CodecError::Utf8(what) => write!(f, "invalid utf-8 in {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Streaming encoder over a growable buffer.
#[derive(Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// New encoder with reserved capacity (avoids regrowth on hot paths).
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a `u16` (little endian).
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16_le(v);
        self
    }

    /// Append a `u32` (little endian).
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a `u64` (little endian).
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append an `i64` (little endian).
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.put_i64_le(v);
        self
    }

    /// Append an `f64` (IEEE-754 bits, little endian).
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.put_f64_le(v);
        self
    }

    /// Append a length-prefixed byte string (u32 length).
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Append raw bytes with no length prefix.
    pub fn put_raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }

    /// Finish encoding, yielding the immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Streaming decoder over an immutable buffer.
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Wrap a buffer for decoding.
    pub fn new(buf: Bytes) -> Self {
        Decoder { buf }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, what: &'static str, n: usize) -> Result<(), CodecError> {
        if self.buf.remaining() < n {
            Err(CodecError::Truncated {
                what,
                needed: n,
                available: self.buf.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        self.need("u8", 1)?;
        Ok(self.buf.get_u8())
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        self.need("u16", 2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        self.need("u32", 4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        self.need("u64", 8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        self.need("i64", 8)?;
        Ok(self.buf.get_i64_le())
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        self.need("f64", 8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Read a length-prefixed byte string (zero-copy slice of the input).
    pub fn get_bytes(&mut self) -> Result<Bytes, CodecError> {
        let len = self.get_u32()? as usize;
        self.need("bytes body", len)?;
        Ok(self.buf.split_to(len))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::Utf8("string"))
    }

    /// Read `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<Bytes, CodecError> {
        self.need("raw", n)?;
        Ok(self.buf.split_to(n))
    }
}

/// Types that can be encoded/decoded on the wire. Service argument structs
/// implement this (the analogue of Mercury proc routines).
pub trait Wire: Sized {
    /// Append this value to the encoder.
    fn encode(&self, enc: &mut Encoder);
    /// Decode a value.
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError>;

    /// Convenience: encode to a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Convenience: decode from a whole buffer.
    fn from_bytes(buf: Bytes) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(buf);
        Self::decode(&mut dec)
    }
}

impl Wire for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        dec.get_u64()
    }
}

impl Wire for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        dec.get_u32()
    }
}

impl Wire for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        dec.get_str()
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(dec.get_bytes()?.to_vec())
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.len() as u32);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let n = dec.get_u32()? as usize;
        // Guard against hostile/corrupt length prefixes.
        if n > dec.remaining() {
            return Err(CodecError::Invalid("vec length prefix"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_u8(7)
            .put_u16(300)
            .put_u32(70_000)
            .put_u64(u64::MAX)
            .put_i64(-5)
            .put_f64(1.25);
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u16().unwrap(), 300);
        assert_eq!(dec.get_u32().unwrap(), 70_000);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_i64().unwrap(), -5);
        assert_eq!(dec.get_f64().unwrap(), 1.25);
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn bytes_and_str_roundtrip() {
        let mut enc = Encoder::new();
        enc.put_bytes(b"abc").put_str("caf\u{e9}");
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(&dec.get_bytes().unwrap()[..], b"abc");
        assert_eq!(dec.get_str().unwrap(), "caf\u{e9}");
    }

    #[test]
    fn truncated_read_is_error() {
        let mut dec = Decoder::new(Bytes::from_static(&[1, 2]));
        let err = dec.get_u32().unwrap_err();
        assert!(matches!(err, CodecError::Truncated { needed: 4, .. }));
    }

    #[test]
    fn truncated_bytes_body_is_error() {
        let mut enc = Encoder::new();
        enc.put_u32(100); // claims 100 bytes follow
        enc.put_raw(b"short");
        let mut dec = Decoder::new(enc.finish());
        assert!(matches!(dec.get_bytes(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn invalid_utf8_is_error() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xFF, 0xFE]);
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(dec.get_str().unwrap_err(), CodecError::Utf8("string"));
    }

    #[test]
    fn wire_vec_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 3, 4];
        let decoded = Vec::<u64>::from_bytes(v.to_bytes()).unwrap();
        assert_eq!(decoded, v);
    }

    #[test]
    fn wire_pair_roundtrip() {
        let p = ("key".to_string(), vec![9u8, 8, 7]);
        let decoded = <(String, Vec<u8>)>::from_bytes(p.to_bytes()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn hostile_vec_length_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX); // absurd element count
        let res = Vec::<u64>::from_bytes(enc.finish());
        assert!(matches!(res, Err(CodecError::Invalid(_))));
    }

    #[test]
    fn get_raw_zero_copy_slices() {
        let mut enc = Encoder::new();
        enc.put_raw(b"0123456789");
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(&dec.get_raw(4).unwrap()[..], b"0123");
        assert_eq!(&dec.get_raw(6).unwrap()[..], b"456789");
        assert!(dec.get_raw(1).is_err());
    }
}
