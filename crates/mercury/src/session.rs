//! The PVAR tool-session API (paper §IV-B2).
//!
//! External tools (SYMBIOSYS's Margo bridge, or any other monitor) sample
//! Mercury PVARs through a session:
//!
//! 1. initialize a session ([`crate::HgClass::pvar_session`]),
//! 2. query the exported variables ([`PvarSession::query`]),
//! 3. allocate handles for the PVARs of interest
//!    ([`PvarSession::alloc_handle`]),
//! 4. sample them ([`PvarSession::sample`]), supplying the Mercury handle
//!    object for HANDLE-bound PVARs,
//! 5. finalize ([`PvarSession::finalize`], or drop).

use crate::class::HgClass;
use crate::pvar::{pvar_info, HandlePvars, PvarBind, PvarError, PvarId, PvarInfo, PVAR_TABLE};
use std::sync::atomic::{AtomicBool, Ordering};

/// An allocated handle for sampling one PVAR.
#[derive(Debug, Clone, Copy)]
pub struct PvarHandle {
    info: &'static PvarInfo,
}

impl PvarHandle {
    /// The PVAR this handle samples.
    pub fn info(&self) -> &'static PvarInfo {
        self.info
    }

    /// The PVAR id.
    pub fn id(&self) -> PvarId {
        self.info.id
    }
}

/// An open tool session against one Mercury instance.
pub struct PvarSession {
    hg: HgClass,
    finalized: AtomicBool,
}

impl std::fmt::Debug for PvarSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PvarSession(finalized={})",
            self.finalized.load(Ordering::Relaxed)
        )
    }
}

impl HgClass {
    /// Initialize a PVAR tool session (step 1 of §IV-B2).
    pub fn pvar_session(&self) -> PvarSession {
        self.inner.active_sessions.fetch_add(1, Ordering::Relaxed);
        PvarSession {
            hg: self.clone(),
            finalized: AtomicBool::new(false),
        }
    }

    /// Number of currently open tool sessions.
    pub fn active_pvar_sessions(&self) -> u64 {
        self.inner.active_sessions.load(Ordering::Relaxed)
    }
}

impl PvarSession {
    fn check_open(&self) -> Result<(), PvarError> {
        if self.finalized.load(Ordering::Acquire) {
            Err(PvarError::Finalized)
        } else {
            Ok(())
        }
    }

    /// Query the number, type, binding, and description of all exported
    /// PVARs (step 2).
    pub fn query(&self) -> Result<&'static [PvarInfo], PvarError> {
        self.check_open()?;
        Ok(PVAR_TABLE)
    }

    /// Allocate a sampling handle for one PVAR (step 3).
    pub fn alloc_handle(&self, id: PvarId) -> Result<PvarHandle, PvarError> {
        self.check_open()?;
        let info = pvar_info(id).ok_or(PvarError::Unknown(id))?;
        Ok(PvarHandle { info })
    }

    /// Sample a PVAR (step 4). HANDLE-bound PVARs require the Mercury
    /// handle's PVAR block; NO_OBJECT PVARs ignore it.
    pub fn sample(
        &self,
        handle: &PvarHandle,
        object: Option<&HandlePvars>,
    ) -> Result<u64, PvarError> {
        self.check_open()?;
        match handle.info.bind {
            PvarBind::NoObject => self
                .hg
                .read_global_pvar(handle.info.id)
                .ok_or(PvarError::Unknown(handle.info.id)),
            PvarBind::Handle => {
                let obj = object.ok_or(PvarError::HandleRequired(handle.info.id))?;
                obj.read(handle.info.id)
                    .ok_or(PvarError::Unknown(handle.info.id))
            }
        }
    }

    /// Finalize the session (step 5). Idempotent; also runs on drop.
    pub fn finalize(&self) {
        if !self.finalized.swap(true, Ordering::AcqRel) {
            self.hg
                .inner
                .active_sessions
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Drop for PvarSession {
    fn drop(&mut self) {
        self.finalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvar::ids;
    use crate::HgConfig;
    use symbi_fabric::{Fabric, NetworkModel};

    fn hg() -> HgClass {
        HgClass::init(Fabric::new(NetworkModel::instant()), HgConfig::default())
    }

    #[test]
    fn session_lifecycle() {
        let hg = hg();
        assert_eq!(hg.active_pvar_sessions(), 0);
        let s = hg.pvar_session();
        assert_eq!(hg.active_pvar_sessions(), 1);
        s.finalize();
        assert_eq!(hg.active_pvar_sessions(), 0);
        // Finalize is idempotent.
        s.finalize();
        assert_eq!(hg.active_pvar_sessions(), 0);
    }

    #[test]
    fn drop_finalizes_session() {
        let hg = hg();
        {
            let _s = hg.pvar_session();
            assert_eq!(hg.active_pvar_sessions(), 1);
        }
        assert_eq!(hg.active_pvar_sessions(), 0);
    }

    #[test]
    fn finalized_session_rejects_operations() {
        let hg = hg();
        let s = hg.pvar_session();
        s.finalize();
        assert_eq!(s.query().unwrap_err(), PvarError::Finalized);
        assert_eq!(
            s.alloc_handle(ids::NUM_RPCS_INVOKED).unwrap_err(),
            PvarError::Finalized
        );
    }

    #[test]
    fn query_lists_all_pvars() {
        let hg = hg();
        let s = hg.pvar_session();
        let infos = s.query().unwrap();
        assert!(infos.len() >= 8, "expected the Table II PVARs at minimum");
    }

    #[test]
    fn unknown_pvar_rejected() {
        let hg = hg();
        let s = hg.pvar_session();
        assert_eq!(
            s.alloc_handle(PvarId(9999)).unwrap_err(),
            PvarError::Unknown(PvarId(9999))
        );
    }

    #[test]
    fn sample_global_pvar() {
        let hg = hg();
        let s = hg.pvar_session();
        let h = s.alloc_handle(ids::EAGER_BUFFER_SIZE).unwrap();
        assert_eq!(s.sample(&h, None).unwrap(), 4096);
    }

    #[test]
    fn handle_bound_pvar_requires_object() {
        let hg = hg();
        let s = hg.pvar_session();
        let h = s.alloc_handle(ids::INPUT_SERIALIZATION_TIME).unwrap();
        assert_eq!(
            s.sample(&h, None).unwrap_err(),
            PvarError::HandleRequired(ids::INPUT_SERIALIZATION_TIME)
        );
        let block = HandlePvars::default();
        block
            .input_serialization_ns
            .store(55, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(s.sample(&h, Some(&block)).unwrap(), 55);
    }
}
