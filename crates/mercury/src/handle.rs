//! RPC handles: the origin-side [`Handle`], the target-side
//! [`ServerHandle`], and the [`Response`] delivered to completion
//! callbacks.
//!
//! Every RPC is associated with a handle object; HANDLE-bound PVARs
//! (paper Table II) live in the handle's [`HandlePvars`] block and go out
//! of scope when the RPC completes.

use crate::class::HgClass;
use crate::codec::{CodecError, Wire};
use crate::header::{RdmaRef, RpcMeta, RpcStatus};
use crate::pvar::HandlePvars;
use crate::HgError;
use bytes::{Bytes, BytesMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifier of a posted origin-side handle, unique per Mercury instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandleId(pub u64);

/// Origin-side RPC handle, created by [`HgClass::create_handle`] and
/// consumed by [`HgClass::forward`].
pub struct Handle {
    pub(crate) id: HandleId,
    pub(crate) dest: symbi_fabric::Addr,
    pub(crate) rpc_id: u64,
    pub(crate) pvars: Arc<HandlePvars>,
}

impl std::fmt::Debug for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Handle(id={}, rpc={:#x}, dest={})",
            self.id.0, self.rpc_id, self.dest
        )
    }
}

impl Handle {
    /// The handle's id.
    pub fn id(&self) -> HandleId {
        self.id
    }

    /// Destination address.
    pub fn dest(&self) -> symbi_fabric::Addr {
        self.dest
    }

    /// Registered RPC id this handle will invoke.
    pub fn rpc_id(&self) -> u64 {
        self.rpc_id
    }

    /// This handle's PVAR block (HANDLE-bound PVARs).
    pub fn pvars(&self) -> &Arc<HandlePvars> {
        &self.pvars
    }

    /// Serialize an input value for this handle, recording the
    /// `input_serialization_time` and `handle_input_size` PVARs
    /// (interval t2→t3 of the paper's Figure 2).
    pub fn serialize_input<T: Wire>(&self, value: &T) -> Bytes {
        let start = Instant::now();
        let bytes = value.to_bytes();
        self.pvars
            .input_serialization_ns
            .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.pvars
            .input_size
            .store(bytes.len() as u64, Ordering::Relaxed);
        bytes
    }
}

/// The response delivered to an origin completion callback at t14.
pub struct Response {
    /// Completion status reported by the target.
    pub status: RpcStatus,
    /// Serialized output payload.
    pub output: Bytes,
    /// Target's Lamport clock at response time (merged by the tracer).
    pub lamport: u64,
    /// The originating handle's PVAR block, still alive inside the
    /// callback so tools can sample it before it goes out of scope.
    pub pvars: Arc<HandlePvars>,
}

impl Response {
    /// Deserialize the output, recording `output_deserialization_time`.
    pub fn deserialize<T: Wire>(&self) -> Result<T, CodecError> {
        let start = Instant::now();
        let v = T::from_bytes(self.output.clone());
        self.pvars
            .output_deserialization_ns
            .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        v
    }

    /// Whether the RPC completed successfully.
    pub fn is_ok(&self) -> bool {
        self.status == RpcStatus::Ok
    }
}

impl std::fmt::Debug for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Response(status={:?}, {} output bytes)",
            self.status,
            self.output.len()
        )
    }
}

/// Origin-side bookkeeping for a posted (in-flight) handle.
pub(crate) struct Posted {
    pub(crate) cb: Box<dyn FnOnce(Response) + Send>,
    pub(crate) pvars: Arc<HandlePvars>,
    /// Destination the request was forwarded to; lets the progress loop
    /// fail every handle aimed at a peer whose link just went down.
    pub(crate) dest: symbi_fabric::Addr,
    /// Key of the request's overflow region, unregistered on completion.
    pub(crate) rdma_key: Option<symbi_fabric::MemKey>,
    /// When set, `progress` expires the handle at this instant and
    /// completes it with [`RpcStatus::Timeout`].
    pub(crate) deadline: Option<Instant>,
}

/// Target-side handle for one received RPC. Moved into the handler ULT by
/// Margo; the handler reads the input through it and responds through it.
pub struct ServerHandle {
    pub(crate) hg: HgClass,
    pub(crate) origin: symbi_fabric::Addr,
    pub(crate) origin_handle_id: u64,
    pub(crate) rpc_id: u64,
    pub(crate) meta: RpcMeta,
    pub(crate) inline: Bytes,
    pub(crate) rdma: Option<RdmaRef>,
    pub(crate) pvars: Arc<HandlePvars>,
    pub(crate) arrived_at: Instant,
    pub(crate) responded: AtomicBool,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ServerHandle(rpc={:#x}, from={}, callpath={:#x})",
            self.rpc_id, self.origin, self.meta.callpath
        )
    }
}

impl ServerHandle {
    /// Registered RPC id being invoked.
    pub fn rpc_id(&self) -> u64 {
        self.rpc_id
    }

    /// Name registered for this RPC id, if known on this instance.
    pub fn rpc_name(&self) -> Option<String> {
        self.hg.rpc_name(self.rpc_id)
    }

    /// The SYMBIOSYS request metadata propagated from the origin.
    pub fn meta(&self) -> RpcMeta {
        self.meta
    }

    /// Address of the calling origin.
    pub fn origin(&self) -> symbi_fabric::Addr {
        self.origin
    }

    /// When the request was read from the network layer (≈t3/t4).
    pub fn arrived_at(&self) -> Instant {
        self.arrived_at
    }

    /// This handle's PVAR block.
    pub fn pvars(&self) -> &Arc<HandlePvars> {
        &self.pvars
    }

    /// Assemble the full serialized input. If the request metadata
    /// overflowed the eager buffer, this performs the internal RDMA pull
    /// and records `internal_rdma_transfer_time` (interval t3→t4).
    pub fn input_bytes(&self) -> Result<Bytes, HgError> {
        match self.rdma {
            None => Ok(self.inline.clone()),
            Some(r) => {
                let start = Instant::now();
                let rest =
                    self.hg
                        .fabric()
                        .rdma_get(symbi_fabric::MemKey(r.key), 0, r.len as usize)?;
                self.pvars
                    .internal_rdma_transfer_ns
                    .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if self.inline.is_empty() {
                    Ok(rest)
                } else {
                    let mut buf = BytesMut::with_capacity(self.inline.len() + rest.len());
                    buf.extend_from_slice(&self.inline);
                    buf.extend_from_slice(&rest);
                    Ok(buf.freeze())
                }
            }
        }
    }

    /// Deserialize the input, recording `input_deserialization_time`
    /// (interval t6→t7) and `handle_input_size`.
    pub fn input<T: Wire>(&self) -> Result<T, HgError> {
        let bytes = self.input_bytes()?;
        self.pvars
            .input_size
            .store(bytes.len() as u64, Ordering::Relaxed);
        let start = Instant::now();
        let v = T::from_bytes(bytes).map_err(HgError::Codec)?;
        self.pvars
            .input_deserialization_ns
            .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(v)
    }

    /// Serialize and send a successful response, recording
    /// `output_serialization_time` (t9→t10). `on_sent` is queued on this
    /// instance's completion queue and runs when the progress loop
    /// triggers it — the paper's t13 *target completion callback*.
    pub fn respond<T: Wire>(
        &self,
        value: &T,
        on_sent: impl FnOnce() + Send + 'static,
    ) -> Result<(), HgError> {
        let start = Instant::now();
        let bytes = value.to_bytes();
        self.pvars
            .output_serialization_ns
            .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.pvars
            .output_size
            .store(bytes.len() as u64, Ordering::Relaxed);
        self.respond_raw(RpcStatus::Ok, bytes, Box::new(on_sent))
    }

    /// Send a pre-serialized response payload.
    pub fn respond_bytes(
        &self,
        status: RpcStatus,
        output: Bytes,
        on_sent: impl FnOnce() + Send + 'static,
    ) -> Result<(), HgError> {
        self.pvars
            .output_size
            .store(output.len() as u64, Ordering::Relaxed);
        self.respond_raw(status, output, Box::new(on_sent))
    }

    fn respond_raw(
        &self,
        status: RpcStatus,
        output: Bytes,
        on_sent: Box<dyn FnOnce() + Send>,
    ) -> Result<(), HgError> {
        if self.responded.swap(true, Ordering::AcqRel) {
            return Err(HgError::AlreadyResponded);
        }
        self.hg
            .send_response(self.origin, self.origin_handle_id, status, output, on_sent)
    }

    /// Whether a response has already been issued.
    pub fn has_responded(&self) -> bool {
        self.responded.load(Ordering::Acquire)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A handler that forgets to respond would leave the origin blocked
        // forever; surface the bug as an error response instead.
        if !self.has_responded() {
            let _ = self.hg.send_response(
                self.origin,
                self.origin_handle_id,
                RpcStatus::HandlerError,
                Bytes::new(),
                Box::new(|| {}),
            );
        }
    }
}
