//! # symbi-mercury — a Mercury-like RPC framework with a PVAR tool interface
//!
//! [Mercury](https://mercury-hpc.github.io) is the RPC layer of the Mochi
//! stack. This crate re-implements its execution model as described in the
//! SYMBIOSYS paper (IPDPS 2021, Figure 2):
//!
//! * origin: create handle → serialize input (t2–t3) → forward; eager
//!   metadata with an internal-RDMA overflow path,
//! * target: `progress` reads bounded batches of network events
//!   (`OFI_max_events`) into a completion queue, `trigger` dispatches the
//!   registered callback, the handler deserializes (t6–t7), responds
//!   (t9–t10), and a target-side completion callback fires at t13,
//! * origin: response enters the completion queue at t12 and the user
//!   callback runs at t14.
//!
//! The crate also implements the paper's §IV-B contribution: a
//! **performance-variable (PVAR) interface** exposing internal metrics
//! (Tables I & II) to external tools through sessions, with NO_OBJECT and
//! HANDLE bindings. SYMBIOSYS's Margo bridge is one such tool.
//!
//! ## Example: a complete RPC round trip
//!
//! ```
//! use symbi_mercury::{HgClass, HgConfig, RpcMeta, forward_value};
//! use symbi_fabric::{Fabric, NetworkModel};
//! use std::time::Duration;
//!
//! let fabric = Fabric::new(NetworkModel::instant());
//! let client = HgClass::init(fabric.clone(), HgConfig::default());
//! let server = HgClass::init(fabric, HgConfig::default());
//!
//! let rpc = server.register("echo");
//! client.register("echo");
//! server.set_handler(rpc, std::sync::Arc::new(|sh: symbi_mercury::ServerHandle| {
//!     let input: u64 = sh.input().unwrap();
//!     sh.respond(&(input + 1), || {}).unwrap();
//! }));
//!
//! let done = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
//! let done2 = done.clone();
//! forward_value(&client, server.addr(), rpc, RpcMeta::default(), &41u64, move |resp| {
//!     done2.store(resp.deserialize::<u64>().unwrap(), std::sync::atomic::Ordering::SeqCst);
//! }).unwrap();
//!
//! // Pump both progress loops (normally Margo's progress ULTs do this).
//! while done.load(std::sync::atomic::Ordering::SeqCst) == 0 {
//!     server.progress(16, Duration::ZERO);
//!     server.trigger(16);
//!     client.progress(16, Duration::ZERO);
//!     client.trigger(16);
//! }
//! assert_eq!(done.load(std::sync::atomic::Ordering::SeqCst), 42);
//! ```

mod class;
pub mod codec;
mod handle;
mod header;
pub mod pvar;
mod session;

pub use class::{forward_value, hash_rpc_name, HgClass, HgConfig, RpcCallback};
pub use codec::{CodecError, Decoder, Encoder, Wire};
pub use handle::{Handle, HandleId, Response, ServerHandle};
pub use header::{tags, RdmaRef, RequestHeader, ResponseHeader, RpcMeta, RpcStatus};
pub use pvar::{HandlePvars, PvarBind, PvarClass, PvarError, PvarId, PvarInfo, PVAR_TABLE};
pub use session::{PvarHandle, PvarSession};

/// Errors surfaced by Mercury operations.
#[derive(Debug)]
pub enum HgError {
    /// Underlying fabric failure.
    Fabric(symbi_fabric::FabricError),
    /// Wire (de)serialization failure.
    Codec(CodecError),
    /// A response was issued twice for the same server handle.
    AlreadyResponded,
    /// The RPC completed with a non-OK status.
    Status(RpcStatus),
    /// The handle's deadline expired before a response arrived.
    Timeout,
    /// The handle was canceled before a response arrived.
    Canceled,
}

impl HgError {
    /// Is retrying the operation reasonable? Deadline expiry is ambiguous
    /// (the request may or may not have executed) but transient; the same
    /// holds for a link reported down mid-flight; injected fabric faults
    /// are transient by construction. Protocol misuse (double responses,
    /// codec failures) and explicit cancellation are not retryable.
    pub fn retryable(&self) -> bool {
        match self {
            HgError::Fabric(e) => e.retryable(),
            HgError::Timeout => true,
            HgError::Status(RpcStatus::Timeout) => true,
            HgError::Status(RpcStatus::Unreachable) => true,
            HgError::Codec(_)
            | HgError::AlreadyResponded
            | HgError::Status(_)
            | HgError::Canceled => false,
        }
    }
}

impl From<symbi_fabric::FabricError> for HgError {
    fn from(e: symbi_fabric::FabricError) -> Self {
        HgError::Fabric(e)
    }
}

impl From<CodecError> for HgError {
    fn from(e: CodecError) -> Self {
        HgError::Codec(e)
    }
}

impl std::fmt::Display for HgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HgError::Fabric(e) => write!(f, "fabric error: {e}"),
            HgError::Codec(e) => write!(f, "codec error: {e}"),
            HgError::AlreadyResponded => write!(f, "handle already responded"),
            HgError::Status(s) => write!(f, "rpc failed with status {s:?}"),
            HgError::Timeout => write!(f, "rpc deadline expired"),
            HgError::Canceled => write!(f, "rpc canceled"),
        }
    }
}

impl std::error::Error for HgError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;
    use symbi_fabric::{Fabric, NetworkModel};

    fn pair() -> (HgClass, HgClass) {
        let fabric = Fabric::new(NetworkModel::instant());
        let client = HgClass::init(fabric.clone(), HgConfig::default());
        let server = HgClass::init(fabric, HgConfig::default());
        (client, server)
    }

    /// Pump both sides until `pred` is true or a deadline passes.
    fn pump_until(client: &HgClass, server: &HgClass, pred: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !pred() {
            assert!(std::time::Instant::now() < deadline, "pump_until timed out");
            server.progress(16, Duration::ZERO);
            server.trigger(64);
            client.progress(16, Duration::ZERO);
            client.trigger(64);
        }
    }

    fn echo_handler() -> RpcCallback {
        Arc::new(|sh: ServerHandle| {
            let input: Vec<u8> = sh.input().unwrap();
            sh.respond(&input, || {}).unwrap();
        })
    }

    #[test]
    fn rpc_roundtrip_small_payload() {
        let (client, server) = pair();
        let rpc = server.register("echo");
        client.register("echo");
        server.set_handler(rpc, echo_handler());
        let got: Arc<parking_lot::Mutex<Option<Vec<u8>>>> = Arc::new(parking_lot::Mutex::new(None));
        let got2 = got.clone();
        forward_value(
            &client,
            server.addr(),
            rpc,
            RpcMeta::default(),
            &vec![1u8, 2, 3],
            move |resp| {
                assert!(resp.is_ok());
                *got2.lock() = Some(resp.deserialize().unwrap());
            },
        )
        .unwrap();
        pump_until(&client, &server, || got.lock().is_some());
        assert_eq!(got.lock().take().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn rpc_roundtrip_large_payload_uses_internal_rdma() {
        let (client, server) = pair();
        let rpc = server.register("big");
        server.set_handler(rpc, echo_handler());
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 255) as u8).collect();
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = done.clone();
        let expect = payload.clone();
        forward_value(
            &client,
            server.addr(),
            rpc,
            RpcMeta::default(),
            &payload,
            move |resp| {
                let out: Vec<u8> = resp.deserialize().unwrap();
                assert_eq!(out, expect);
                done2.store(1, Ordering::SeqCst);
            },
        )
        .unwrap();
        pump_until(&client, &server, || done.load(Ordering::SeqCst) == 1);
        // Both the request and the response overflowed the 4 KiB eager
        // buffer, so each side recorded one overflow.
        let s = client.pvar_session();
        let h = s.alloc_handle(pvar::ids::NUM_EAGER_OVERFLOWS).unwrap();
        assert_eq!(s.sample(&h, None).unwrap(), 1);
        let s2 = server.pvar_session();
        let h2 = s2.alloc_handle(pvar::ids::NUM_EAGER_OVERFLOWS).unwrap();
        assert_eq!(s2.sample(&h2, None).unwrap(), 1);
    }

    #[test]
    fn handle_pvars_populated_on_both_sides() {
        let (client, server) = pair();
        let rpc = server.register("timed");
        let target_input_size = Arc::new(AtomicU64::new(0));
        let ti = target_input_size.clone();
        server.set_handler(
            rpc,
            Arc::new(move |sh: ServerHandle| {
                let input: Vec<u8> = sh.input().unwrap();
                ti.store(
                    sh.pvars().input_size.load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                let len = input.len() as u64;
                sh.respond(&len, || {}).unwrap();
            }),
        );
        let origin_ser = Arc::new(AtomicU64::new(u64::MAX));
        let origin_cct = Arc::new(AtomicU64::new(u64::MAX));
        let os = origin_ser.clone();
        let oc = origin_cct.clone();
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = done.clone();
        let payload = vec![7u8; 1000];
        forward_value(
            &client,
            server.addr(),
            rpc,
            RpcMeta::default(),
            &payload,
            move |resp| {
                os.store(
                    resp.pvars.input_serialization_ns.load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                oc.store(
                    resp.pvars
                        .origin_completion_callback_ns
                        .load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                done2.store(1, Ordering::SeqCst);
            },
        )
        .unwrap();
        pump_until(&client, &server, || done.load(Ordering::SeqCst) == 1);
        assert_ne!(origin_ser.load(Ordering::Relaxed), u64::MAX);
        assert_ne!(origin_cct.load(Ordering::Relaxed), u64::MAX);
        // Serialized Vec<u8> = 4-byte length prefix + body.
        assert_eq!(target_input_size.load(Ordering::Relaxed), 1004);
    }

    #[test]
    fn missing_handler_yields_no_handler_status() {
        let (client, server) = pair();
        let rpc = client.register("nobody_home");
        let status = Arc::new(parking_lot::Mutex::new(None));
        let s2 = status.clone();
        forward_value(
            &client,
            server.addr(),
            rpc,
            RpcMeta::default(),
            &0u64,
            move |resp| {
                *s2.lock() = Some(resp.status);
            },
        )
        .unwrap();
        pump_until(&client, &server, || status.lock().is_some());
        assert_eq!(status.lock().unwrap(), RpcStatus::NoHandler);
    }

    #[test]
    fn forward_to_unknown_address_fails_fast() {
        let fabric = Fabric::new(NetworkModel::instant());
        let client = HgClass::init(fabric, HgConfig::default());
        let rpc = client.register("void");
        let res = forward_value(
            &client,
            symbi_fabric::Addr(4242),
            rpc,
            RpcMeta::default(),
            &0u64,
            |_| panic!("must not complete"),
        );
        assert!(res.is_err());
        assert_eq!(client.posted_handles(), 0, "failed post must roll back");
    }

    #[test]
    fn dropped_server_handle_sends_error_response() {
        let (client, server) = pair();
        let rpc = server.register("forgetful");
        server.set_handler(
            rpc,
            Arc::new(|sh: ServerHandle| {
                // Handler "forgets" to respond; Drop must synthesize an
                // error so the origin is not stuck forever.
                drop(sh);
            }),
        );
        let status = Arc::new(parking_lot::Mutex::new(None));
        let s2 = status.clone();
        forward_value(
            &client,
            server.addr(),
            rpc,
            RpcMeta::default(),
            &1u64,
            move |resp| {
                *s2.lock() = Some(resp.status);
            },
        )
        .unwrap();
        pump_until(&client, &server, || status.lock().is_some());
        assert_eq!(status.lock().unwrap(), RpcStatus::HandlerError);
    }

    #[test]
    fn double_respond_is_rejected() {
        let (client, server) = pair();
        let rpc = server.register("twice");
        server.set_handler(
            rpc,
            Arc::new(|sh: ServerHandle| {
                sh.respond(&1u64, || {}).unwrap();
                assert!(matches!(
                    sh.respond(&2u64, || {}),
                    Err(HgError::AlreadyResponded)
                ));
            }),
        );
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = done.clone();
        forward_value(
            &client,
            server.addr(),
            rpc,
            RpcMeta::default(),
            &0u64,
            move |resp| {
                assert_eq!(resp.deserialize::<u64>().unwrap(), 1);
                d2.store(1, Ordering::SeqCst);
            },
        )
        .unwrap();
        pump_until(&client, &server, || done.load(Ordering::SeqCst) == 1);
    }

    #[test]
    fn meta_propagates_to_target() {
        let (client, server) = pair();
        let rpc = server.register("meta");
        let seen = Arc::new(parking_lot::Mutex::new(None));
        let seen2 = seen.clone();
        server.set_handler(
            rpc,
            Arc::new(move |sh: ServerHandle| {
                *seen2.lock() = Some(sh.meta());
                sh.respond(&0u64, || {}).unwrap();
            }),
        );
        let meta = RpcMeta {
            callpath: 0xAABB,
            request_id: 777,
            order: 5,
            lamport: 99,
            span: 1,
            parent_span: 0,
            hop: 1,
        };
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = done.clone();
        forward_value(&client, server.addr(), rpc, meta, &0u64, move |_| {
            d2.store(1, Ordering::SeqCst);
        })
        .unwrap();
        pump_until(&client, &server, || done.load(Ordering::SeqCst) == 1);
        assert_eq!(seen.lock().unwrap(), meta);
    }

    #[test]
    fn num_ofi_events_read_tracks_batch_size() {
        let (client, server) = pair();
        let rpc = server.register("burst");
        server.set_handler(rpc, echo_handler());
        for _ in 0..40 {
            forward_value(
                &client,
                server.addr(),
                rpc,
                RpcMeta::default(),
                &0u64,
                |_| {},
            )
            .unwrap();
        }
        // With 40 queued events and max_events=16, the first read returns 16.
        let n = server.progress(16, Duration::ZERO);
        assert_eq!(n, 16);
        let s = server.pvar_session();
        let h = s.alloc_handle(pvar::ids::NUM_OFI_EVENTS_READ).unwrap();
        assert_eq!(s.sample(&h, None).unwrap(), 16);
        // Drain the rest so posted handles complete.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while client.posted_handles() > 0 && std::time::Instant::now() < deadline {
            server.progress(64, Duration::ZERO);
            server.trigger(256);
            client.progress(64, Duration::ZERO);
            client.trigger(256);
        }
        assert_eq!(client.posted_handles(), 0);
    }

    #[test]
    fn completion_queue_and_posted_handle_pvars() {
        let (client, server) = pair();
        let rpc = server.register("q");
        server.set_handler(rpc, echo_handler());
        for _ in 0..5 {
            forward_value(
                &client,
                server.addr(),
                rpc,
                RpcMeta::default(),
                &0u64,
                |_| {},
            )
            .unwrap();
        }
        assert_eq!(client.posted_handles(), 5);
        server.progress(16, Duration::ZERO);
        assert_eq!(server.completion_queue_len(), 5);
        let s = server.pvar_session();
        let h = s.alloc_handle(pvar::ids::COMPLETION_QUEUE_SIZE).unwrap();
        assert_eq!(s.sample(&h, None).unwrap(), 5);
        let hw = s
            .alloc_handle(pvar::ids::COMPLETION_QUEUE_HIGHWATERMARK)
            .unwrap();
        assert!(s.sample(&hw, None).unwrap() >= 5);
        // Drain so the test leaves no dangling handles.
        pump_until(&client, &server, || client.posted_handles() == 0);
    }

    #[test]
    fn bulk_pull_and_push_roundtrip() {
        let (client, server) = pair();
        let data = Arc::new((0..1024u32).map(|i| (i % 200) as u8).collect::<Vec<u8>>());
        let r = client.bulk_expose_read(data.clone());
        let pulled = server.bulk_pull(r, 0, 1024).unwrap();
        assert_eq!(&pulled[..], &data[..]);
        client.bulk_free(r);

        let (w, buf) = client.bulk_expose_write(16);
        server.bulk_push(w, 4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(&buf.read()[4..8], &[1, 2, 3, 4]);
        client.bulk_free(w);
    }

    #[test]
    fn rpc_name_hash_is_stable_and_distinct() {
        let a = hash_rpc_name("sdskv_put_packed");
        let b = hash_rpc_name("sdskv_put_packed");
        let c = hash_rpc_name("bake_persist_rpc");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn deadline_expires_through_completion_queue() {
        let fabric = Fabric::new(NetworkModel::instant());
        let client = HgClass::init(fabric.clone(), HgConfig::default());
        // No server progress loop: the request lands in a queue nobody
        // drains, so only the deadline can complete the handle.
        let server = HgClass::init(fabric, HgConfig::default());
        let rpc = client.register("slowpoke");
        let _ = server; // keeps the endpoint open so the send succeeds
        let status = Arc::new(parking_lot::Mutex::new(None));
        let s2 = status.clone();
        let handle = client.create_handle(server.addr(), rpc);
        let input = handle.serialize_input(&1u64);
        client
            .forward_with_deadline(
                handle,
                RpcMeta::default(),
                input,
                Some(std::time::Instant::now() + Duration::from_millis(20)),
                move |resp| {
                    *s2.lock() = Some(resp.status);
                },
            )
            .unwrap();
        assert_eq!(client.posted_handles(), 1);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while status.lock().is_none() {
            assert!(std::time::Instant::now() < deadline);
            client.progress(16, Duration::ZERO);
            client.trigger(16);
        }
        assert_eq!(status.lock().unwrap(), RpcStatus::Timeout);
        // PVAR consistency after the expiry: no posted handle leaks, the
        // completion queue drained, and the timeout counter advanced.
        let s = client.pvar_session();
        let posted = s.alloc_handle(pvar::ids::NUM_POSTED_HANDLES).unwrap();
        assert_eq!(s.sample(&posted, None).unwrap(), 0);
        let cq = s.alloc_handle(pvar::ids::COMPLETION_QUEUE_SIZE).unwrap();
        assert_eq!(s.sample(&cq, None).unwrap(), 0);
        let timed_out = s.alloc_handle(pvar::ids::NUM_RPCS_TIMED_OUT).unwrap();
        assert_eq!(s.sample(&timed_out, None).unwrap(), 1);
        let invoked = s.alloc_handle(pvar::ids::NUM_RPCS_INVOKED).unwrap();
        assert_eq!(s.sample(&invoked, None).unwrap(), 1);
    }

    #[test]
    fn late_response_after_timeout_is_dropped_quietly() {
        let (client, server) = pair();
        let rpc = server.register("tardy");
        server.set_handler(rpc, echo_handler());
        let status = Arc::new(parking_lot::Mutex::new(None));
        let s2 = status.clone();
        let handle = client.create_handle(server.addr(), rpc);
        let input = handle.serialize_input(&1u64);
        client
            .forward_with_deadline(
                handle,
                RpcMeta::default(),
                input,
                // Already expired: the first client progress call times
                // it out before the server's response can arrive.
                Some(std::time::Instant::now()),
                move |resp| {
                    *s2.lock() = Some(resp.status);
                },
            )
            .unwrap();
        client.progress(16, Duration::ZERO);
        client.trigger(16);
        assert_eq!(status.lock().unwrap(), RpcStatus::Timeout);
        // Now let the server respond; the stale response must be counted
        // and dropped, not delivered.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let late = client.pvar_session();
        let h = late.alloc_handle(pvar::ids::NUM_LATE_RESPONSES).unwrap();
        while late.sample(&h, None).unwrap() == 0 {
            assert!(std::time::Instant::now() < deadline);
            server.progress(16, Duration::ZERO);
            server.trigger(16);
            client.progress(16, Duration::ZERO);
            client.trigger(16);
        }
        assert_eq!(status.lock().unwrap(), RpcStatus::Timeout);
        assert_eq!(client.posted_handles(), 0);
    }

    #[test]
    fn cancel_completes_with_canceled_status() {
        let fabric = Fabric::new(NetworkModel::instant());
        let client = HgClass::init(fabric.clone(), HgConfig::default());
        let server = HgClass::init(fabric, HgConfig::default());
        let rpc = client.register("dropme");
        let status = Arc::new(parking_lot::Mutex::new(None));
        let s2 = status.clone();
        let id = forward_value(
            &client,
            server.addr(),
            rpc,
            RpcMeta::default(),
            &1u64,
            move |resp| {
                *s2.lock() = Some(resp.status);
            },
        )
        .unwrap();
        assert!(client.cancel(id));
        // Canceling twice is a no-op.
        assert!(!client.cancel(id));
        client.trigger(16);
        assert_eq!(status.lock().unwrap(), RpcStatus::Canceled);
        assert_eq!(client.posted_handles(), 0);
        let s = client.pvar_session();
        let canceled = s.alloc_handle(pvar::ids::NUM_RPCS_CANCELED).unwrap();
        assert_eq!(s.sample(&canceled, None).unwrap(), 1);
    }

    #[test]
    fn hg_config_builders_apply() {
        let cfg = HgConfig::default()
            .with_eager_size(1 << 16)
            .with_ofi_max_events(0);
        assert_eq!(cfg.eager_size, 1 << 16);
        assert_eq!(cfg.ofi_max_events, 1, "floor of one event per progress");
    }

    #[test]
    fn error_conversions_and_retryability() {
        let fe = symbi_fabric::FabricError::InjectedFault { op: "rdma_get" };
        let he: HgError = fe.into();
        assert!(he.retryable());
        assert!(HgError::Timeout.retryable());
        assert!(!HgError::Canceled.retryable());
        assert!(!HgError::AlreadyResponded.retryable());
        let dead: HgError = symbi_fabric::FabricError::UnknownAddr(symbi_fabric::Addr(1)).into();
        assert!(!dead.retryable());
    }

    #[test]
    fn trigger_respects_bound() {
        let (client, server) = pair();
        let rpc = server.register("bound");
        server.set_handler(rpc, echo_handler());
        for _ in 0..10 {
            forward_value(
                &client,
                server.addr(),
                rpc,
                RpcMeta::default(),
                &0u64,
                |_| {},
            )
            .unwrap();
        }
        server.progress(64, Duration::ZERO);
        assert_eq!(server.trigger(3), 3);
        assert!(server.completion_queue_len() >= 7);
        // Drain.
        pump_until(&client, &server, || client.posted_handles() == 0);
    }

    #[test]
    fn handle_pool_recycles_slot_under_new_generation() {
        let (client, server) = pair();
        let rpc = server.register("recycle");
        server.set_handler(rpc, echo_handler());
        let first = forward_value(
            &client,
            server.addr(),
            rpc,
            RpcMeta::default(),
            &vec![1u8],
            |_| {},
        )
        .unwrap();
        pump_until(&client, &server, || client.posted_handles() == 0);
        assert_eq!(client.handle_pool_free(), 1, "completed slot parked");

        // The next handle reuses the slot (low 32 bits) under a bumped
        // generation (high 32 bits), so the ids differ and a stale
        // response for `first` could never alias the new handle.
        let h = client.create_handle(server.addr(), rpc);
        assert_eq!(h.id().0 as u32, first.0 as u32, "slot recycled");
        assert_ne!(h.id(), first, "generation bumped");
        assert_eq!(client.handle_pool_free(), 0);
        // The recycled PVAR block starts zeroed.
        assert_eq!(
            h.pvars().input_size.load(Ordering::Relaxed),
            0,
            "recycled pvars reset"
        );
        let s = client.pvar_session();
        let reuses = s.alloc_handle(pvar::ids::NUM_HANDLE_POOL_REUSES).unwrap();
        assert_eq!(s.sample(&reuses, None).unwrap(), 1);
    }

    #[test]
    fn link_down_fails_all_posted_handles_as_unreachable() {
        let (client, server) = pair();
        let rpc = client.register("doomed");
        let statuses: Arc<parking_lot::Mutex<Vec<RpcStatus>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        for _ in 0..4 {
            let s2 = statuses.clone();
            forward_value(
                &client,
                server.addr(),
                rpc,
                RpcMeta::default(),
                &0u64,
                move |resp| s2.lock().push(resp.status),
            )
            .unwrap();
        }
        assert_eq!(client.posted_handles(), 4);
        // Deliver the transport's link-down event for the server's node:
        // the whole in-flight window must drain through the completion
        // path at once, not one deadline expiry at a time.
        client
            .fabric()
            .send(
                server.addr(),
                client.addr(),
                symbi_fabric::LINK_DOWN_TAG,
                bytes::Bytes::new(),
            )
            .unwrap();
        client.progress(16, Duration::ZERO);
        client.trigger(16);
        assert_eq!(client.posted_handles(), 0);
        let got = statuses.lock().clone();
        assert_eq!(got.len(), 4);
        assert!(got.iter().all(|s| *s == RpcStatus::Unreachable));
        assert!(HgError::Status(RpcStatus::Unreachable).retryable());
        let s = client.pvar_session();
        let unreachable = s.alloc_handle(pvar::ids::NUM_RPCS_UNREACHABLE).unwrap();
        assert_eq!(s.sample(&unreachable, None).unwrap(), 4);
    }

    #[test]
    fn trigger_drains_batch_under_one_lock_and_records_highwatermark() {
        let (client, server) = pair();
        let rpc = server.register("batch");
        server.set_handler(rpc, echo_handler());
        for _ in 0..10 {
            forward_value(
                &client,
                server.addr(),
                rpc,
                RpcMeta::default(),
                &0u64,
                |_| {},
            )
            .unwrap();
        }
        server.progress(64, Duration::ZERO);
        assert_eq!(server.completion_queue_len(), 10);
        // One call drains the whole batch.
        assert_eq!(server.trigger(64), 10);
        let s = server.pvar_session();
        let hw = s
            .alloc_handle(pvar::ids::TRIGGER_BATCH_HIGHWATERMARK)
            .unwrap();
        assert!(s.sample(&hw, None).unwrap() >= 10);
        pump_until(&client, &server, || client.posted_handles() == 0);
    }
}
