//! The Mercury class: RPC registration, forwarding, the progress/trigger
//! completion model, and the bulk interface.

use crate::codec::Wire;
use crate::handle::{Handle, HandleId, Posted, Response, ServerHandle};
use crate::header::{tags, RdmaRef, RequestHeader, ResponseHeader, RpcMeta, RpcStatus};
use crate::pvar::{ids, HandlePvars, PvarId};
use crate::HgError;
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use symbi_fabric::{Addr, Fabric, MemKey};

/// Configuration for a Mercury instance.
#[derive(Debug, Clone, Copy)]
pub struct HgConfig {
    /// Eager buffer size in bytes. Serialized request/response payloads
    /// beyond this travel through an internal RDMA transfer, exactly the
    /// overflow path studied in the paper's Sonata case (Figure 7).
    pub eager_size: usize,
    /// Default bound on completion events read per `progress` call — the
    /// paper's `OFI_max_events`, default 16 "set inside the Mercury
    /// library" (§V-C4).
    pub ofi_max_events: usize,
}

impl Default for HgConfig {
    fn default() -> Self {
        HgConfig {
            eager_size: 4096,
            ofi_max_events: 16,
        }
    }
}

impl HgConfig {
    /// Set the eager buffer size in bytes.
    #[must_use]
    pub fn with_eager_size(mut self, bytes: usize) -> Self {
        self.eager_size = bytes;
        self
    }

    /// Set the bound on completion events read per `progress` call
    /// (floor 1 — a zero bound would stall the progress loop).
    #[must_use]
    pub fn with_ofi_max_events(mut self, n: usize) -> Self {
        self.ofi_max_events = n.max(1);
        self
    }
}

/// Callback invoked (at trigger time) for each arriving RPC request.
pub type RpcCallback = Arc<dyn Fn(ServerHandle) + Send + Sync>;

type Completion = Box<dyn FnOnce() + Send>;

#[derive(Default)]
struct Counters {
    rpcs_invoked: AtomicU64,
    rpcs_serviced: AtomicU64,
    eager_overflows: AtomicU64,
    bulk_pulled: AtomicU64,
    bulk_pushed: AtomicU64,
    cq_highwatermark: AtomicU64,
    progress_calls: AtomicU64,
    triggers: AtomicU64,
    last_ofi_events_read: AtomicU64,
    rpcs_timed_out: AtomicU64,
    rpcs_canceled: AtomicU64,
    late_responses: AtomicU64,
    rpcs_unreachable: AtomicU64,
    handle_pool_reuses: AtomicU64,
    trigger_batch_highwatermark: AtomicU64,
}

/// Retention cap on the reusable-handle free list. Slots released while
/// the list is full are abandoned (their ids are simply never reissued);
/// the cap bounds pool memory, not concurrency — any number of handles
/// may be in flight.
const HANDLE_POOL_CAP: usize = 4096;

/// A recycled origin-handle identity: a slot number reissued under a new
/// generation, with the slot's PVAR block reused in place.
struct PooledHandle {
    slot: u32,
    gen: u32,
    pvars: Arc<HandlePvars>,
}

/// Free list behind [`HgClass::create_handle`]. Handle ids are
/// `generation << 32 | slot`: the slot is recycled when an RPC completes,
/// the generation is bumped on each reuse so a late (duplicate or
/// post-teardown) response carrying an old id can never alias a newer
/// in-flight handle on the same slot.
struct HandlePool {
    free: Vec<PooledHandle>,
    next_slot: u32,
}

pub(crate) struct HgInner {
    fabric: Fabric,
    endpoint: symbi_fabric::Endpoint,
    config: HgConfig,
    names: RwLock<HashMap<u64, String>>,
    handlers: RwLock<HashMap<u64, RpcCallback>>,
    posted: Mutex<HashMap<u64, Posted>>,
    completion: Mutex<VecDeque<Completion>>,
    /// Posted handles carrying a deadline; lets `progress` skip the
    /// expiry sweep entirely on deadline-free workloads.
    deadlines_pending: AtomicU64,
    counters: Counters,
    handle_pool: Mutex<HandlePool>,
    pub(crate) active_sessions: AtomicU64,
    finalized: AtomicBool,
}

/// A Mercury instance (the analogue of an `hg_class_t` + context).
/// Cloning is cheap and shares the instance.
#[derive(Clone)]
pub struct HgClass {
    pub(crate) inner: Arc<HgInner>,
}

impl std::fmt::Debug for HgClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HgClass(addr={}, posted={}, cq={})",
            self.inner.endpoint.addr(),
            self.inner.posted.lock().len(),
            self.inner.completion.lock().len()
        )
    }
}

/// Hash an RPC name to its 64-bit registered id (FNV-1a, as a stand-in for
/// Mercury's internal name hashing described in §IV-A1).
pub fn hash_rpc_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl HgClass {
    /// Initialize a Mercury instance on the given fabric.
    pub fn init(fabric: Fabric, config: HgConfig) -> Self {
        let endpoint = fabric.open_endpoint();
        HgClass {
            inner: Arc::new(HgInner {
                fabric,
                endpoint,
                config,
                names: RwLock::new(HashMap::new()),
                handlers: RwLock::new(HashMap::new()),
                posted: Mutex::new(HashMap::new()),
                completion: Mutex::new(VecDeque::new()),
                deadlines_pending: AtomicU64::new(0),
                counters: Counters::default(),
                handle_pool: Mutex::new(HandlePool {
                    free: Vec::new(),
                    // Slot 0 is never issued so no handle id is ever 0.
                    next_slot: 1,
                }),
                active_sessions: AtomicU64::new(0),
                finalized: AtomicBool::new(false),
            }),
        }
    }

    /// This instance's fabric address.
    pub fn addr(&self) -> Addr {
        self.inner.endpoint.addr()
    }

    /// Resolve a transport URL (`tcp://host:port`, `unix:///path`) to a
    /// fabric address — Mercury's `HG_Addr_lookup`. Only meaningful on
    /// URL-addressed transports; the in-process transport returns
    /// [`HgError::Fabric`] with `FabricError::Unsupported`.
    pub fn lookup(&self, url: &str) -> Result<Addr, HgError> {
        self.inner.fabric.lookup(url).map_err(HgError::from)
    }

    /// The URL peers can `lookup` to reach this process, when the
    /// underlying transport listens on one (Mercury's
    /// `HG_Addr_self` + `HG_Addr_to_string`).
    pub fn listen_url(&self) -> Option<String> {
        self.inner.fabric.listen_url()
    }

    /// The underlying fabric (used by the bulk interface and internal
    /// RDMA pulls).
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The configuration in effect.
    pub fn config(&self) -> HgConfig {
        self.inner.config
    }

    /// Register an RPC name, returning its id. Registration is idempotent
    /// and must be done symmetrically on origin and target (as in Mercury).
    pub fn register(&self, name: &str) -> u64 {
        let id = hash_rpc_name(name);
        self.inner.names.write().insert(id, name.to_string());
        id
    }

    /// Name registered for an RPC id on this instance.
    pub fn rpc_name(&self, rpc_id: u64) -> Option<String> {
        self.inner.names.read().get(&rpc_id).cloned()
    }

    /// Install the request callback for an RPC id (target side). The
    /// callback runs at *trigger* time on whichever thread drives the
    /// progress loop; Margo's callback immediately spawns a handler ULT.
    pub fn set_handler(&self, rpc_id: u64, cb: RpcCallback) {
        self.inner.handlers.write().insert(rpc_id, cb);
    }

    /// Create an origin-side handle for one RPC invocation.
    ///
    /// Handles are served from a reusable pool: when an RPC completes its
    /// slot returns to a free list, and the next `create_handle` reissues
    /// the slot under a bumped generation (`id = generation << 32 | slot`)
    /// with the slot's PVAR block zeroed and reused in place. Deep
    /// pipelines therefore allocate nothing per RPC on the hot path once
    /// warm, and a stale response for a completed handle can never alias
    /// a newer one sharing its slot.
    pub fn create_handle(&self, dest: Addr, rpc_id: u64) -> Handle {
        let (id, pvars) = {
            let mut pool = self.inner.handle_pool.lock();
            match pool.free.pop() {
                Some(mut p) => {
                    p.gen = p.gen.wrapping_add(1);
                    drop(pool);
                    self.inner
                        .counters
                        .handle_pool_reuses
                        .fetch_add(1, Ordering::Relaxed);
                    p.pvars.reset();
                    (((p.gen as u64) << 32) | p.slot as u64, p.pvars)
                }
                None => {
                    let slot = pool.next_slot;
                    pool.next_slot = pool.next_slot.wrapping_add(1).max(1);
                    drop(pool);
                    (slot as u64, Arc::new(HandlePvars::default()))
                }
            }
        };
        Handle {
            id: HandleId(id),
            dest,
            rpc_id,
            pvars,
        }
    }

    /// Return a completed handle's slot (and its PVAR block) to the pool.
    fn release_handle(&self, id: HandleId, pvars: Arc<HandlePvars>) {
        let mut pool = self.inner.handle_pool.lock();
        if pool.free.len() < HANDLE_POOL_CAP {
            pool.free.push(PooledHandle {
                slot: id.0 as u32,
                gen: (id.0 >> 32) as u32,
                pvars,
            });
        }
    }

    /// Number of handle identities currently parked on the free list.
    pub fn handle_pool_free(&self) -> usize {
        self.inner.handle_pool.lock().free.len()
    }

    /// Forward a request (t1→t3 of Figure 2). `input` must already be
    /// serialized (see [`Handle::serialize_input`], which records the
    /// serialization-time PVAR). `cb` runs at trigger time once the
    /// response arrives (t14).
    pub fn forward(
        &self,
        handle: Handle,
        meta: RpcMeta,
        input: Bytes,
        cb: impl FnOnce(Response) + Send + 'static,
    ) -> Result<HandleId, HgError> {
        self.forward_with_deadline(handle, meta, input, None, cb)
    }

    /// Like [`HgClass::forward`] but with an optional deadline: if no
    /// response has arrived by `deadline`, the progress loop expires the
    /// handle and completes it through the normal completion queue with
    /// [`RpcStatus::Timeout`], keeping the HANDLE PVARs and
    /// completion-queue counters consistent with real completions.
    pub fn forward_with_deadline(
        &self,
        handle: Handle,
        meta: RpcMeta,
        input: Bytes,
        deadline: Option<Instant>,
        cb: impl FnOnce(Response) + Send + 'static,
    ) -> Result<HandleId, HgError> {
        let inner = &self.inner;
        inner.counters.rpcs_invoked.fetch_add(1, Ordering::Relaxed);

        // Eager / overflow split.
        let eager_avail = inner.config.eager_size;
        let (inline, rdma, rdma_key) = if input.len() > eager_avail {
            inner
                .counters
                .eager_overflows
                .fetch_add(1, Ordering::Relaxed);
            let inline = input.slice(0..eager_avail);
            let overflow = Arc::new(input[eager_avail..].to_vec());
            let region = inner.fabric.expose_read(overflow);
            (
                inline,
                Some(RdmaRef {
                    key: region.key.0,
                    len: region.len as u64,
                }),
                Some(region.key),
            )
        } else {
            (input, None, None)
        };

        let header = RequestHeader {
            rpc_id: handle.rpc_id,
            origin_handle_id: handle.id.0,
            meta,
            rdma,
            inline,
        };
        let payload = header.to_bytes();

        inner.posted.lock().insert(
            handle.id.0,
            Posted {
                cb: Box::new(cb),
                pvars: handle.pvars.clone(),
                dest: handle.dest,
                rdma_key,
                deadline,
            },
        );
        if deadline.is_some() {
            inner.deadlines_pending.fetch_add(1, Ordering::Relaxed);
        }

        match inner
            .fabric
            .send(self.addr(), handle.dest, tags::REQUEST, payload)
        {
            Ok(()) => Ok(handle.id),
            Err(e) => {
                // Roll back the post so the handle doesn't leak; its slot
                // goes straight back to the pool (no callback will run).
                if let Some(p) = inner.posted.lock().remove(&handle.id.0) {
                    if let Some(k) = p.rdma_key {
                        inner.fabric.unregister(k);
                    }
                    if p.deadline.is_some() {
                        inner.deadlines_pending.fetch_sub(1, Ordering::Relaxed);
                    }
                    self.release_handle(handle.id, p.pvars);
                }
                Err(HgError::from(e))
            }
        }
    }

    /// Complete a removed posted handle locally with a synthesized
    /// status, through the normal completion queue so `trigger`
    /// dispatches it exactly like a real response. The handle's slot
    /// returns to the pool after its callback runs.
    fn complete_locally(&self, id: HandleId, posted: Posted, status: RpcStatus) {
        if let Some(k) = posted.rdma_key {
            self.inner.fabric.unregister(k);
        }
        if posted.deadline.is_some() {
            self.inner.deadlines_pending.fetch_sub(1, Ordering::Relaxed);
        }
        let added_to_cq_at = Instant::now();
        let hg = self.clone();
        let pvars = posted.pvars;
        let cb = posted.cb;
        self.push_completion(Box::new(move || {
            pvars.origin_completion_callback_ns.store(
                added_to_cq_at.elapsed().as_nanos() as u64,
                Ordering::Relaxed,
            );
            cb(Response {
                status,
                output: Bytes::new(),
                lamport: 0,
                pvars: pvars.clone(),
            });
            hg.release_handle(id, pvars);
        }));
    }

    /// Cancel a posted handle. Returns `true` if the handle was still
    /// in flight; its callback then completes through the completion
    /// queue with [`RpcStatus::Canceled`]. A response arriving later for
    /// the canceled handle is dropped like any unknown-handle response.
    pub fn cancel(&self, id: HandleId) -> bool {
        let posted = self.inner.posted.lock().remove(&id.0);
        match posted {
            Some(p) => {
                self.inner
                    .counters
                    .rpcs_canceled
                    .fetch_add(1, Ordering::Relaxed);
                self.complete_locally(id, p, RpcStatus::Canceled);
                true
            }
            None => false,
        }
    }

    /// Expire posted handles whose deadline has passed, completing each
    /// with [`RpcStatus::Timeout`]. Called from `progress`; costs one
    /// relaxed atomic load when no handle carries a deadline.
    fn expire_deadlines(&self) {
        if self.inner.deadlines_pending.load(Ordering::Relaxed) == 0 {
            return;
        }
        let now = Instant::now();
        let expired: Vec<(u64, Posted)> = {
            let mut posted = self.inner.posted.lock();
            let ids: Vec<u64> = posted
                .iter()
                .filter(|(_, p)| p.deadline.is_some_and(|d| d <= now))
                .map(|(id, _)| *id)
                .collect();
            ids.into_iter()
                .filter_map(|id| posted.remove(&id).map(|p| (id, p)))
                .collect()
        };
        for (id, p) in expired {
            self.inner
                .counters
                .rpcs_timed_out
                .fetch_add(1, Ordering::Relaxed);
            self.complete_locally(HandleId(id), p, RpcStatus::Timeout);
        }
    }

    /// Fail every posted handle destined for `peer` with
    /// [`RpcStatus::Unreachable`]. Invoked when the transport delivers a
    /// link-down event for that peer, so a torn-down connection drains a
    /// full pipeline window through the normal completion path at once
    /// instead of one deadline expiry at a time.
    fn fail_unreachable(&self, peer: u32) {
        let dead: Vec<(u64, Posted)> = {
            let mut posted = self.inner.posted.lock();
            let ids: Vec<u64> = posted
                .iter()
                .filter(|(_, p)| p.dest.node() == peer)
                .map(|(id, _)| *id)
                .collect();
            ids.into_iter()
                .filter_map(|id| posted.remove(&id).map(|p| (id, p)))
                .collect()
        };
        for (id, p) in dead {
            self.inner
                .counters
                .rpcs_unreachable
                .fetch_add(1, Ordering::Relaxed);
            self.complete_locally(HandleId(id), p, RpcStatus::Unreachable);
        }
    }

    /// Number of in-flight (posted) origin handles.
    pub fn posted_handles(&self) -> usize {
        self.inner.posted.lock().len()
    }

    /// PVAR blocks of all currently posted (in-flight) origin handles.
    ///
    /// HANDLE-bound PVARs go out of scope when their RPC completes (§IV-B1:
    /// "their values are lost forever"), so a live monitor must enumerate
    /// the blocks while the handles are posted. The returned `Arc`s keep
    /// each block readable even if its handle completes mid-sample.
    pub fn posted_handle_pvars(&self) -> Vec<Arc<HandlePvars>> {
        self.inner
            .posted
            .lock()
            .values()
            .map(|p| p.pvars.clone())
            .collect()
    }

    /// Number of completion callbacks waiting to be triggered.
    pub fn completion_queue_len(&self) -> usize {
        self.inner.completion.lock().len()
    }

    pub(crate) fn send_response(
        &self,
        origin: Addr,
        origin_handle_id: u64,
        status: RpcStatus,
        output: Bytes,
        on_sent: Completion,
    ) -> Result<(), HgError> {
        let inner = &self.inner;
        let eager_avail = inner.config.eager_size;
        let (inline, rdma) = if output.len() > eager_avail {
            inner
                .counters
                .eager_overflows
                .fetch_add(1, Ordering::Relaxed);
            let inline = output.slice(0..eager_avail);
            let overflow = Arc::new(output[eager_avail..].to_vec());
            let region = inner.fabric.expose_read(overflow);
            (
                inline,
                Some(RdmaRef {
                    key: region.key.0,
                    len: region.len as u64,
                }),
            )
        } else {
            (output, None)
        };
        let header = ResponseHeader {
            origin_handle_id,
            status,
            lamport: 0, // Margo stamps Lamport clocks at the trace layer.
            rdma,
            inline,
        };
        inner
            .fabric
            .send(self.addr(), origin, tags::RESPONSE, header.to_bytes())?;
        // The send completed; queue the target-side completion callback
        // (t13) for the progress loop to trigger.
        self.push_completion(on_sent);
        Ok(())
    }

    fn push_completion(&self, entry: Completion) {
        let mut q = self.inner.completion.lock();
        q.push_back(entry);
        let len = q.len() as u64;
        drop(q);
        self.inner
            .counters
            .cq_highwatermark
            .fetch_max(len, Ordering::Relaxed);
    }

    /// Drive the network: read up to `max_events` completion events from
    /// the OFI layer (recording the `num_ofi_events_read` PVAR) and
    /// convert them into completion-queue entries. Returns the number of
    /// events read.
    ///
    /// `timeout` bounds the wait for the *first* event; pass zero for a
    /// non-blocking poll.
    pub fn progress(&self, max_events: usize, timeout: Duration) -> usize {
        let inner = &self.inner;
        let events = if timeout.is_zero() {
            inner.endpoint.poll(max_events)
        } else {
            inner.endpoint.poll_timeout(max_events, timeout)
        };
        inner
            .counters
            .progress_calls
            .fetch_add(1, Ordering::Relaxed);
        inner
            .counters
            .last_ofi_events_read
            .store(events.len() as u64, Ordering::Relaxed);
        for ev in &events {
            match ev.tag {
                tags::REQUEST => self.on_request(ev.src, ev.payload.clone()),
                tags::RESPONSE => self.on_response(ev.payload.clone()),
                symbi_fabric::LINK_DOWN_TAG => self.fail_unreachable(ev.src.node()),
                other => {
                    eprintln!("[symbi-mercury] dropping message with unknown tag {other}");
                }
            }
        }
        self.expire_deadlines();
        events.len()
    }

    fn on_request(&self, src: Addr, payload: Bytes) {
        let header = match RequestHeader::from_bytes(payload) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("[symbi-mercury] malformed request dropped: {e}");
                return;
            }
        };
        let sh = ServerHandle {
            hg: self.clone(),
            origin: src,
            origin_handle_id: header.origin_handle_id,
            rpc_id: header.rpc_id,
            meta: header.meta,
            inline: header.inline,
            rdma: header.rdma,
            pvars: Arc::new(HandlePvars::default()),
            arrived_at: Instant::now(),
            responded: AtomicBool::new(false),
        };
        let hg = self.clone();
        self.push_completion(Box::new(move || {
            hg.inner
                .counters
                .rpcs_serviced
                .fetch_add(1, Ordering::Relaxed);
            let handler = hg.inner.handlers.read().get(&sh.rpc_id).cloned();
            match handler {
                Some(cb) => cb(sh),
                None => {
                    let _ = sh.respond_bytes(RpcStatus::NoHandler, Bytes::new(), || {});
                }
            }
        }));
    }

    fn on_response(&self, payload: Bytes) {
        let header = match ResponseHeader::from_bytes(payload) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("[symbi-mercury] malformed response dropped: {e}");
                return;
            }
        };
        let posted = self.inner.posted.lock().remove(&header.origin_handle_id);
        let Some(posted) = posted else {
            // Normal under deadlines and duplicate delivery: the handle
            // already completed (timed out, was canceled, or a duplicate
            // response landed). Count it and move on.
            self.inner
                .counters
                .late_responses
                .fetch_add(1, Ordering::Relaxed);
            return;
        };
        // The request's overflow region (if any) is no longer needed.
        if let Some(k) = posted.rdma_key {
            self.inner.fabric.unregister(k);
        }
        if posted.deadline.is_some() {
            self.inner.deadlines_pending.fetch_sub(1, Ordering::Relaxed);
        }
        let added_to_cq_at = Instant::now(); // t12
        let hg = self.clone();
        let pvars = posted.pvars;
        let cb = posted.cb;
        self.push_completion(Box::new(move || {
            // t14: record the origin completion callback delay (t12→t14).
            pvars.origin_completion_callback_ns.store(
                added_to_cq_at.elapsed().as_nanos() as u64,
                Ordering::Relaxed,
            );
            // Pull any response overflow before handing bytes to the user.
            let output = match header.rdma {
                None => header.inline,
                Some(r) => {
                    let start = Instant::now();
                    match hg.inner.fabric.rdma_get(MemKey(r.key), 0, r.len as usize) {
                        Ok(rest) => {
                            hg.inner.fabric.unregister(MemKey(r.key));
                            pvars
                                .internal_rdma_transfer_ns
                                .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            let mut buf =
                                bytes::BytesMut::with_capacity(header.inline.len() + rest.len());
                            buf.extend_from_slice(&header.inline);
                            buf.extend_from_slice(&rest);
                            buf.freeze()
                        }
                        Err(e) => {
                            eprintln!("[symbi-mercury] response overflow pull failed: {e}");
                            header.inline
                        }
                    }
                }
            };
            pvars
                .output_size
                .store(output.len() as u64, Ordering::Relaxed);
            cb(Response {
                status: header.status,
                output,
                lamport: header.lamport,
                pvars: pvars.clone(),
            });
            hg.release_handle(HandleId(header.origin_handle_id), pvars);
        }));
    }

    /// Execute up to `max` queued completion callbacks. Returns how many
    /// ran. Mercury's trigger: origin t14 callbacks, target request
    /// dispatch, and target t13 send-completions all run here.
    ///
    /// Completions are drained in one batch under a single lock
    /// acquisition and the callbacks run outside the lock, so a deep
    /// pipeline delivering a window of responses costs one lock round
    /// trip per wakeup instead of one per RPC. Entries pushed *by* the
    /// batch's callbacks are left for the next call (callers already
    /// loop until quiescent).
    pub fn trigger(&self, max: usize) -> usize {
        let batch: Vec<Completion> = {
            let mut q = self.inner.completion.lock();
            let n = q.len().min(max);
            q.drain(..n).collect()
        };
        let ran = batch.len();
        if ran > 0 {
            self.inner
                .counters
                .triggers
                .fetch_add(ran as u64, Ordering::Relaxed);
            self.inner
                .counters
                .trigger_batch_highwatermark
                .fetch_max(ran as u64, Ordering::Relaxed);
        }
        for f in batch {
            f();
        }
        ran
    }

    // ---- bulk interface -------------------------------------------------

    /// Expose a read-only buffer for remote bulk pulls.
    pub fn bulk_expose_read(&self, data: Arc<Vec<u8>>) -> RdmaRef {
        let region = self.inner.fabric.expose_read(data);
        RdmaRef {
            key: region.key.0,
            len: region.len as u64,
        }
    }

    /// Expose a writable buffer for remote bulk pushes. Returns the
    /// descriptor plus the buffer handle to harvest written data.
    pub fn bulk_expose_write(&self, len: usize) -> (RdmaRef, Arc<parking_lot::RwLock<Vec<u8>>>) {
        let (region, buf) = self.inner.fabric.expose_write(len);
        (
            RdmaRef {
                key: region.key.0,
                len: region.len as u64,
            },
            buf,
        )
    }

    /// Pull `[offset, offset+len)` from a remote bulk region (the target
    /// side of Mercury's `HG_Bulk_transfer` with `HG_BULK_PULL`).
    pub fn bulk_pull(&self, r: RdmaRef, offset: usize, len: usize) -> Result<Bytes, HgError> {
        let data = self.inner.fabric.rdma_get(MemKey(r.key), offset, len)?;
        self.inner
            .counters
            .bulk_pulled
            .fetch_add(len as u64, Ordering::Relaxed);
        Ok(data)
    }

    /// Push bytes into a remote bulk region (`HG_BULK_PUSH`).
    pub fn bulk_push(&self, r: RdmaRef, offset: usize, data: &[u8]) -> Result<(), HgError> {
        self.inner.fabric.rdma_put(MemKey(r.key), offset, data)?;
        self.inner
            .counters
            .bulk_pushed
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Tear down a bulk registration.
    pub fn bulk_free(&self, r: RdmaRef) {
        self.inner.fabric.unregister(MemKey(r.key));
    }

    // ---- PVAR access (backing the session API) --------------------------

    /// Read a NO_OBJECT PVAR's current value, if `id` names one.
    pub(crate) fn read_global_pvar(&self, id: PvarId) -> Option<u64> {
        let c = &self.inner.counters;
        let v = match id {
            ids::NUM_POSTED_HANDLES => self.posted_handles() as u64,
            ids::COMPLETION_QUEUE_SIZE => self.completion_queue_len() as u64,
            ids::NUM_OFI_EVENTS_READ => c.last_ofi_events_read.load(Ordering::Relaxed),
            ids::NUM_RPCS_INVOKED => c.rpcs_invoked.load(Ordering::Relaxed),
            ids::NUM_RPCS_SERVICED => c.rpcs_serviced.load(Ordering::Relaxed),
            ids::NUM_EAGER_OVERFLOWS => c.eager_overflows.load(Ordering::Relaxed),
            ids::BULK_BYTES_PULLED => c.bulk_pulled.load(Ordering::Relaxed),
            ids::BULK_BYTES_PUSHED => c.bulk_pushed.load(Ordering::Relaxed),
            ids::COMPLETION_QUEUE_HIGHWATERMARK => c.cq_highwatermark.load(Ordering::Relaxed),
            ids::EAGER_BUFFER_SIZE => self.inner.config.eager_size as u64,
            ids::NUM_PROGRESS_CALLS => c.progress_calls.load(Ordering::Relaxed),
            ids::NUM_TRIGGERS => c.triggers.load(Ordering::Relaxed),
            ids::NUM_RPCS_TIMED_OUT => c.rpcs_timed_out.load(Ordering::Relaxed),
            ids::NUM_RPCS_CANCELED => c.rpcs_canceled.load(Ordering::Relaxed),
            ids::NUM_LATE_RESPONSES => c.late_responses.load(Ordering::Relaxed),
            ids::NUM_RPCS_UNREACHABLE => c.rpcs_unreachable.load(Ordering::Relaxed),
            ids::NUM_HANDLE_POOL_REUSES => c.handle_pool_reuses.load(Ordering::Relaxed),
            ids::TRIGGER_BATCH_HIGHWATERMARK => {
                c.trigger_batch_highwatermark.load(Ordering::Relaxed)
            }
            _ => return None,
        };
        Some(v)
    }

    /// Finalize the instance: close the endpoint so peers observe
    /// unreachability. Idempotent.
    pub fn finalize(&self) {
        if !self.inner.finalized.swap(true, Ordering::AcqRel) {
            self.inner.fabric.close_endpoint(self.addr());
        }
    }
}

/// Serialize a value and forward it in one call, for cases where the
/// caller doesn't need to separate serialization from forwarding.
pub fn forward_value<T: Wire>(
    hg: &HgClass,
    dest: Addr,
    rpc_id: u64,
    meta: RpcMeta,
    value: &T,
    cb: impl FnOnce(Response) + Send + 'static,
) -> Result<HandleId, HgError> {
    let handle = hg.create_handle(dest, rpc_id);
    let input = handle.serialize_input(value);
    hg.forward(handle, meta, input, cb)
}
