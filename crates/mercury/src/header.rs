//! On-the-wire RPC request/response headers.
//!
//! The request header carries the SYMBIOSYS request metadata the paper
//! propagates through the system (§IV-A): the 64-bit callpath ancestry
//! hash, the globally unique request/trace id, the per-trace event order
//! counter, and the Lamport clock used to mitigate skew. The `rdma` field
//! implements the eager-buffer-overflow path: when serialized metadata
//! exceeds the eager size, the remainder is exposed as a registered region
//! that the target pulls (an "internal RDMA" transfer).

use crate::codec::{CodecError, Decoder, Encoder, Wire};
use bytes::Bytes;

/// Wire protocol version, bumped on incompatible header changes.
///
/// v2 added the causal span context (`span`, `parent_span`, `hop`) so
/// composed services produce linked multi-hop traces.
pub const WIRE_VERSION: u8 = 2;

/// Fabric message tags distinguishing request and response traffic.
pub mod tags {
    /// An RPC request.
    pub const REQUEST: u64 = 1;
    /// An RPC response.
    pub const RESPONSE: u64 = 2;
}

/// Descriptor for an exposed memory region, serializable into headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdmaRef {
    /// Registration key (matches [`symbi_fabric::MemKey`]).
    pub key: u64,
    /// Total region length in bytes.
    pub len: u64,
}

impl Wire for RdmaRef {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.key);
        enc.put_u64(self.len);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(RdmaRef {
            key: dec.get_u64()?,
            len: dec.get_u64()?,
        })
    }
}

/// Request-path metadata propagated by SYMBIOSYS (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RpcMeta {
    /// 64-bit callpath ancestry hash (16 bits per frame, depth ≤ 4).
    pub callpath: u64,
    /// Globally unique request (trace) id; 0 when tracing is disabled.
    pub request_id: u64,
    /// Order of this event within its trace.
    pub order: u32,
    /// Lamport logical clock value at send time.
    pub lamport: u64,
    /// Span id of this RPC attempt (Dapper-style); 0 when unset.
    pub span: u64,
    /// Span id of the causally enclosing call at the origin; 0 at the
    /// composition root.
    pub parent_span: u64,
    /// Hop depth of the *target* of this RPC: 1 for a client's direct
    /// call, 2 for a sub-RPC issued from that handler, and so on.
    pub hop: u32,
}

/// Full request header + payload framing.
#[derive(Debug, Clone)]
pub struct RequestHeader {
    /// Registered RPC id (hash of the RPC name).
    pub rpc_id: u64,
    /// Origin's handle id, echoed back in the response.
    pub origin_handle_id: u64,
    /// SYMBIOSYS metadata.
    pub meta: RpcMeta,
    /// Overflow region holding input bytes beyond the eager buffer.
    pub rdma: Option<RdmaRef>,
    /// Inline (eager) portion of the serialized input.
    pub inline: Bytes,
}

impl Wire for RequestHeader {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(WIRE_VERSION);
        enc.put_u64(self.rpc_id);
        enc.put_u64(self.origin_handle_id);
        enc.put_u64(self.meta.callpath);
        enc.put_u64(self.meta.request_id);
        enc.put_u32(self.meta.order);
        enc.put_u64(self.meta.lamport);
        enc.put_u64(self.meta.span);
        enc.put_u64(self.meta.parent_span);
        enc.put_u32(self.meta.hop);
        match self.rdma {
            Some(r) => {
                enc.put_u8(1);
                r.encode(enc);
            }
            None => {
                enc.put_u8(0);
            }
        }
        enc.put_bytes(&self.inline);
    }

    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let version = dec.get_u8()?;
        if version != WIRE_VERSION {
            return Err(CodecError::Invalid("wire version"));
        }
        let rpc_id = dec.get_u64()?;
        let origin_handle_id = dec.get_u64()?;
        let meta = RpcMeta {
            callpath: dec.get_u64()?,
            request_id: dec.get_u64()?,
            order: dec.get_u32()?,
            lamport: dec.get_u64()?,
            span: dec.get_u64()?,
            parent_span: dec.get_u64()?,
            hop: dec.get_u32()?,
        };
        let rdma = match dec.get_u8()? {
            0 => None,
            1 => Some(RdmaRef::decode(dec)?),
            _ => return Err(CodecError::Invalid("rdma flag")),
        };
        let inline = dec.get_bytes()?;
        Ok(RequestHeader {
            rpc_id,
            origin_handle_id,
            meta,
            rdma,
            inline,
        })
    }
}

/// RPC completion status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcStatus {
    /// Handler completed and produced output.
    Ok,
    /// No handler is registered for the RPC id on the target.
    NoHandler,
    /// The handler failed (panicked or reported an error).
    HandlerError,
    /// The origin's deadline expired before a response arrived. This
    /// status is synthesized locally when a posted handle expires; it is
    /// still assigned a wire byte so responses forwarded by proxies can
    /// carry it.
    Timeout,
    /// The origin canceled the handle before a response arrived.
    Canceled,
    /// The link to the target went down while the handle was posted. The
    /// progress loop synthesizes this for every in-flight handle destined
    /// for the dead peer the moment the transport reports the link lost —
    /// faster than waiting for each handle's deadline. Like
    /// [`RpcStatus::Timeout`] it is retryable: the request may or may not
    /// have executed.
    Unreachable,
    /// The target's admission gate rejected the request before any
    /// handler ran (adaptive load shedding). A *definite* failure — the
    /// request never executed — so it is safely retryable even for
    /// non-idempotent RPCs.
    Overloaded,
}

impl RpcStatus {
    /// Encode as a wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            RpcStatus::Ok => 0,
            RpcStatus::NoHandler => 1,
            RpcStatus::HandlerError => 2,
            RpcStatus::Timeout => 3,
            RpcStatus::Canceled => 4,
            RpcStatus::Unreachable => 5,
            RpcStatus::Overloaded => 6,
        }
    }

    /// Decode from a wire byte.
    pub fn from_u8(v: u8) -> Result<Self, CodecError> {
        Ok(match v {
            0 => RpcStatus::Ok,
            1 => RpcStatus::NoHandler,
            2 => RpcStatus::HandlerError,
            3 => RpcStatus::Timeout,
            4 => RpcStatus::Canceled,
            5 => RpcStatus::Unreachable,
            6 => RpcStatus::Overloaded,
            _ => return Err(CodecError::Invalid("rpc status")),
        })
    }
}

/// Full response header + payload framing.
#[derive(Debug, Clone)]
pub struct ResponseHeader {
    /// Handle id of the originating request.
    pub origin_handle_id: u64,
    /// Completion status.
    pub status: RpcStatus,
    /// Target's Lamport clock at response time.
    pub lamport: u64,
    /// Overflow region holding output bytes beyond the eager buffer.
    pub rdma: Option<RdmaRef>,
    /// Inline portion of the serialized output.
    pub inline: Bytes,
}

impl Wire for ResponseHeader {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(WIRE_VERSION);
        enc.put_u64(self.origin_handle_id);
        enc.put_u8(self.status.as_u8());
        enc.put_u64(self.lamport);
        match self.rdma {
            Some(r) => {
                enc.put_u8(1);
                r.encode(enc);
            }
            None => {
                enc.put_u8(0);
            }
        }
        enc.put_bytes(&self.inline);
    }

    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let version = dec.get_u8()?;
        if version != WIRE_VERSION {
            return Err(CodecError::Invalid("wire version"));
        }
        let origin_handle_id = dec.get_u64()?;
        let status = RpcStatus::from_u8(dec.get_u8()?)?;
        let lamport = dec.get_u64()?;
        let rdma = match dec.get_u8()? {
            0 => None,
            1 => Some(RdmaRef::decode(dec)?),
            _ => return Err(CodecError::Invalid("rdma flag")),
        };
        let inline = dec.get_bytes()?;
        Ok(ResponseHeader {
            origin_handle_id,
            status,
            lamport,
            rdma,
            inline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_header_roundtrip() {
        let h = RequestHeader {
            rpc_id: 0xABCD,
            origin_handle_id: 42,
            meta: RpcMeta {
                callpath: 0x1111_2222_3333_4444,
                request_id: 99,
                order: 3,
                lamport: 17,
                span: 0xDEAD_BEEF,
                parent_span: 0xFEED_FACE,
                hop: 2,
            },
            rdma: Some(RdmaRef {
                key: 5,
                len: 1 << 20,
            }),
            inline: Bytes::from_static(b"payload"),
        };
        let d = RequestHeader::from_bytes(h.to_bytes()).unwrap();
        assert_eq!(d.rpc_id, h.rpc_id);
        assert_eq!(d.origin_handle_id, 42);
        assert_eq!(d.meta, h.meta);
        assert_eq!(d.rdma, h.rdma);
        assert_eq!(&d.inline[..], b"payload");
    }

    #[test]
    fn request_header_without_rdma() {
        let h = RequestHeader {
            rpc_id: 1,
            origin_handle_id: 2,
            meta: RpcMeta::default(),
            rdma: None,
            inline: Bytes::new(),
        };
        let d = RequestHeader::from_bytes(h.to_bytes()).unwrap();
        assert!(d.rdma.is_none());
        assert!(d.inline.is_empty());
    }

    #[test]
    fn response_header_roundtrip_all_statuses() {
        for status in [
            RpcStatus::Ok,
            RpcStatus::NoHandler,
            RpcStatus::HandlerError,
            RpcStatus::Timeout,
            RpcStatus::Canceled,
            RpcStatus::Unreachable,
            RpcStatus::Overloaded,
        ] {
            let h = ResponseHeader {
                origin_handle_id: 7,
                status,
                lamport: 23,
                rdma: None,
                inline: Bytes::from_static(b"out"),
            };
            let d = ResponseHeader::from_bytes(h.to_bytes()).unwrap();
            assert_eq!(d.status, status);
            assert_eq!(d.lamport, 23);
        }
    }

    #[test]
    fn bad_version_rejected() {
        let h = RequestHeader {
            rpc_id: 1,
            origin_handle_id: 2,
            meta: RpcMeta::default(),
            rdma: None,
            inline: Bytes::new(),
        };
        let mut raw = h.to_bytes().to_vec();
        raw[0] = 0xFF;
        assert!(RequestHeader::from_bytes(raw.into()).is_err());
    }

    #[test]
    fn bad_status_rejected() {
        assert!(RpcStatus::from_u8(9).is_err());
    }

    #[test]
    fn bad_rdma_flag_rejected() {
        let h = ResponseHeader {
            origin_handle_id: 1,
            status: RpcStatus::Ok,
            lamport: 0,
            rdma: None,
            inline: Bytes::new(),
        };
        let mut raw = h.to_bytes().to_vec();
        // version(1) + handle(8) + status(1) + lamport(8) = offset 18 is flag
        raw[18] = 7;
        assert!(ResponseHeader::from_bytes(raw.into()).is_err());
    }
}
