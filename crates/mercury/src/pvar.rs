//! The Mercury performance-variable (PVAR) subsystem — paper §IV-B.
//!
//! PVARs expose internal communication-library metrics to external tools
//! without breaking the library's abstraction. The design mirrors the MPI
//! Tools Information Interface, as the paper does:
//!
//! * **PVAR classes** (Table I): [`PvarClass`] — STATE, COUNTER, TIMER,
//!   LEVEL, SIZE, HIGHWATERMARK, LOWWATERMARK.
//! * **PVAR bindings**: [`PvarBind`] — `NO_OBJECT` for library-global
//!   metrics, `HANDLE` for metrics scoped to one RPC handle whose values
//!   vanish when the handle completes (Table II).
//! * **Sessions** (§IV-B2): a tool calls [`crate::HgClass::pvar_session`],
//!   queries the exported variables, allocates handles for those it wants,
//!   samples them (supplying the Mercury handle object for HANDLE-bound
//!   PVARs), and finalizes the session.
//!
//! Timers are reported in nanoseconds; sizes in bytes; counts as raw u64.

use std::sync::atomic::{AtomicU64, Ordering};

/// The kind of quantity a PVAR represents (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PvarClass {
    /// Any one of a set of discrete states.
    State,
    /// Monotonically increasing value.
    Counter,
    /// Interval event timer.
    Timer,
    /// Utilization level of a resource.
    Level,
    /// Size of a resource.
    Size,
    /// Highest recorded value.
    Highwatermark,
    /// Lowest recorded value.
    Lowwatermark,
}

impl std::fmt::Display for PvarClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PvarClass::State => "STATE",
            PvarClass::Counter => "COUNTER",
            PvarClass::Timer => "TIMER",
            PvarClass::Level => "LEVEL",
            PvarClass::Size => "SIZE",
            PvarClass::Highwatermark => "HIGHWATERMARK",
            PvarClass::Lowwatermark => "LOWWATERMARK",
        };
        f.write_str(s)
    }
}

/// What object, if any, a PVAR is bound to (paper §IV-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PvarBind {
    /// Global scope across the whole Mercury instance.
    NoObject,
    /// Bound to a single RPC handle; out of scope once the RPC completes.
    Handle,
}

impl std::fmt::Display for PvarBind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PvarBind::NoObject => "NO_OBJECT",
            PvarBind::Handle => "HANDLE",
        })
    }
}

/// Identifier of an exported PVAR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PvarId(pub u16);

/// Static description of one exported PVAR.
#[derive(Debug, Clone, Copy)]
pub struct PvarInfo {
    /// Identifier used with the session API.
    pub id: PvarId,
    /// Exported name.
    pub name: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// Class (Table I).
    pub class: PvarClass,
    /// Binding.
    pub bind: PvarBind,
}

/// Well-known PVAR ids. The first block reproduces the paper's Table II;
/// the rest are natural extensions used by the analyses.
pub mod ids {
    use super::PvarId;

    /// Number of currently posted RPC handles.
    pub const NUM_POSTED_HANDLES: PvarId = PvarId(0);
    /// Number of events in Mercury's completion queue.
    pub const COMPLETION_QUEUE_SIZE: PvarId = PvarId(1);
    /// Number of OFI completion events last read by `progress`.
    pub const NUM_OFI_EVENTS_READ: PvarId = PvarId(2);
    /// Number of RPCs invoked by this instance (origin side).
    pub const NUM_RPCS_INVOKED: PvarId = PvarId(3);
    /// Number of RPCs serviced by this instance (target side).
    pub const NUM_RPCS_SERVICED: PvarId = PvarId(4);
    /// Times the eager buffer overflowed into an internal RDMA transfer.
    pub const NUM_EAGER_OVERFLOWS: PvarId = PvarId(5);
    /// Bytes pulled through the bulk interface.
    pub const BULK_BYTES_PULLED: PvarId = PvarId(6);
    /// Bytes pushed through the bulk interface.
    pub const BULK_BYTES_PUSHED: PvarId = PvarId(7);
    /// Highest completion-queue length observed.
    pub const COMPLETION_QUEUE_HIGHWATERMARK: PvarId = PvarId(8);
    /// Configured eager buffer size.
    pub const EAGER_BUFFER_SIZE: PvarId = PvarId(9);
    /// Number of `progress` calls made.
    pub const NUM_PROGRESS_CALLS: PvarId = PvarId(10);
    /// Number of completion callbacks triggered.
    pub const NUM_TRIGGERS: PvarId = PvarId(11);
    /// Number of posted handles expired by their deadline.
    pub const NUM_RPCS_TIMED_OUT: PvarId = PvarId(12);
    /// Number of posted handles canceled by the origin.
    pub const NUM_RPCS_CANCELED: PvarId = PvarId(13);
    /// Responses that arrived after their handle had already completed
    /// (timed out, canceled, or duplicated) and were dropped.
    pub const NUM_LATE_RESPONSES: PvarId = PvarId(14);
    /// Posted handles failed with `Unreachable` because the transport
    /// reported their destination's link down.
    pub const NUM_RPCS_UNREACHABLE: PvarId = PvarId(15);
    /// Origin handles served from the reusable-handle pool (no fresh
    /// allocation on the forward hot path).
    pub const NUM_HANDLE_POOL_REUSES: PvarId = PvarId(16);
    /// Largest number of completions drained by a single `trigger` call.
    pub const TRIGGER_BATCH_HIGHWATERMARK: PvarId = PvarId(17);

    // --- HANDLE-bound (values live and die with one RPC) ---

    /// Time to transfer overflowed RPC metadata through internal RDMA.
    pub const INTERNAL_RDMA_TRANSFER_TIME: PvarId = PvarId(20);
    /// Time to serialize input on the origin.
    pub const INPUT_SERIALIZATION_TIME: PvarId = PvarId(21);
    /// Time to deserialize input on the target.
    pub const INPUT_DESERIALIZATION_TIME: PvarId = PvarId(22);
    /// Time to serialize output on the target.
    pub const OUTPUT_SERIALIZATION_TIME: PvarId = PvarId(23);
    /// Time to deserialize output on the origin.
    pub const OUTPUT_DESERIALIZATION_TIME: PvarId = PvarId(24);
    /// Delay between response arrival and completion-callback invocation.
    pub const ORIGIN_COMPLETION_CALLBACK_TIME: PvarId = PvarId(25);
    /// Serialized input size for this handle.
    pub const HANDLE_INPUT_SIZE: PvarId = PvarId(26);
    /// Serialized output size for this handle.
    pub const HANDLE_OUTPUT_SIZE: PvarId = PvarId(27);
}

/// The full table of PVARs exported by this Mercury implementation.
pub static PVAR_TABLE: &[PvarInfo] = &[
    PvarInfo {
        id: ids::NUM_POSTED_HANDLES,
        name: "num_posted_handles",
        description: "Number of currently posted RPC handles",
        class: PvarClass::Level,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::COMPLETION_QUEUE_SIZE,
        name: "completion_queue_size",
        description: "Number of events in Mercury's completion queue",
        class: PvarClass::State,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_OFI_EVENTS_READ,
        name: "num_ofi_events_read",
        description: "Number of OFI completion events last read",
        class: PvarClass::Level,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_RPCS_INVOKED,
        name: "num_rpcs_invoked",
        description: "Number of RPCs invoked by instance",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_RPCS_SERVICED,
        name: "num_rpcs_serviced",
        description: "Number of RPCs serviced by instance",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_EAGER_OVERFLOWS,
        name: "num_eager_overflows",
        description: "Requests whose metadata overflowed the eager buffer",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::BULK_BYTES_PULLED,
        name: "bulk_bytes_pulled",
        description: "Bytes pulled through the bulk interface",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::BULK_BYTES_PUSHED,
        name: "bulk_bytes_pushed",
        description: "Bytes pushed through the bulk interface",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::COMPLETION_QUEUE_HIGHWATERMARK,
        name: "completion_queue_highwatermark",
        description: "Highest completion queue length observed",
        class: PvarClass::Highwatermark,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::EAGER_BUFFER_SIZE,
        name: "eager_buffer_size",
        description: "Configured eager buffer size in bytes",
        class: PvarClass::Size,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_PROGRESS_CALLS,
        name: "num_progress_calls",
        description: "Number of progress calls made",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_TRIGGERS,
        name: "num_triggers",
        description: "Number of completion callbacks triggered",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_RPCS_TIMED_OUT,
        name: "num_rpcs_timed_out",
        description: "Posted handles expired by their deadline",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_RPCS_CANCELED,
        name: "num_rpcs_canceled",
        description: "Posted handles canceled by the origin",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_LATE_RESPONSES,
        name: "num_late_responses",
        description: "Responses dropped because their handle already completed",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_RPCS_UNREACHABLE,
        name: "num_rpcs_unreachable",
        description: "Posted handles failed because the destination link went down",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::NUM_HANDLE_POOL_REUSES,
        name: "num_handle_pool_reuses",
        description: "Origin handles served from the reusable-handle pool",
        class: PvarClass::Counter,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::TRIGGER_BATCH_HIGHWATERMARK,
        name: "trigger_batch_highwatermark",
        description: "Largest number of completions drained by one trigger call",
        class: PvarClass::Highwatermark,
        bind: PvarBind::NoObject,
    },
    PvarInfo {
        id: ids::INTERNAL_RDMA_TRANSFER_TIME,
        name: "internal_rdma_transfer_time",
        description: "Time taken to transfer additional RPC metadata through RDMA",
        class: PvarClass::Timer,
        bind: PvarBind::Handle,
    },
    PvarInfo {
        id: ids::INPUT_SERIALIZATION_TIME,
        name: "input_serialization_time",
        description: "Time taken to serialize input on origin",
        class: PvarClass::Timer,
        bind: PvarBind::Handle,
    },
    PvarInfo {
        id: ids::INPUT_DESERIALIZATION_TIME,
        name: "input_deserialization_time",
        description: "Time taken to de-serialize input on target",
        class: PvarClass::Timer,
        bind: PvarBind::Handle,
    },
    PvarInfo {
        id: ids::OUTPUT_SERIALIZATION_TIME,
        name: "output_serialization_time",
        description: "Time taken to serialize output on target",
        class: PvarClass::Timer,
        bind: PvarBind::Handle,
    },
    PvarInfo {
        id: ids::OUTPUT_DESERIALIZATION_TIME,
        name: "output_deserialization_time",
        description: "Time taken to de-serialize output on origin",
        class: PvarClass::Timer,
        bind: PvarBind::Handle,
    },
    PvarInfo {
        id: ids::ORIGIN_COMPLETION_CALLBACK_TIME,
        name: "origin_completion_callback_time",
        description: "Delay between arrival of RPC response and invocation of completion callback",
        class: PvarClass::Timer,
        bind: PvarBind::Handle,
    },
    PvarInfo {
        id: ids::HANDLE_INPUT_SIZE,
        name: "handle_input_size",
        description: "Serialized input size for this handle",
        class: PvarClass::Size,
        bind: PvarBind::Handle,
    },
    PvarInfo {
        id: ids::HANDLE_OUTPUT_SIZE,
        name: "handle_output_size",
        description: "Serialized output size for this handle",
        class: PvarClass::Size,
        bind: PvarBind::Handle,
    },
];

/// Look up a PVAR's static info.
pub fn pvar_info(id: PvarId) -> Option<&'static PvarInfo> {
    PVAR_TABLE.iter().find(|p| p.id == id)
}

/// Look up a PVAR by exported name.
pub fn pvar_by_name(name: &str) -> Option<&'static PvarInfo> {
    PVAR_TABLE.iter().find(|p| p.name == name)
}

/// HANDLE-bound PVAR storage: one block per RPC handle. Values are written
/// by Mercury internals and sampled by tools through a session while the
/// handle is alive; once the handle completes they go out of scope (the
/// paper: "their values are lost forever").
#[derive(Debug, Default)]
pub struct HandlePvars {
    /// `internal_rdma_transfer_time` in ns.
    pub internal_rdma_transfer_ns: AtomicU64,
    /// `input_serialization_time` in ns.
    pub input_serialization_ns: AtomicU64,
    /// `input_deserialization_time` in ns.
    pub input_deserialization_ns: AtomicU64,
    /// `output_serialization_time` in ns.
    pub output_serialization_ns: AtomicU64,
    /// `output_deserialization_time` in ns.
    pub output_deserialization_ns: AtomicU64,
    /// `origin_completion_callback_time` in ns.
    pub origin_completion_callback_ns: AtomicU64,
    /// `handle_input_size` in bytes.
    pub input_size: AtomicU64,
    /// `handle_output_size` in bytes.
    pub output_size: AtomicU64,
}

impl HandlePvars {
    /// Zero every field, preparing the block for reuse by a recycled
    /// handle. Consistent with the paper's scoping rule — a completed
    /// handle's PVAR values "are lost forever" — so a tool must sample
    /// them before the completion callback returns.
    pub fn reset(&self) {
        self.internal_rdma_transfer_ns.store(0, Ordering::Relaxed);
        self.input_serialization_ns.store(0, Ordering::Relaxed);
        self.input_deserialization_ns.store(0, Ordering::Relaxed);
        self.output_serialization_ns.store(0, Ordering::Relaxed);
        self.output_deserialization_ns.store(0, Ordering::Relaxed);
        self.origin_completion_callback_ns
            .store(0, Ordering::Relaxed);
        self.input_size.store(0, Ordering::Relaxed);
        self.output_size.store(0, Ordering::Relaxed);
    }

    /// Read a handle-bound PVAR value, if `id` names one.
    pub fn read(&self, id: PvarId) -> Option<u64> {
        let v = match id {
            ids::INTERNAL_RDMA_TRANSFER_TIME => &self.internal_rdma_transfer_ns,
            ids::INPUT_SERIALIZATION_TIME => &self.input_serialization_ns,
            ids::INPUT_DESERIALIZATION_TIME => &self.input_deserialization_ns,
            ids::OUTPUT_SERIALIZATION_TIME => &self.output_serialization_ns,
            ids::OUTPUT_DESERIALIZATION_TIME => &self.output_deserialization_ns,
            ids::ORIGIN_COMPLETION_CALLBACK_TIME => &self.origin_completion_callback_ns,
            ids::HANDLE_INPUT_SIZE => &self.input_size,
            ids::HANDLE_OUTPUT_SIZE => &self.output_size,
            _ => return None,
        };
        Some(v.load(Ordering::Relaxed))
    }
}

/// Errors from the PVAR session API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PvarError {
    /// Unknown PVAR id.
    Unknown(PvarId),
    /// A HANDLE-bound PVAR was sampled without supplying a handle.
    HandleRequired(PvarId),
    /// The session has been finalized.
    Finalized,
}

impl std::fmt::Display for PvarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PvarError::Unknown(id) => write!(f, "unknown pvar {id:?}"),
            PvarError::HandleRequired(id) => {
                write!(f, "pvar {id:?} is HANDLE-bound; a handle must be supplied")
            }
            PvarError::Finalized => write!(f, "pvar session already finalized"),
        }
    }
}

impl std::error::Error for PvarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ids_are_unique() {
        let mut ids: Vec<u16> = PVAR_TABLE.iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn table_matches_paper_table_two() {
        // The paper's Table II rows must all be present with the documented
        // class and binding.
        let cases = [
            ("num_posted_handles", PvarClass::Level, PvarBind::NoObject),
            (
                "completion_queue_size",
                PvarClass::State,
                PvarBind::NoObject,
            ),
            ("num_ofi_events_read", PvarClass::Level, PvarBind::NoObject),
            ("num_rpcs_invoked", PvarClass::Counter, PvarBind::NoObject),
            (
                "internal_rdma_transfer_time",
                PvarClass::Timer,
                PvarBind::Handle,
            ),
            (
                "input_serialization_time",
                PvarClass::Timer,
                PvarBind::Handle,
            ),
            (
                "input_deserialization_time",
                PvarClass::Timer,
                PvarBind::Handle,
            ),
            (
                "origin_completion_callback_time",
                PvarClass::Timer,
                PvarBind::Handle,
            ),
        ];
        for (name, class, bind) in cases {
            let info = pvar_by_name(name).unwrap_or_else(|| panic!("missing pvar {name}"));
            assert_eq!(info.class, class, "{name} class");
            assert_eq!(info.bind, bind, "{name} bind");
        }
    }

    #[test]
    fn all_seven_classes_exist() {
        // Table I lists seven classes; the display names must match.
        assert_eq!(PvarClass::State.to_string(), "STATE");
        assert_eq!(PvarClass::Counter.to_string(), "COUNTER");
        assert_eq!(PvarClass::Timer.to_string(), "TIMER");
        assert_eq!(PvarClass::Level.to_string(), "LEVEL");
        assert_eq!(PvarClass::Size.to_string(), "SIZE");
        assert_eq!(PvarClass::Highwatermark.to_string(), "HIGHWATERMARK");
        assert_eq!(PvarClass::Lowwatermark.to_string(), "LOWWATERMARK");
    }

    #[test]
    fn handle_pvars_read_known_and_unknown() {
        let h = HandlePvars::default();
        h.input_serialization_ns.store(123, Ordering::Relaxed);
        assert_eq!(h.read(ids::INPUT_SERIALIZATION_TIME), Some(123));
        assert_eq!(h.read(ids::NUM_RPCS_INVOKED), None);
    }

    #[test]
    fn lookup_by_id_and_name_agree() {
        for info in PVAR_TABLE {
            assert_eq!(pvar_info(info.id).unwrap().name, info.name);
            assert_eq!(pvar_by_name(info.name).unwrap().id, info.id);
        }
    }
}
