//! Span attribution for symbi-store durability intervals.
//!
//! `symbi-store` sits below the measurement stack (it knows nothing about
//! tracers), so it reports `(op, duration)` pairs through a [`SpanSink`].
//! This module turns each report into a `TargetUltStart` / `TargetRespond`
//! event pair on the embedding process's tracer — the same shape a nested
//! RPC hop produces — so `symbi-analyze` builds the interval into the
//! merged span graph and critical paths show where durability costs land.
//!
//! Two situations arise:
//!
//! * **In-handler intervals** (WAL append, fsync of a group commit): the
//!   sink fires on the handler ULT, where the request's ULT-local context
//!   is live. The store span becomes a *child* of the handler's span
//!   (`parent_span = current_span()`), in the request's trace tree.
//! * **Background intervals** (compaction on the maintenance thread,
//!   recovery at startup): there is no request context, so the span has
//!   `parent_span = 0` and `request_id = 0` and surfaces as its own root
//!   tree whose callpath leaf names the operation (`store_recovery`,
//!   `store_compaction`).

use std::sync::Arc;
use std::time::Duration;

use symbi_core::{now_ns, Callpath, EventSamples, TraceEvent, TraceEventKind};
use symbi_margo::{keys, MargoInstance};
use symbi_store::{SpanSink, StoreOp};

/// Build the sink an SDSKV provider installs into its durable databases.
pub(crate) fn store_span_sink(margo: &MargoInstance) -> SpanSink {
    let sys = margo.symbiosys().clone();
    Arc::new(move |op: StoreOp, dur: Duration| {
        let end_ns = now_ns();
        let start_ns = end_ns.saturating_sub(dur.as_nanos() as u64);
        let span = sys.next_span_id();
        let parent_span = keys::current_span();
        let request_id = keys::current_request_id().unwrap_or(0);
        let hop = keys::current_hop().saturating_add(1);
        let base = keys::current_callpath();
        let callpath = if base.is_empty() {
            Callpath::root(op.label())
        } else {
            base.push(op.label())
        };
        let entity = sys.entity();

        sys.tracer().record(TraceEvent {
            request_id,
            order: keys::next_order(),
            span,
            parent_span,
            hop,
            lamport: sys.lamport().tick(),
            wall_ns: start_ns,
            kind: TraceEventKind::TargetUltStart,
            entity,
            callpath,
            samples: EventSamples::default(),
        });
        let samples = EventSamples {
            target_execution_ns: Some(dur.as_nanos() as u64),
            ..EventSamples::default()
        };
        sys.tracer().record(TraceEvent {
            request_id,
            order: keys::next_order(),
            span,
            parent_span,
            hop,
            lamport: sys.lamport().tick(),
            wall_ns: end_ns,
            kind: TraceEventKind::TargetRespond,
            entity,
            callpath,
            samples,
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_fabric::{Fabric, NetworkModel};
    use symbi_margo::MargoConfig;

    #[test]
    fn sink_records_a_paired_target_span_per_interval() {
        let f = Fabric::new(NetworkModel::instant());
        let server = MargoInstance::new(f, MargoConfig::server("store-span", 1));
        let sink = store_span_sink(&server);
        sink(StoreOp::Recovery, Duration::from_millis(3));
        let events = server.symbiosys().tracer().drain();
        let starts: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::TargetUltStart)
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::TargetRespond)
            .collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(ends.len(), 1);
        let (s, e) = (starts[0], ends[0]);
        assert_eq!(s.span, e.span);
        assert_ne!(s.span, 0);
        assert_eq!(s.parent_span, 0, "background interval is a root span");
        assert_eq!(
            s.callpath.leaf(),
            symbi_core::callpath::hash16("store_recovery")
        );
        assert!(e.wall_ns >= s.wall_ns + 2_000_000);
        assert_eq!(e.samples.target_execution_ns, Some(3_000_000));
        server.finalize();
    }
}
