//! BAKE — the Mochi bulk/blob microservice ("a microservice for storing
//! and retrieving object blobs", paper §III-A). Object data moves through
//! RDMA bulk transfers between client memory and the provider, as in the
//! Mobject and HEPnOS compositions (Figures 4 and 8).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use symbi_fabric::Addr;
use symbi_margo::{MargoError, MargoInstance, RpcOptions};
use symbi_mercury::{CodecError, Decoder, Encoder, RdmaRef, Wire};

/// Configuration of a BAKE provider.
#[derive(Debug, Clone, Copy)]
pub struct BakeSpec {
    /// Simulated cost of persisting a region to the storage device.
    pub persist_cost: Duration,
}

impl Default for BakeSpec {
    fn default() -> Self {
        BakeSpec {
            persist_cost: Duration::ZERO,
        }
    }
}

/// A region identifier returned by `bake_create_rpc`.
pub type RegionId = u64;

struct Region {
    data: Vec<u8>,
    persisted: bool,
}

/// Arguments of `bake_write_rpc`: data is pulled from the origin's
/// registered buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteArgs {
    /// Target region.
    pub rid: RegionId,
    /// Write offset within the region.
    pub offset: u64,
    /// Bulk descriptor of the source buffer.
    pub bulk: RdmaRef,
}

impl Wire for WriteArgs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.rid);
        enc.put_u64(self.offset);
        self.bulk.encode(enc);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(WriteArgs {
            rid: dec.get_u64()?,
            offset: dec.get_u64()?,
            bulk: RdmaRef::decode(dec)?,
        })
    }
}

/// Arguments of `bake_get_rpc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetArgs {
    /// Source region.
    pub rid: RegionId,
    /// Read offset.
    pub offset: u64,
    /// Bytes to read.
    pub len: u64,
}

impl Wire for GetArgs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.rid);
        enc.put_u64(self.offset);
        enc.put_u64(self.len);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(GetArgs {
            rid: dec.get_u64()?,
            offset: dec.get_u64()?,
            len: dec.get_u64()?,
        })
    }
}

/// Response of `bake_probe_rpc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResp {
    /// Whether the region exists.
    pub exists: bool,
    /// Region size in bytes.
    pub size: u64,
    /// Whether the region has been persisted.
    pub persisted: bool,
}

impl Wire for ProbeResp {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.exists as u8);
        enc.put_u64(self.size);
        enc.put_u8(self.persisted as u8);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(ProbeResp {
            exists: dec.get_u8()? != 0,
            size: dec.get_u64()?,
            persisted: dec.get_u8()? != 0,
        })
    }
}

/// The server-side BAKE provider.
pub struct BakeProvider {
    regions: Mutex<HashMap<RegionId, Region>>,
    next_rid: AtomicU64,
    spec: BakeSpec,
}

impl BakeProvider {
    /// Build the provider and register its RPCs on a Margo server, with
    /// handlers running in the server's primary pool.
    pub fn attach(margo: &MargoInstance, spec: BakeSpec) -> Arc<BakeProvider> {
        let pool = margo.primary_pool().clone();
        Self::attach_in_pool(margo, spec, &pool)
    }

    /// Build the provider with handlers running in a dedicated pool
    /// (Margo's provider-pool feature).
    pub fn attach_in_pool(
        margo: &MargoInstance,
        spec: BakeSpec,
        pool: &symbi_tasking::Pool,
    ) -> Arc<BakeProvider> {
        let provider = Arc::new(BakeProvider {
            regions: Mutex::new(HashMap::new()),
            next_rid: AtomicU64::new(1),
            spec,
        });

        let p = provider.clone();
        margo.register_fn_in_pool("bake_create_rpc", pool, move |_m, size: u64| {
            let rid = p.next_rid.fetch_add(1, Ordering::Relaxed);
            p.regions.lock().insert(
                rid,
                Region {
                    data: vec![0u8; size as usize],
                    persisted: false,
                },
            );
            Ok::<u64, String>(rid)
        });

        let p = provider.clone();
        margo.register_fn_in_pool(
            "bake_write_rpc",
            pool,
            move |m: &MargoInstance, args: WriteArgs| {
                let data = m
                    .hg()
                    .bulk_pull(args.bulk, 0, args.bulk.len as usize)
                    .map_err(|e| e.to_string())?;
                let mut regions = p.regions.lock();
                let region = regions
                    .get_mut(&args.rid)
                    .ok_or_else(|| format!("no region {}", args.rid))?;
                let end = args.offset as usize + data.len();
                if end > region.data.len() {
                    region.data.resize(end, 0);
                }
                region.data[args.offset as usize..end].copy_from_slice(&data);
                region.persisted = false;
                Ok::<u64, String>(data.len() as u64)
            },
        );

        let p = provider.clone();
        margo.register_fn_in_pool("bake_persist_rpc", pool, move |_m, rid: u64| {
            // Simulated device flush; held outside any lock (BAKE persists
            // regions independently).
            if !p.spec.persist_cost.is_zero() {
                std::thread::sleep(p.spec.persist_cost);
            }
            let mut regions = p.regions.lock();
            let region = regions
                .get_mut(&rid)
                .ok_or_else(|| format!("no region {rid}"))?;
            region.persisted = true;
            Ok::<u32, String>(1)
        });

        let p = provider.clone();
        margo.register_fn_in_pool("bake_get_rpc", pool, move |_m, args: GetArgs| {
            let regions = p.regions.lock();
            let region = regions
                .get(&args.rid)
                .ok_or_else(|| format!("no region {}", args.rid))?;
            let start = (args.offset as usize).min(region.data.len());
            let end = (start + args.len as usize).min(region.data.len());
            Ok::<Vec<u8>, String>(region.data[start..end].to_vec())
        });

        let p = provider.clone();
        margo.register_fn_in_pool("bake_probe_rpc", pool, move |_m, rid: u64| {
            let regions = p.regions.lock();
            Ok::<ProbeResp, String>(match regions.get(&rid) {
                Some(r) => ProbeResp {
                    exists: true,
                    size: r.data.len() as u64,
                    persisted: r.persisted,
                },
                None => ProbeResp {
                    exists: false,
                    size: 0,
                    persisted: false,
                },
            })
        });

        let p = provider.clone();
        margo.register_fn_in_pool("bake_remove_rpc", pool, move |_m, rid: u64| {
            Ok::<u32, String>(p.regions.lock().remove(&rid).is_some() as u32)
        });

        provider
    }

    /// Number of regions currently stored.
    pub fn num_regions(&self) -> usize {
        self.regions.lock().len()
    }

    /// Total bytes stored across regions.
    pub fn total_bytes(&self) -> usize {
        self.regions.lock().values().map(|r| r.data.len()).sum()
    }
}

/// Client-side BAKE API.
#[derive(Clone)]
pub struct BakeClient {
    margo: MargoInstance,
    addr: Addr,
    options: RpcOptions,
}

impl BakeClient {
    /// Connect a client handle to a provider address.
    pub fn new(margo: MargoInstance, addr: Addr) -> Self {
        BakeClient {
            margo,
            addr,
            options: RpcOptions::default(),
        }
    }

    /// Apply an [`RpcOptions`] (deadline / retry policy) to every RPC
    /// this client issues.
    #[must_use]
    pub fn with_options(mut self, options: RpcOptions) -> Self {
        self.options = options;
        self
    }

    /// Create a region of `size` bytes.
    pub fn create(&self, size: u64) -> Result<RegionId, MargoError> {
        self.margo
            .forward_with(self.addr, "bake_create_rpc", &size, self.options.clone())
    }

    /// Write `data` into a region at `offset`; the provider pulls it via
    /// RDMA from a registered staging buffer.
    pub fn write(&self, rid: RegionId, offset: u64, data: &[u8]) -> Result<u64, MargoError> {
        let staged = Arc::new(data.to_vec());
        let bulk = self.margo.hg().bulk_expose_read(staged.clone());
        let res = self.margo.forward_with(
            self.addr,
            "bake_write_rpc",
            &WriteArgs { rid, offset, bulk },
            self.options.clone(),
        );
        self.margo.hg().bulk_free(bulk);
        res
    }

    /// Persist a region.
    pub fn persist(&self, rid: RegionId) -> Result<(), MargoError> {
        let _: u32 =
            self.margo
                .forward_with(self.addr, "bake_persist_rpc", &rid, self.options.clone())?;
        Ok(())
    }

    /// Read `[offset, offset+len)` of a region.
    pub fn get(&self, rid: RegionId, offset: u64, len: u64) -> Result<Vec<u8>, MargoError> {
        self.margo.forward_with(
            self.addr,
            "bake_get_rpc",
            &GetArgs { rid, offset, len },
            self.options.clone(),
        )
    }

    /// Probe a region's existence and size.
    pub fn probe(&self, rid: RegionId) -> Result<ProbeResp, MargoError> {
        self.margo
            .forward_with(self.addr, "bake_probe_rpc", &rid, self.options.clone())
    }

    /// Remove a region; returns whether it existed.
    pub fn remove(&self, rid: RegionId) -> Result<bool, MargoError> {
        let n: u32 =
            self.margo
                .forward_with(self.addr, "bake_remove_rpc", &rid, self.options.clone())?;
        Ok(n == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_fabric::{Fabric, NetworkModel};
    use symbi_margo::MargoConfig;

    fn setup() -> (MargoInstance, MargoInstance, Arc<BakeProvider>, BakeClient) {
        let f = Fabric::new(NetworkModel::instant());
        let server = MargoInstance::new(f.clone(), MargoConfig::server("bake-server", 2));
        let provider = BakeProvider::attach(&server, BakeSpec::default());
        let cm = MargoInstance::new(f, MargoConfig::client("bake-client"));
        let client = BakeClient::new(cm.clone(), server.addr());
        (server, cm, provider, client)
    }

    #[test]
    fn create_write_persist_get_roundtrip() {
        let (server, cm, provider, client) = setup();
        let rid = client.create(16).unwrap();
        let payload: Vec<u8> = (0..16).collect();
        assert_eq!(client.write(rid, 0, &payload).unwrap(), 16);
        client.persist(rid).unwrap();
        assert_eq!(client.get(rid, 0, 16).unwrap(), payload);
        assert_eq!(client.get(rid, 4, 4).unwrap(), vec![4, 5, 6, 7]);
        let probe = client.probe(rid).unwrap();
        assert!(probe.exists);
        assert!(probe.persisted);
        assert_eq!(probe.size, 16);
        assert_eq!(provider.num_regions(), 1);
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn write_extends_region() {
        let (server, cm, _p, client) = setup();
        let rid = client.create(4).unwrap();
        client.write(rid, 2, &[9, 9, 9, 9]).unwrap();
        assert_eq!(client.probe(rid).unwrap().size, 6);
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn write_invalidates_persistence() {
        let (server, cm, _p, client) = setup();
        let rid = client.create(4).unwrap();
        client.persist(rid).unwrap();
        assert!(client.probe(rid).unwrap().persisted);
        client.write(rid, 0, &[1]).unwrap();
        assert!(!client.probe(rid).unwrap().persisted);
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn missing_region_errors() {
        let (server, cm, _p, client) = setup();
        assert!(client.persist(999).is_err());
        assert!(client.get(999, 0, 1).is_err());
        let probe = client.probe(999).unwrap();
        assert!(!probe.exists);
        assert!(!client.remove(999).unwrap());
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn persist_cost_is_charged() {
        let f = Fabric::new(NetworkModel::instant());
        let server = MargoInstance::new(f.clone(), MargoConfig::server("bake-slow", 2));
        let _provider = BakeProvider::attach(
            &server,
            BakeSpec {
                persist_cost: Duration::from_millis(10),
            },
        );
        let cm = MargoInstance::new(f, MargoConfig::client("bake-slow-client"));
        let client = BakeClient::new(cm.clone(), server.addr());
        let rid = client.create(1).unwrap();
        let start = std::time::Instant::now();
        client.persist(rid).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(9));
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn large_blob_roundtrip() {
        let (server, cm, provider, client) = setup();
        let blob: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let rid = client.create(0).unwrap();
        assert_eq!(client.write(rid, 0, &blob).unwrap(), blob.len() as u64);
        let read = client.get(rid, 0, blob.len() as u64).unwrap();
        assert_eq!(read, blob);
        assert_eq!(provider.total_bytes(), blob.len());
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn wire_roundtrips() {
        let w = WriteArgs {
            rid: 1,
            offset: 2,
            bulk: RdmaRef { key: 3, len: 4 },
        };
        assert_eq!(WriteArgs::from_bytes(w.to_bytes()).unwrap(), w);
        let g = GetArgs {
            rid: 1,
            offset: 0,
            len: 100,
        };
        assert_eq!(GetArgs::from_bytes(g.to_bytes()).unwrap(), g);
        let p = ProbeResp {
            exists: true,
            size: 8,
            persisted: false,
        };
        assert_eq!(ProbeResp::from_bytes(p.to_bytes()).unwrap(), p);
    }
}
