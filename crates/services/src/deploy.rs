//! symbi-deploy: a multi-process deployment launcher.
//!
//! Spawns N server and M client OS processes from a [`DeployManifest`],
//! assigns each server a transport address (`tcp://host:port` or
//! `unix://path`), wires per-process telemetry (monitor period,
//! Prometheus scrape port, flight-recorder directory), waits for the
//! servers to come up, and tears the deployment down cleanly. With the
//! `symbi-net` transport this turns the in-process examples into genuine
//! multi-process runs whose per-process flight rings `symbi-analyze`
//! merges into one span graph.
//!
//! ## The process protocol
//!
//! The launcher communicates with its children purely through the
//! environment and small files, so any binary (the `symbi-netd` roles, a
//! shell script in tests) can participate:
//!
//! | Variable | Meaning |
//! |---|---|
//! | `SYMBI_NET_ROLE` | Role string from the manifest (e.g. `hepnos`). |
//! | `SYMBI_RANK` | Index of this process within its role. |
//! | `SYMBI_NET_NODE_ID` | Assigned fabric node id (also the id nonce). |
//! | `SYMBI_NET_LISTEN` | Servers: URL to listen on (`tcp://…:0` ok). |
//! | `SYMBI_READY_FILE` | Write the *actual* listen URL (servers) or any content (clients) here once up. |
//! | `SYMBI_STOP_FILE` | Servers exit soon after this file appears. |
//! | `SYMBI_SERVERS` | Clients: comma-separated server URLs. |
//! | `SYMBI_TELEMETRY_PERIOD_MS` | Monitor sampling period, if set. |
//! | `SYMBI_PROMETHEUS_PORT` | Prometheus scrape port, if set. |
//! | `SYMBI_FLIGHT_DIR` | Flight-recorder ring directory, if set. |
//! | `SYMBI_FAULT_SEED` | Seed for the process's fault plan, if set. |
//! | `SYMBI_ADAPTIVE` | `1`: servers attach the online control loop. |
//! | `SYMBI_SCENARIO` | JSON [`crate::scenario::ScenarioSpec`], if set. |
//! | `SYMBI_OBS_COLLECTOR` | Cluster collector URL to stream telemetry to. |
//! | `SYMBI_STORE_DIR` | Root directory for durable `ldb-disk` stores; scenario server *i* uses `$SYMBI_STORE_DIR/server-i`. Pass via [`DeployManifest::extra_env`]; survives restarts, so relaunching against the same directory runs crash recovery. |
//!
//! With [`DeployManifest::with_collector`] the launcher spawns one extra
//! `collector` process *before* the servers, reads its ready file (line
//! format: `<obs url> <federated http addr>`), and hands the obs URL to
//! every server and client as `SYMBI_OBS_COLLECTOR`. The whole
//! deployment is then scrapeable from the collector's single federated
//! `/metrics` port while it runs.
//!
//! `SYMBI_SCENARIO` (set by [`DeployManifest::with_scenario`]) is the
//! typed replacement for the ad-hoc `SYMBI_ADAPTIVE`/`SYMBI_FAULT_SEED`
//! knobs: a process that finds it should build its configuration from
//! the spec and ignore the legacy variables.
//!
//! Servers report their bound URL through the ready file (not the
//! launcher-chosen one) so ephemeral TCP ports work: the launcher asks
//! for `tcp://127.0.0.1:0` and reads back the real port.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// Which socket family servers listen on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportScheme {
    /// `tcp://127.0.0.1:<ephemeral>` per server.
    Tcp,
    /// `unix://<workdir>/server-<i>.sock` per server.
    Unix,
}

/// Description of a multi-process deployment.
#[derive(Debug, Clone)]
pub struct DeployManifest {
    /// Binary to spawn for every process (e.g. the `symbi-netd` bin).
    pub program: PathBuf,
    /// Arguments passed to every process.
    pub args: Vec<String>,
    /// `SYMBI_NET_ROLE` for server processes.
    pub server_role: String,
    /// `SYMBI_NET_ROLE` for client processes.
    pub client_role: String,
    /// Number of server processes.
    pub servers: usize,
    /// Number of client processes.
    pub clients: usize,
    /// Socket family for server listen addresses.
    pub scheme: TransportScheme,
    /// Scratch directory for ready/stop files, Unix sockets, and
    /// per-process logs (created if missing).
    pub workdir: PathBuf,
    /// Background telemetry sampling period for every process.
    pub telemetry_period: Option<Duration>,
    /// Prometheus ports: server `i` scrapes on `base + i`, client `j` on
    /// `base + servers + j`. `Some(0)` gives every process an ephemeral
    /// port (scrapable only from inside that process).
    pub prometheus_base_port: Option<u16>,
    /// Flight-recorder root: each process records under
    /// `<dir>/<role>-<rank>/`.
    pub flight_dir: Option<PathBuf>,
    /// Deterministic fault seed handed to every process.
    pub fault_seed: Option<u64>,
    /// Hand `SYMBI_ADAPTIVE=1` to every process: server roles attach the
    /// online control loop (anomaly → lane/stream/pipeline/shed
    /// reactions); clients ignore it.
    pub adaptive: bool,
    /// JSON-encoded [`crate::scenario::ScenarioSpec`] handed to every
    /// process as `SYMBI_SCENARIO` (the typed successor of the
    /// `adaptive`/`fault_seed` knobs).
    pub scenario_json: Option<String>,
    /// Spawn one cluster-collector process (role `collector`) ahead of
    /// the servers and point every process at it via
    /// `SYMBI_OBS_COLLECTOR`.
    pub collector: bool,
    /// How long to wait for all server ready files.
    pub ready_timeout: Duration,
    /// Extra environment variables for every process.
    pub extra_env: Vec<(String, String)>,
}

impl DeployManifest {
    /// A manifest with `servers` + `clients` processes of `program`,
    /// TCP transport, and defaults for everything else.
    pub fn new(
        program: impl Into<PathBuf>,
        workdir: impl Into<PathBuf>,
        servers: usize,
        clients: usize,
    ) -> Self {
        DeployManifest {
            program: program.into(),
            args: Vec::new(),
            server_role: "server".into(),
            client_role: "client".into(),
            servers,
            clients,
            scheme: TransportScheme::Tcp,
            workdir: workdir.into(),
            telemetry_period: None,
            prometheus_base_port: None,
            flight_dir: None,
            fault_seed: None,
            adaptive: false,
            scenario_json: None,
            collector: false,
            ready_timeout: Duration::from_secs(30),
            extra_env: Vec::new(),
        }
    }

    /// Set the server/client role strings.
    #[must_use]
    pub fn with_roles(mut self, server: impl Into<String>, client: impl Into<String>) -> Self {
        self.server_role = server.into();
        self.client_role = client.into();
        self
    }

    /// Use Unix-domain sockets under the workdir instead of TCP.
    #[must_use]
    pub fn with_unix_sockets(mut self) -> Self {
        self.scheme = TransportScheme::Unix;
        self
    }

    /// Enable per-process telemetry: monitor period, Prometheus base
    /// port, and flight-ring root directory.
    #[must_use]
    pub fn with_telemetry(
        mut self,
        period: Duration,
        prometheus_base_port: u16,
        flight_dir: impl Into<PathBuf>,
    ) -> Self {
        self.telemetry_period = Some(period);
        self.prometheus_base_port = Some(prometheus_base_port);
        self.flight_dir = Some(flight_dir.into());
        self
    }

    /// Hand every process this fault seed.
    #[must_use]
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }

    /// Attach the adaptive control loop to every server process.
    #[must_use]
    pub fn with_adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Ship this scenario to every process as `SYMBI_SCENARIO` JSON.
    /// Scenario-aware roles (`scenario`, `load`) build their entire
    /// configuration from it.
    #[must_use]
    pub fn with_scenario(mut self, spec: &crate::scenario::ScenarioSpec) -> Self {
        self.scenario_json = Some(spec.to_json());
        self
    }

    /// Add a cluster-collector process: every server and client streams
    /// its telemetry there, and one federated `/metrics` port covers the
    /// whole deployment (see [`Deployment::collector_http_addr`]).
    #[must_use]
    pub fn with_collector(mut self) -> Self {
        self.collector = true;
        self
    }

    /// The listen URL assigned to a listening process (port 0 for TCP —
    /// the process reports the real one through its ready file).
    fn listen_url(&self, name: &str) -> String {
        match self.scheme {
            TransportScheme::Tcp => "tcp://127.0.0.1:0".to_string(),
            TransportScheme::Unix => {
                format!(
                    "unix://{}",
                    self.workdir.join(format!("{name}.sock")).display()
                )
            }
        }
    }

    /// The Prometheus port for process `index` (servers first, then
    /// clients), if telemetry is configured.
    fn prometheus_port(&self, index: usize) -> Option<u16> {
        self.prometheus_base_port
            .map(|base| if base == 0 { 0 } else { base + index as u16 })
    }

    /// Launch the deployment: spawn the collector (if configured) and
    /// wait for it, then servers, wait for their ready files, then
    /// clients pointed at the reported server URLs.
    pub fn launch(&self) -> io::Result<Deployment> {
        fs::create_dir_all(&self.workdir)?;
        let stop_file = self.workdir.join("stop");
        let _ = fs::remove_file(&stop_file);

        let mut collector = None;
        let mut collector_url = None;
        let mut collector_http = None;
        if self.collector {
            let mut proc = self.spawn_one(
                SpawnSpec {
                    role: "collector",
                    rank: 0,
                    node_id: 3000,
                    prom_index: self.servers + self.clients,
                    listen: true,
                    server_urls: None,
                    obs_url: None,
                },
                &stop_file,
            )?;
            // Ready line: `<obs url> <federated http addr>`.
            let ready = match self.wait_for_ready(std::slice::from_ref(&proc)) {
                Ok(mut urls) => urls.remove(0),
                Err(e) => {
                    let _ = proc.child.kill();
                    return Err(e);
                }
            };
            let mut parts = ready.split_whitespace();
            collector_url = parts.next().map(str::to_string);
            collector_http = parts.next().map(str::to_string);
            collector = Some(proc);
        }

        let mut servers = Vec::with_capacity(self.servers);
        for i in 0..self.servers {
            servers.push(self.spawn_one(
                SpawnSpec {
                    role: &self.server_role,
                    rank: i,
                    node_id: 1000 + i,
                    prom_index: i,
                    listen: true,
                    server_urls: None,
                    obs_url: collector_url.as_deref(),
                },
                &stop_file,
            )?);
        }

        let server_urls = match self.wait_for_ready(&servers) {
            Ok(urls) => urls,
            Err(e) => {
                for p in servers.iter_mut().chain(collector.iter_mut()) {
                    let _ = p.child.kill();
                }
                return Err(e);
            }
        };

        let joined = server_urls.join(",");
        let mut clients = Vec::with_capacity(self.clients);
        for j in 0..self.clients {
            clients.push(self.spawn_one(
                SpawnSpec {
                    role: &self.client_role,
                    rank: j,
                    node_id: 2000 + self.servers + j,
                    prom_index: self.servers + j,
                    listen: false,
                    server_urls: Some(&joined),
                    obs_url: collector_url.as_deref(),
                },
                &stop_file,
            )?);
        }

        Ok(Deployment {
            servers,
            clients,
            collector,
            server_urls,
            collector_url,
            collector_http,
            stop_file,
            workdir: self.workdir.clone(),
        })
    }

    fn spawn_one(&self, spec: SpawnSpec<'_>, stop_file: &Path) -> io::Result<ManagedProcess> {
        let name = format!("{}-{}", spec.role, spec.rank);
        let ready_file = self.workdir.join(format!("{name}.ready"));
        let _ = fs::remove_file(&ready_file);
        let log = fs::File::create(self.workdir.join(format!("{name}.log")))?;

        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args)
            .stdin(Stdio::null())
            .stdout(Stdio::from(log.try_clone()?))
            .stderr(Stdio::from(log))
            .env("SYMBI_NET_ROLE", spec.role)
            .env("SYMBI_RANK", spec.rank.to_string())
            // Node ids: servers from 1000, clients from 2000, the
            // collector at 3000. Also the per-process id nonce
            // (symbi_core::process_nonce), keeping request/span ids
            // distinct across the deployment.
            .env("SYMBI_NET_NODE_ID", spec.node_id.to_string())
            .env("SYMBI_READY_FILE", &ready_file)
            .env("SYMBI_STOP_FILE", stop_file);
        if spec.listen {
            cmd.env("SYMBI_NET_LISTEN", self.listen_url(&name));
        }
        if let Some(urls) = spec.server_urls {
            cmd.env("SYMBI_SERVERS", urls);
        }
        if let Some(url) = spec.obs_url {
            cmd.env("SYMBI_OBS_COLLECTOR", url);
        }
        if let Some(p) = self.telemetry_period {
            cmd.env("SYMBI_TELEMETRY_PERIOD_MS", p.as_millis().to_string());
        }
        if let Some(port) = self.prometheus_port(spec.prom_index) {
            cmd.env("SYMBI_PROMETHEUS_PORT", port.to_string());
        }
        if let Some(dir) = &self.flight_dir {
            cmd.env("SYMBI_FLIGHT_DIR", dir.join(&name));
        }
        if let Some(seed) = self.fault_seed {
            cmd.env("SYMBI_FAULT_SEED", seed.to_string());
        }
        if self.adaptive {
            cmd.env("SYMBI_ADAPTIVE", "1");
        }
        if let Some(json) = &self.scenario_json {
            cmd.env(crate::scenario::SCENARIO_ENV, json);
        }
        for (k, v) in &self.extra_env {
            cmd.env(k, v);
        }
        let child = cmd.spawn()?;
        Ok(ManagedProcess {
            name,
            ready_file,
            child,
        })
    }

    /// Poll until every process's ready file exists with content,
    /// returning the reported URLs in process order.
    fn wait_for_ready(&self, procs: &[ManagedProcess]) -> io::Result<Vec<String>> {
        let deadline = Instant::now() + self.ready_timeout;
        let mut urls = vec![None; procs.len()];
        loop {
            for (i, p) in procs.iter().enumerate() {
                if urls[i].is_none() {
                    if let Ok(contents) = fs::read_to_string(&p.ready_file) {
                        let trimmed = contents.trim().to_string();
                        if !trimmed.is_empty() {
                            urls[i] = Some(trimmed);
                        }
                    }
                }
            }
            if urls.iter().all(|u| u.is_some()) {
                return Ok(urls.into_iter().map(|u| u.unwrap()).collect());
            }
            if Instant::now() >= deadline {
                let missing: Vec<&str> = procs
                    .iter()
                    .zip(&urls)
                    .filter(|(_, u)| u.is_none())
                    .map(|(p, _)| p.name.as_str())
                    .collect();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "deployment not ready within {:?}: waiting on {}",
                        self.ready_timeout,
                        missing.join(", ")
                    ),
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Everything that varies between one spawned process and the next.
struct SpawnSpec<'a> {
    role: &'a str,
    rank: usize,
    node_id: usize,
    /// Index into the Prometheus port sequence.
    prom_index: usize,
    /// Whether the process gets a `SYMBI_NET_LISTEN` URL.
    listen: bool,
    server_urls: Option<&'a str>,
    obs_url: Option<&'a str>,
}

struct ManagedProcess {
    name: String,
    ready_file: PathBuf,
    child: Child,
}

/// A running multi-process deployment (see [`DeployManifest::launch`]).
pub struct Deployment {
    servers: Vec<ManagedProcess>,
    clients: Vec<ManagedProcess>,
    collector: Option<ManagedProcess>,
    server_urls: Vec<String>,
    collector_url: Option<String>,
    collector_http: Option<String>,
    stop_file: PathBuf,
    workdir: PathBuf,
}

impl Deployment {
    /// The URLs the servers actually bound (readable by any
    /// URL-addressed transport's `lookup`).
    pub fn server_urls(&self) -> &[String] {
        &self.server_urls
    }

    /// The collector's obs URL (what `SYMBI_OBS_COLLECTOR` was set to),
    /// if a collector was deployed.
    pub fn collector_url(&self) -> Option<&str> {
        self.collector_url.as_deref()
    }

    /// The collector's federated HTTP address (`host:port` serving
    /// `/metrics` and `/trace.json`), if a collector was deployed.
    pub fn collector_http_addr(&self) -> Option<&str> {
        self.collector_http.as_deref()
    }

    /// Kill the collector immediately (SIGKILL) — the "observability
    /// plane dies mid-run" fault drill. The data plane must not notice.
    pub fn kill_collector(&mut self) -> io::Result<()> {
        match &mut self.collector {
            Some(p) => p.child.kill(),
            None => Ok(()),
        }
    }

    /// The deployment scratch directory (logs, ready/stop files).
    pub fn workdir(&self) -> &Path {
        &self.workdir
    }

    /// OS pid of server `i` (e.g. to kill it for a fault drill).
    pub fn server_pid(&self, i: usize) -> u32 {
        self.servers[i].child.id()
    }

    /// Kill server `i` immediately (SIGKILL) — the "server dies
    /// mid-load" fault drill. Idempotent once the process is gone.
    pub fn kill_server(&mut self, i: usize) -> io::Result<()> {
        self.servers[i].child.kill()
    }

    /// Wait for every client process to exit, up to `timeout`. Returns
    /// the exit statuses in client order; times out with the names of
    /// the stragglers (which keep running).
    pub fn wait_clients(&mut self, timeout: Duration) -> io::Result<Vec<ExitStatus>> {
        let deadline = Instant::now() + timeout;
        let mut statuses: Vec<Option<ExitStatus>> = vec![None; self.clients.len()];
        loop {
            for (i, c) in self.clients.iter_mut().enumerate() {
                if statuses[i].is_none() {
                    statuses[i] = c.child.try_wait()?;
                }
            }
            if statuses.iter().all(|s| s.is_some()) {
                return Ok(statuses.into_iter().map(|s| s.unwrap()).collect());
            }
            if Instant::now() >= deadline {
                let stuck: Vec<&str> = self
                    .clients
                    .iter()
                    .zip(&statuses)
                    .filter(|(_, s)| s.is_none())
                    .map(|(c, _)| c.name.as_str())
                    .collect();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "clients still running after {timeout:?}: {}",
                        stuck.join(", ")
                    ),
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Tear down: signal the stop file, give servers `grace` to exit,
    /// then kill anything still running (including clients). Returns the
    /// number of processes that had to be killed.
    pub fn shutdown(mut self, grace: Duration) -> io::Result<usize> {
        fs::write(&self.stop_file, b"stop")?;
        let deadline = Instant::now() + grace;
        let mut killed = 0;
        loop {
            let mut alive = 0;
            for p in self
                .servers
                .iter_mut()
                .chain(self.clients.iter_mut())
                .chain(self.collector.iter_mut())
            {
                if p.child.try_wait()?.is_none() {
                    alive += 1;
                }
            }
            if alive == 0 {
                break;
            }
            if Instant::now() >= deadline {
                for p in self
                    .servers
                    .iter_mut()
                    .chain(self.clients.iter_mut())
                    .chain(self.collector.iter_mut())
                {
                    if p.child.try_wait()?.is_none() {
                        let _ = p.child.kill();
                        let _ = p.child.wait();
                        killed += 1;
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        // Reap any zombies that exited within the grace period.
        for p in self
            .servers
            .iter_mut()
            .chain(self.clients.iter_mut())
            .chain(self.collector.iter_mut())
        {
            let _ = p.child.wait();
        }
        Ok(killed)
    }
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("servers", &self.servers.len())
            .field("clients", &self.clients.len())
            .field("collector", &self.collector.is_some())
            .field("server_urls", &self.server_urls)
            .field("workdir", &self.workdir)
            .finish()
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        // Last-resort cleanup so a panicking test never leaks processes.
        for p in self
            .servers
            .iter_mut()
            .chain(self.clients.iter_mut())
            .chain(self.collector.iter_mut())
        {
            if let Ok(None) = p.child.try_wait() {
                let _ = p.child.kill();
                let _ = p.child.wait();
            }
        }
    }
}

#[cfg(test)]
#[cfg(unix)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("symbi-deploy-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A shell stand-in for a server: reports a fake URL, waits for stop.
    const FAKE_SERVER: &str = r#"echo "tcp://127.0.0.1:$((4000 + SYMBI_RANK))" > "$SYMBI_READY_FILE"
while [ ! -e "$SYMBI_STOP_FILE" ]; do sleep 0.02; done"#;

    /// A shell stand-in for a client: echoes its server list and exits.
    const FAKE_CLIENT: &str = r#"echo "servers=$SYMBI_SERVERS node=$SYMBI_NET_NODE_ID"
echo ok > "$SYMBI_READY_FILE""#;

    fn manifest(tag: &str, server_script: &str, client_script: &str) -> DeployManifest {
        let mut m = DeployManifest::new("/bin/sh", scratch(tag), 2, 1);
        m.args = vec![
            "-c".into(),
            format!(
                r#"case "$SYMBI_NET_ROLE" in server) {server_script} ;; *) {client_script} ;; esac"#
            ),
        ];
        m.ready_timeout = Duration::from_secs(10);
        m
    }

    #[test]
    fn launch_collects_reported_urls_and_tears_down() {
        let m = manifest("roundtrip", FAKE_SERVER, FAKE_CLIENT);
        let mut dep = m.launch().unwrap();
        assert_eq!(
            dep.server_urls(),
            &[
                "tcp://127.0.0.1:4000".to_string(),
                "tcp://127.0.0.1:4001".to_string()
            ]
        );
        let statuses = dep.wait_clients(Duration::from_secs(10)).unwrap();
        assert!(statuses.iter().all(|s| s.success()));
        // The client saw the comma-joined server list.
        let log = fs::read_to_string(m.workdir.join("client-0.log")).unwrap();
        assert!(log.contains("servers=tcp://127.0.0.1:4000,tcp://127.0.0.1:4001"));
        assert!(log.contains("node=2002"));
        let killed = dep.shutdown(Duration::from_secs(5)).unwrap();
        assert_eq!(killed, 0, "servers should honor the stop file");
        let _ = fs::remove_dir_all(&m.workdir);
    }

    #[test]
    fn ready_timeout_reports_the_straggler() {
        let mut m = manifest("timeout", "sleep 30", FAKE_CLIENT);
        m.clients = 0;
        m.ready_timeout = Duration::from_millis(300);
        let err = m.launch().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("server-0"));
        let _ = fs::remove_dir_all(&m.workdir);
    }

    #[test]
    fn telemetry_env_is_wired_per_process() {
        let mut m = manifest(
            "telemetry",
            r#"echo "url" > "$SYMBI_READY_FILE"; while [ ! -e "$SYMBI_STOP_FILE" ]; do sleep 0.02; done"#,
            r#"echo "period=$SYMBI_TELEMETRY_PERIOD_MS prom=$SYMBI_PROMETHEUS_PORT flight=$SYMBI_FLIGHT_DIR seed=$SYMBI_FAULT_SEED adaptive=$SYMBI_ADAPTIVE""#,
        );
        m.servers = 1;
        let rings = m.workdir.join("rings");
        m = m
            .with_telemetry(Duration::from_millis(250), 9310, rings)
            .with_fault_seed(1337)
            .with_adaptive();
        let mut dep = m.launch().unwrap();
        dep.wait_clients(Duration::from_secs(10)).unwrap();
        let log = fs::read_to_string(m.workdir.join("client-0.log")).unwrap();
        assert!(log.contains("period=250"));
        assert!(
            log.contains("prom=9311"),
            "client port offset past servers: {log}"
        );
        assert!(log.contains("client-0"), "flight dir is per-process: {log}");
        assert!(log.contains("seed=1337"));
        assert!(log.contains("adaptive=1"), "{log}");
        dep.shutdown(Duration::from_secs(5)).unwrap();
        let _ = fs::remove_dir_all(&m.workdir);
    }

    #[test]
    fn scenario_json_is_wired_into_every_process() {
        let spec = crate::scenario::ScenarioSpec::named("wiring-test").with_rate_hz(123.0);
        let mut m = manifest(
            "scenario",
            r#"echo "url" > "$SYMBI_READY_FILE"; while [ ! -e "$SYMBI_STOP_FILE" ]; do sleep 0.02; done"#,
            r#"echo "scenario=$SYMBI_SCENARIO""#,
        );
        m.servers = 1;
        m = m.with_scenario(&spec);
        let mut dep = m.launch().unwrap();
        dep.wait_clients(Duration::from_secs(10)).unwrap();
        let log = fs::read_to_string(m.workdir.join("client-0.log")).unwrap();
        let json = log
            .trim()
            .strip_prefix("scenario=")
            .expect("client saw SYMBI_SCENARIO");
        let back = crate::scenario::ScenarioSpec::from_json(json).expect("spec round-trips");
        assert_eq!(back, spec);
        dep.shutdown(Duration::from_secs(5)).unwrap();
        let _ = fs::remove_dir_all(&m.workdir);
    }

    #[test]
    fn collector_spawns_first_and_every_process_gets_its_url() {
        let mut m = DeployManifest::new("/bin/sh", scratch("collector"), 1, 1);
        m.args = vec![
            "-c".into(),
            format!(
                r#"case "$SYMBI_NET_ROLE" in
collector) echo "tcp://127.0.0.1:7000 127.0.0.1:7100" > "$SYMBI_READY_FILE"
  while [ ! -e "$SYMBI_STOP_FILE" ]; do sleep 0.02; done ;;
server) echo "obs=$SYMBI_OBS_COLLECTOR"; {FAKE_SERVER} ;;
*) echo "obs=$SYMBI_OBS_COLLECTOR"; {FAKE_CLIENT} ;;
esac"#
            ),
        ];
        m.ready_timeout = Duration::from_secs(10);
        m = m.with_collector();
        let mut dep = m.launch().unwrap();
        assert_eq!(dep.collector_url(), Some("tcp://127.0.0.1:7000"));
        assert_eq!(dep.collector_http_addr(), Some("127.0.0.1:7100"));
        dep.wait_clients(Duration::from_secs(10)).unwrap();
        for name in ["server-0", "client-0"] {
            let log = fs::read_to_string(m.workdir.join(format!("{name}.log"))).unwrap();
            assert!(
                log.contains("obs=tcp://127.0.0.1:7000"),
                "{name} missed SYMBI_OBS_COLLECTOR: {log}"
            );
        }
        dep.kill_collector().unwrap();
        let killed = dep.shutdown(Duration::from_secs(5)).unwrap();
        assert_eq!(killed, 0, "killed collector must not be re-killed");
        let _ = fs::remove_dir_all(&m.workdir);
    }

    #[test]
    fn kill_server_is_available_for_fault_drills() {
        let mut m = manifest("kill", FAKE_SERVER, FAKE_CLIENT);
        m.clients = 0;
        m.servers = 1;
        let mut dep = m.launch().unwrap();
        let pid = dep.server_pid(0);
        assert!(pid > 0);
        dep.kill_server(0).unwrap();
        let killed = dep.shutdown(Duration::from_secs(5)).unwrap();
        assert_eq!(killed, 0, "killed server must not be re-killed");
        let _ = fs::remove_dir_all(&m.workdir);
    }
}
