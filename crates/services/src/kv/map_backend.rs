//! The `map` backend: an in-memory ordered map guarded by **one** mutex.
//!
//! This is the backend of the paper's HEPnOS study. Its single lock is
//! held across the (simulated) storage cost, so concurrent
//! `sdskv_put_packed` handlers serialize — the root cause identified in
//! §V-C3 and visualized in Figure 10. The lock is an
//! [`symbi_tasking::AbtMutex`], so the waiting handlers show up as
//! *blocked ULTs* when SYMBIOSYS samples the tasking layer.

use super::{KvBackend, StorageCost};
use std::collections::BTreeMap;
use symbi_tasking::AbtMutex;

/// See module docs.
pub struct MapBackend {
    tree: AbtMutex<BTreeMap<Vec<u8>, Vec<u8>>>,
    cost: StorageCost,
}

impl MapBackend {
    /// Create an empty map backend with the given storage cost.
    pub fn new(cost: StorageCost) -> Self {
        MapBackend {
            tree: AbtMutex::new(BTreeMap::new()),
            cost,
        }
    }
}

impl KvBackend for MapBackend {
    fn kind(&self) -> &'static str {
        "map"
    }

    // Sanctioned simulated-cost caller: this backend *is* the sleep
    // simulation; real I/O lives in the ldb-disk backend.
    #[allow(deprecated)]
    fn put(&self, key: Vec<u8>, value: Vec<u8>) {
        let mut tree = self.tree.lock();
        // Cost charged while holding the lock: no parallel insertions.
        self.cost.charge(1);
        tree.insert(key, value);
    }

    #[allow(deprecated)]
    fn put_multi(&self, pairs: Vec<(Vec<u8>, Vec<u8>)>) {
        let mut tree = self.tree.lock();
        self.cost.charge(pairs.len());
        for (k, v) in pairs {
            tree.insert(k, v);
        }
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.tree.lock().get(key).cloned()
    }

    fn erase(&self, key: &[u8]) -> bool {
        self.tree.lock().remove(key).is_some()
    }

    fn len(&self) -> usize {
        self.tree.lock().len()
    }

    fn list_keyvals(&self, start: &[u8], max: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.tree
            .lock()
            .range(start.to_vec()..)
            .take(max)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn supports_concurrent_writes(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::backend_contract as contract;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn contract_basic() {
        contract::basic_roundtrip(&MapBackend::new(StorageCost::free()));
    }

    #[test]
    fn contract_put_multi() {
        contract::put_multi_inserts_all(&MapBackend::new(StorageCost::free()));
    }

    #[test]
    fn contract_list() {
        contract::list_is_ordered_and_bounded(&MapBackend::new(StorageCost::free()));
    }

    #[test]
    fn contract_concurrent() {
        contract::concurrent_puts_are_linearizable(Arc::new(MapBackend::new(StorageCost::free())));
    }

    #[test]
    fn writes_serialize_under_cost() {
        // With a 5ms per-op cost and 4 concurrent single-key puts, the
        // single lock forces ≥ 20ms wall time — the defining behaviour.
        let b = Arc::new(MapBackend::new(StorageCost {
            per_op: Duration::from_millis(5),
            per_key: Duration::ZERO,
        }));
        let start = Instant::now();
        let handles: Vec<_> = (0..4u8)
            .map(|i| {
                let b = b.clone();
                std::thread::spawn(move || b.put(vec![i], vec![i]))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            start.elapsed() >= Duration::from_millis(19),
            "map backend must not insert in parallel"
        );
    }
}
