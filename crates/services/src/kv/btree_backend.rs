//! The `bdb` backend: a BerkeleyDB-like B-tree behind a readers-writer
//! lock — concurrent reads, exclusive (serialized) writes.

use super::{KvBackend, StorageCost};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// See module docs.
pub struct BTreeBackend {
    tree: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
    cost: StorageCost,
}

impl BTreeBackend {
    /// Create an empty backend with the given storage cost.
    pub fn new(cost: StorageCost) -> Self {
        BTreeBackend {
            tree: RwLock::new(BTreeMap::new()),
            cost,
        }
    }
}

impl KvBackend for BTreeBackend {
    fn kind(&self) -> &'static str {
        "bdb"
    }

    // Sanctioned simulated-cost caller: this backend *is* the sleep
    // simulation; real I/O lives in the ldb-disk backend.
    #[allow(deprecated)]
    fn put(&self, key: Vec<u8>, value: Vec<u8>) {
        let mut tree = self.tree.write();
        self.cost.charge(1);
        tree.insert(key, value);
    }

    #[allow(deprecated)]
    fn put_multi(&self, pairs: Vec<(Vec<u8>, Vec<u8>)>) {
        let mut tree = self.tree.write();
        self.cost.charge(pairs.len());
        for (k, v) in pairs {
            tree.insert(k, v);
        }
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.tree.read().get(key).cloned()
    }

    fn erase(&self, key: &[u8]) -> bool {
        self.tree.write().remove(key).is_some()
    }

    fn len(&self) -> usize {
        self.tree.read().len()
    }

    fn list_keyvals(&self, start: &[u8], max: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.tree
            .read()
            .range(start.to_vec()..)
            .take(max)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn supports_concurrent_writes(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::backend_contract as contract;
    use std::sync::Arc;

    #[test]
    fn contract_basic() {
        contract::basic_roundtrip(&BTreeBackend::new(StorageCost::free()));
    }

    #[test]
    fn contract_put_multi() {
        contract::put_multi_inserts_all(&BTreeBackend::new(StorageCost::free()));
    }

    #[test]
    fn contract_list() {
        contract::list_is_ordered_and_bounded(&BTreeBackend::new(StorageCost::free()));
    }

    #[test]
    fn contract_concurrent() {
        contract::concurrent_puts_are_linearizable(Arc::new(
            BTreeBackend::new(StorageCost::free()),
        ));
    }

    #[test]
    fn concurrent_reads_do_not_block() {
        let b = Arc::new(BTreeBackend::new(StorageCost::free()));
        b.put(b"k".to_vec(), b"v".to_vec());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(b.get(b"k"), Some(b"v".to_vec()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
