//! Key-value backends for SDSKV.
//!
//! The paper's HEPnOS study uses SDSKV's `map` backend, whose defining
//! property drives the Figure 10 case study: it is **not capable of
//! parallel insertions** — one mutex guards the whole tree, so bursts of
//! `sdskv_put_packed` handlers serialize on it. The `ldb` (LevelDB-like)
//! and `bdb` (BerkeleyDB-like) stand-ins are provided for completeness
//! and for ablation benchmarks.
//!
//! The simulated backends charge a configurable **storage cost** per
//! operation (base + per-key), slept while holding whatever lock the
//! backend actually holds. On a single-core harness this is what makes
//! backend parallelism (or its absence) observable. The `ldb-disk`
//! backend ([`StoreBackend`]) replaces the nap with a real durable
//! engine (`symbi-store`: WAL + group commit + compaction + recovery);
//! choose between the two worlds with [`BackendMode`].

mod btree_backend;
mod lsm_backend;
mod map_backend;
mod store_backend;

pub use btree_backend::BTreeBackend;
pub use lsm_backend::LsmBackend;
pub use map_backend::MapBackend;
pub use store_backend::StoreBackend;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cost model for simulated storage work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageCost {
    /// Fixed cost per mutating operation (covers the per-RPC overhead the
    /// paper attributes to each `sdskv_put_packed`).
    pub per_op: Duration,
    /// Additional cost per key inserted.
    pub per_key: Duration,
}

impl StorageCost {
    /// Zero-cost model for unit tests.
    pub fn free() -> Self {
        StorageCost {
            per_op: Duration::ZERO,
            per_key: Duration::ZERO,
        }
    }

    /// The default lock-held cost used in experiments: a small
    /// per-operation constant plus a per-key component (the map backend
    /// holds its single lock across this).
    pub fn default_experiment() -> Self {
        StorageCost {
            per_op: Duration::from_micros(30),
            per_key: Duration::from_micros(2),
        }
    }

    /// Total cost of inserting `keys` keys in one operation.
    pub fn of(&self, keys: usize) -> Duration {
        self.per_op + self.per_key * keys as u32
    }

    /// Sleep-simulate the storage work for `keys` keys.
    ///
    /// This is the legacy simulation path: new scenarios should run real
    /// I/O through [`BackendMode::Durable`] and the `ldb-disk` backend,
    /// keeping the nap as an explicit opt-in via
    /// [`BackendMode::Simulated`]. Only the simulated backends may call
    /// this (each call site carries an `#[allow(deprecated)]`).
    #[deprecated(
        note = "sleep-simulated storage; prefer BackendMode::Durable with the ldb-disk backend"
    )]
    pub(crate) fn charge(&self, keys: usize) {
        let d = self.of(keys);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Whether a database runs against simulated storage latency or the real
/// durable engine — the explicit opt-in demanded by the migration away
/// from sleep-simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendMode {
    /// Sleep-simulated storage cost (the legacy world; the backend
    /// charges `StorageCost::charge` per op). Ignored by `ldb-disk`.
    Simulated(StorageCost),
    /// Real durable storage rooted at this directory (only meaningful for
    /// [`BackendKind::LdbDisk`]; the simulated kinds fall back to a free
    /// cost model since they have nothing to persist).
    Durable(PathBuf),
}

impl BackendMode {
    /// Simulated mode with a zero cost model — the default for tests.
    pub fn simulated_free() -> Self {
        BackendMode::Simulated(StorageCost::free())
    }

    /// The cost model a *simulated* backend should charge under this mode.
    pub fn cost(&self) -> StorageCost {
        match self {
            BackendMode::Simulated(cost) => *cost,
            BackendMode::Durable(_) => StorageCost::free(),
        }
    }

    /// Per-database mode: durable databases get their own subdirectory so
    /// one provider's databases never share a WAL.
    pub fn for_database(&self, idx: usize) -> BackendMode {
        match self {
            BackendMode::Durable(dir) => BackendMode::Durable(dir.join(format!("db-{idx}"))),
            sim => sim.clone(),
        }
    }
}

/// Which backend implementation a database uses (SDSKV's backend types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// In-memory map with a single lock (no parallel insertions).
    Map,
    /// LevelDB-like sharded store (parallel insertions across shards).
    Ldb,
    /// BerkeleyDB-like B-tree behind a readers-writer lock.
    Bdb,
    /// symbi-store: real durable log-structured engine on disk (WAL with
    /// group commit, memtable + segments, compaction, crash recovery).
    LdbDisk,
}

static EPHEMERAL_STORE_SEQ: AtomicU64 = AtomicU64::new(0);

impl BackendKind {
    /// Instantiate the backend with the given *simulated* storage cost.
    ///
    /// Legacy entry point for the sleep-simulated world: equivalent to
    /// `build_with(&BackendMode::Simulated(cost), None)`. An `LdbDisk`
    /// backend built this way lands in a throwaway temp directory (it has
    /// no configured home), so prefer [`BackendKind::build_with`] with
    /// [`BackendMode::Durable`] anywhere durability matters.
    pub fn build(self, cost: StorageCost) -> Arc<dyn KvBackend> {
        self.build_with(&BackendMode::Simulated(cost), None)
    }

    /// Instantiate the backend under an explicit [`BackendMode`], with an
    /// optional span sink for durability-interval attribution (only the
    /// `ldb-disk` backend reports spans).
    ///
    /// Panics if the durable engine cannot open its directory — a server
    /// that cannot recover its own store must fail loudly, not serve an
    /// empty database.
    pub fn build_with(
        self,
        mode: &BackendMode,
        sink: Option<symbi_store::SpanSink>,
    ) -> Arc<dyn KvBackend> {
        match self {
            BackendKind::Map => Arc::new(MapBackend::new(mode.cost())),
            BackendKind::Ldb => Arc::new(LsmBackend::new(mode.cost(), 8)),
            BackendKind::Bdb => Arc::new(BTreeBackend::new(mode.cost())),
            BackendKind::LdbDisk => {
                let dir = match mode {
                    BackendMode::Durable(dir) => dir.clone(),
                    BackendMode::Simulated(_) => std::env::temp_dir().join(format!(
                        "symbi-store-ephemeral-{}-{}",
                        std::process::id(),
                        EPHEMERAL_STORE_SEQ.fetch_add(1, Ordering::Relaxed)
                    )),
                };
                let backend = StoreBackend::open(&dir, sink)
                    .unwrap_or_else(|e| panic!("symbi-store open {}: {e}", dir.display()));
                Arc::new(backend)
            }
        }
    }

    /// Parse an SDSKV backend name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "map" => Some(BackendKind::Map),
            "ldb" | "leveldb" => Some(BackendKind::Ldb),
            "bdb" | "berkeleydb" => Some(BackendKind::Bdb),
            "ldb-disk" | "store" => Some(BackendKind::LdbDisk),
            _ => None,
        }
    }
}

/// The backend interface SDSKV databases are built on.
pub trait KvBackend: Send + Sync {
    /// Backend type name (`map` / `ldb` / `bdb`).
    fn kind(&self) -> &'static str;
    /// Insert or overwrite one pair.
    fn put(&self, key: Vec<u8>, value: Vec<u8>);
    /// Insert a packed list of pairs in one storage operation.
    fn put_multi(&self, pairs: Vec<(Vec<u8>, Vec<u8>)>);
    /// Look up a key.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;
    /// Remove a key; returns whether it existed.
    fn erase(&self, key: &[u8]) -> bool;
    /// Number of stored pairs.
    fn len(&self) -> usize;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Up to `max` pairs with keys ≥ `start`, in key order.
    fn list_keyvals(&self, start: &[u8], max: usize) -> Vec<(Vec<u8>, Vec<u8>)>;
    /// Whether concurrent `put` operations can proceed in parallel.
    fn supports_concurrent_writes(&self) -> bool;
    /// Durability barrier: make every acknowledged write durable (a group
    /// commit fsync on the `ldb-disk` backend). No-op for the in-memory
    /// simulated backends, which have nothing to make durable.
    fn flush(&self) {}
    /// Engine counters, if this backend is a durable symbi-store; the
    /// provider aggregates these into the `symbi_store_*` telemetry
    /// families.
    fn store_stats(&self) -> Option<symbi_store::StatsSnapshot> {
        None
    }
}

#[cfg(test)]
pub(crate) mod backend_contract {
    //! A contract test suite every backend must pass, invoked from each
    //! backend's test module.
    use super::*;

    pub(crate) fn basic_roundtrip(b: &dyn KvBackend) {
        assert!(b.is_empty());
        b.put(b"k1".to_vec(), b"v1".to_vec());
        b.put(b"k2".to_vec(), b"v2".to_vec());
        assert_eq!(b.get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(b.get(b"missing"), None);
        assert_eq!(b.len(), 2);
        b.put(b"k1".to_vec(), b"v1b".to_vec());
        assert_eq!(b.get(b"k1"), Some(b"v1b".to_vec()));
        assert_eq!(b.len(), 2, "overwrite must not grow the store");
        assert!(b.erase(b"k1"));
        assert!(!b.erase(b"k1"));
        assert_eq!(b.len(), 1);
    }

    pub(crate) fn put_multi_inserts_all(b: &dyn KvBackend) {
        let pairs: Vec<_> = (0..100u32)
            .map(|i| (format!("key{i:03}").into_bytes(), i.to_le_bytes().to_vec()))
            .collect();
        b.put_multi(pairs);
        assert_eq!(b.len(), 100);
        assert_eq!(b.get(b"key042"), Some(42u32.to_le_bytes().to_vec()));
    }

    pub(crate) fn list_is_ordered_and_bounded(b: &dyn KvBackend) {
        for i in (0..10u8).rev() {
            b.put(vec![i], vec![i * 2]);
        }
        let listed = b.list_keyvals(&[3], 4);
        assert_eq!(listed.len(), 4);
        assert_eq!(listed[0].0, vec![3]);
        assert_eq!(listed[3].0, vec![6]);
        let all = b.list_keyvals(&[], 100);
        assert_eq!(all.len(), 10);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    pub(crate) fn concurrent_puts_are_linearizable(b: Arc<dyn KvBackend>) {
        let handles: Vec<_> = (0..4)
            .map(|t: u32| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for i in 0..250u32 {
                        let k = format!("t{t}-k{i}").into_bytes();
                        b.put(k, vec![t as u8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.len(), 1000);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_cost_arithmetic() {
        let c = StorageCost {
            per_op: Duration::from_micros(100),
            per_key: Duration::from_micros(2),
        };
        assert_eq!(c.of(0), Duration::from_micros(100));
        assert_eq!(c.of(50), Duration::from_micros(200));
        assert_eq!(StorageCost::free().of(1000), Duration::ZERO);
    }

    #[test]
    fn backend_kind_parse() {
        assert_eq!(BackendKind::parse("map"), Some(BackendKind::Map));
        assert_eq!(BackendKind::parse("leveldb"), Some(BackendKind::Ldb));
        assert_eq!(BackendKind::parse("bdb"), Some(BackendKind::Bdb));
        assert_eq!(BackendKind::parse("ldb-disk"), Some(BackendKind::LdbDisk));
        assert_eq!(BackendKind::parse("rocksdb"), None);
    }

    #[test]
    fn build_produces_right_kind() {
        assert_eq!(BackendKind::Map.build(StorageCost::free()).kind(), "map");
        assert_eq!(BackendKind::Ldb.build(StorageCost::free()).kind(), "ldb");
        assert_eq!(BackendKind::Bdb.build(StorageCost::free()).kind(), "bdb");
        // LdbDisk under Simulated mode lands in a throwaway temp dir —
        // lenient by design so ablation benches can instantiate all kinds.
        assert_eq!(
            BackendKind::LdbDisk.build(StorageCost::free()).kind(),
            "ldb-disk"
        );
    }

    #[test]
    fn map_backend_is_serial_others_differ() {
        assert!(!BackendKind::Map
            .build(StorageCost::free())
            .supports_concurrent_writes());
        assert!(BackendKind::Ldb
            .build(StorageCost::free())
            .supports_concurrent_writes());
        assert!(BackendKind::LdbDisk
            .build(StorageCost::free())
            .supports_concurrent_writes());
    }

    #[test]
    fn backend_mode_cost_and_per_database_split() {
        let sim = BackendMode::Simulated(StorageCost::default_experiment());
        assert_eq!(sim.cost(), StorageCost::default_experiment());
        assert_eq!(sim.for_database(3), sim);
        let durable = BackendMode::Durable(PathBuf::from("/data/store"));
        assert_eq!(durable.cost(), StorageCost::free());
        assert_eq!(
            durable.for_database(2),
            BackendMode::Durable(PathBuf::from("/data/store/db-2"))
        );
    }

    #[test]
    fn simulated_backends_ignore_flush_and_report_no_store_stats() {
        let b = BackendKind::Map.build(StorageCost::free());
        b.put(b"k".to_vec(), b"v".to_vec());
        b.flush(); // must be a harmless no-op
        assert!(b.store_stats().is_none());
    }
}
