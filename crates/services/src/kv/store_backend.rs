//! The `ldb-disk` backend: SDSKV databases on the real durable engine.
//!
//! Every mutation is fsync-acknowledged by `symbi-store` before the RPC
//! handler responds, so an SDSKV ack is a durability guarantee — the
//! property the kill-mid-write drills in `tests/store_recovery.rs` verify.
//! `KvBackend` has no error channel (the simulated backends cannot fail),
//! so a WAL I/O error panics the handler: a server that cannot persist
//! writes must fail loudly rather than silently ack volatile data.

use std::io;
use std::path::Path;

use symbi_store::{LogStore, SpanSink, StatsSnapshot, StoreConfig};

use super::KvBackend;

/// A [`KvBackend`] backed by a [`symbi_store::LogStore`].
pub struct StoreBackend {
    store: LogStore,
}

impl StoreBackend {
    /// Open (running crash recovery) at `dir`, attributing durability
    /// intervals to `sink` when one is given.
    pub fn open(dir: &Path, sink: Option<SpanSink>) -> io::Result<StoreBackend> {
        let mut config = StoreConfig::new(dir);
        if let Some(sink) = sink {
            config = config.with_sink(sink);
        }
        Ok(StoreBackend {
            store: LogStore::open(config)?,
        })
    }

    /// Direct access to the engine (tests, benches).
    pub fn store(&self) -> &LogStore {
        &self.store
    }
}

impl KvBackend for StoreBackend {
    fn kind(&self) -> &'static str {
        "ldb-disk"
    }

    fn put(&self, key: Vec<u8>, value: Vec<u8>) {
        self.store
            .put(&key, &value)
            .expect("symbi-store: WAL append failed");
    }

    fn put_multi(&self, pairs: Vec<(Vec<u8>, Vec<u8>)>) {
        // One WAL record: the packed put is atomic across replay.
        self.store
            .put_batch(&pairs)
            .expect("symbi-store: WAL batch append failed");
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.store.get(key)
    }

    fn erase(&self, key: &[u8]) -> bool {
        self.store
            .erase(key)
            .expect("symbi-store: WAL tombstone append failed")
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn list_keyvals(&self, start: &[u8], max: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.store.list_keyvals(start, max)
    }

    fn supports_concurrent_writes(&self) -> bool {
        // Writers only serialize briefly on the memtable lock and then
        // group-commit; they do not hold a lock across the fsync.
        true
    }

    fn flush(&self) {
        self.store
            .flush()
            .expect("symbi-store: group-commit barrier failed");
    }

    fn store_stats(&self) -> Option<StatsSnapshot> {
        Some(self.store.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::super::backend_contract;
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    static SEQ: AtomicU64 = AtomicU64::new(0);

    struct Scratch(PathBuf);

    impl Scratch {
        fn new() -> Scratch {
            let dir = std::env::temp_dir().join(format!(
                "symbi-store-backend-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn passes_backend_contract() {
        let s = Scratch::new();
        let b = StoreBackend::open(&s.0.join("a"), None).unwrap();
        backend_contract::basic_roundtrip(&b);
        let b = StoreBackend::open(&s.0.join("b"), None).unwrap();
        backend_contract::put_multi_inserts_all(&b);
        let b = StoreBackend::open(&s.0.join("c"), None).unwrap();
        backend_contract::list_is_ordered_and_bounded(&b);
        let b: Arc<dyn KvBackend> = Arc::new(StoreBackend::open(&s.0.join("d"), None).unwrap());
        backend_contract::concurrent_puts_are_linearizable(b);
    }

    #[test]
    fn reopen_recovers_all_acked_writes() {
        let s = Scratch::new();
        {
            let b = StoreBackend::open(&s.0, None).unwrap();
            for i in 0..50u32 {
                b.put(format!("k{i:02}").into_bytes(), i.to_le_bytes().to_vec());
            }
            b.erase(b"k07");
            b.flush();
        }
        let b = StoreBackend::open(&s.0, None).unwrap();
        assert_eq!(b.len(), 49);
        assert_eq!(b.get(b"k07"), None);
        assert_eq!(b.get(b"k42"), Some(42u32.to_le_bytes().to_vec()));
        let stats = b.store_stats().expect("durable backend reports stats");
        assert_eq!(stats.recoveries, 1);
        assert!(stats.replayed_records >= 51);
    }

    #[test]
    fn flush_issues_a_barrier_fsync() {
        let s = Scratch::new();
        let b = StoreBackend::open(&s.0, None).unwrap();
        b.put(b"k".to_vec(), b"v".to_vec());
        let before = b.store_stats().unwrap();
        b.flush();
        let after = b.store_stats().unwrap();
        assert_eq!(after.flush_barriers, before.flush_barriers + 1);
        assert!(after.fsyncs > before.fsyncs);
    }
}
