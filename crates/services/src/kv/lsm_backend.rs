//! The `ldb` backend: a LevelDB-like stand-in that shards the key space
//! across independently locked memtables, so concurrent insertions to
//! different shards proceed in parallel. Used by ablation benchmarks to
//! contrast with the `map` backend's serialized writes.

use super::{KvBackend, StorageCost};
use std::collections::BTreeMap;
use symbi_tasking::AbtMutex;

/// See module docs.
pub struct LsmBackend {
    shards: Vec<AbtMutex<BTreeMap<Vec<u8>, Vec<u8>>>>,
    cost: StorageCost,
}

impl LsmBackend {
    /// Create a backend with `shards` independent memtables.
    pub fn new(cost: StorageCost, shards: usize) -> Self {
        let shards = shards.max(1);
        LsmBackend {
            shards: (0..shards)
                .map(|_| AbtMutex::new(BTreeMap::new()))
                .collect(),
            cost,
        }
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        // FNV-1a over the key, reduced to a shard index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }
}

impl KvBackend for LsmBackend {
    fn kind(&self) -> &'static str {
        "ldb"
    }

    // Sanctioned simulated-cost caller: this backend *is* the sleep
    // simulation; real I/O lives in the ldb-disk backend.
    #[allow(deprecated)]
    fn put(&self, key: Vec<u8>, value: Vec<u8>) {
        let shard = &self.shards[self.shard_of(&key)];
        let mut tree = shard.lock();
        self.cost.charge(1);
        tree.insert(key, value);
    }

    #[allow(deprecated)]
    fn put_multi(&self, pairs: Vec<(Vec<u8>, Vec<u8>)>) {
        // Group by shard so each shard lock is taken once; the cost is
        // charged per shard-group, reflecting LevelDB's batched writes.
        let mut grouped: Vec<Vec<(Vec<u8>, Vec<u8>)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (k, v) in pairs {
            let s = self.shard_of(&k);
            grouped[s].push((k, v));
        }
        for (idx, group) in grouped.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut tree = self.shards[idx].lock();
            self.cost.charge(group.len());
            for (k, v) in group {
                tree.insert(k, v);
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shards[self.shard_of(key)].lock().get(key).cloned()
    }

    fn erase(&self, key: &[u8]) -> bool {
        self.shards[self.shard_of(key)].lock().remove(key).is_some()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    fn list_keyvals(&self, start: &[u8], max: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        // Merge across shards (each shard is ordered; collect + sort).
        let mut all: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for shard in &self.shards {
            let tree = shard.lock();
            for (k, v) in tree.range(start.to_vec()..) {
                all.push((k.clone(), v.clone()));
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all.truncate(max);
        all
    }

    fn supports_concurrent_writes(&self) -> bool {
        self.shards.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::backend_contract as contract;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn contract_basic() {
        contract::basic_roundtrip(&LsmBackend::new(StorageCost::free(), 8));
    }

    #[test]
    fn contract_put_multi() {
        contract::put_multi_inserts_all(&LsmBackend::new(StorageCost::free(), 8));
    }

    #[test]
    fn contract_list() {
        contract::list_is_ordered_and_bounded(&LsmBackend::new(StorageCost::free(), 4));
    }

    #[test]
    fn contract_concurrent() {
        contract::concurrent_puts_are_linearizable(Arc::new(LsmBackend::new(
            StorageCost::free(),
            8,
        )));
    }

    #[test]
    fn single_shard_degenerates_to_serial() {
        let b = LsmBackend::new(StorageCost::free(), 1);
        assert!(!b.supports_concurrent_writes());
        contract::basic_roundtrip(&b);
    }

    #[test]
    fn writes_to_different_shards_parallelize() {
        // With 16 shards and 5ms per-op cost, 4 concurrent puts to
        // distinct keys should overlap: wall time well under the 20ms a
        // serial backend needs. (Keys chosen to land in distinct shards.)
        let b = Arc::new(LsmBackend::new(
            StorageCost {
                per_op: Duration::from_millis(5),
                per_key: Duration::ZERO,
            },
            64,
        ));
        // Find 4 keys in 4 distinct shards.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for i in 0..255u8 {
            let k = vec![i];
            if seen.insert(b.shard_of(&k)) {
                keys.push(k);
                if keys.len() == 4 {
                    break;
                }
            }
        }
        let start = Instant::now();
        let handles: Vec<_> = keys
            .into_iter()
            .map(|k| {
                let b = b.clone();
                std::thread::spawn(move || b.put(k, vec![0]))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Sleeps overlap even on one core; allow generous slack.
        assert!(
            start.elapsed() < Duration::from_millis(18),
            "sharded backend should overlap storage costs, took {:?}",
            start.elapsed()
        );
    }
}
