//! SDSKV — the Mochi key-value microservice ("a microservice enabling
//! RPC-based access to multiple key-value backends", paper §III-A).
//!
//! A provider hosts one or more *databases* (the Table IV *Databases*
//! knob), each backed by a [`crate::kv::KvBackend`]. The
//! `sdskv_put_packed` RPC — the dominant callpath of the HEPnOS study —
//! ships a packed key-value list descriptor and has the target pull the
//! content through Mercury's bulk interface, exactly as described in
//! §V-C1.

use crate::kv::{BackendKind, BackendMode, KvBackend};
use bytes::Bytes;
use std::sync::Arc;
use symbi_core::telemetry::MetricPoint;
use symbi_fabric::Addr;
use symbi_margo::{AsyncRpc, MargoError, MargoInstance, RpcOptions};
use symbi_mercury::{CodecError, Decoder, Encoder, RdmaRef, Wire};
use symbi_store::StatsSnapshot;

/// Key/value pairs as moved by packed puts and range listings.
pub type KvPairs = Vec<(Vec<u8>, Vec<u8>)>;

/// Configuration of an SDSKV provider.
#[derive(Debug, Clone)]
pub struct SdskvSpec {
    /// Number of databases hosted by the provider.
    pub num_databases: usize,
    /// Backend implementation for every database.
    pub backend: BackendKind,
    /// Storage mode for every database: sleep-simulated cost (charged
    /// while holding the backend lock — the map backend's serial
    /// insertion) or a real durable store directory. Durable databases
    /// get per-database subdirectories via [`BackendMode::for_database`].
    pub mode: BackendMode,
    /// Simulated per-RPC handler work charged *outside* any lock
    /// (request validation, buffer handling, allocation) — this part
    /// scales with the number of execution streams, which is what makes
    /// the Table IV *Threads (ESs)* knob matter.
    pub handler_cost: std::time::Duration,
    /// Additional unlocked handler work per key in a packed put.
    pub handler_cost_per_key: std::time::Duration,
}

impl Default for SdskvSpec {
    fn default() -> Self {
        SdskvSpec {
            num_databases: 1,
            backend: BackendKind::Map,
            mode: BackendMode::simulated_free(),
            handler_cost: std::time::Duration::ZERO,
            handler_cost_per_key: std::time::Duration::ZERO,
        }
    }
}

/// Arguments of `sdskv_put_rpc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutArgs {
    /// Target database index.
    pub db: u32,
    /// Key bytes.
    pub key: Vec<u8>,
    /// Value bytes.
    pub value: Vec<u8>,
}

impl Wire for PutArgs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.db);
        enc.put_bytes(&self.key);
        enc.put_bytes(&self.value);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(PutArgs {
            db: dec.get_u32()?,
            key: dec.get_bytes()?.to_vec(),
            value: dec.get_bytes()?.to_vec(),
        })
    }
}

/// Arguments of `sdskv_get_rpc` / `sdskv_erase_rpc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyArgs {
    /// Target database index.
    pub db: u32,
    /// Key bytes.
    pub key: Vec<u8>,
}

impl Wire for KeyArgs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.db);
        enc.put_bytes(&self.key);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(KeyArgs {
            db: dec.get_u32()?,
            key: dec.get_bytes()?.to_vec(),
        })
    }
}

/// Response of `sdskv_get_rpc`: an optional value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetResp {
    /// The value, if the key existed.
    pub value: Option<Vec<u8>>,
}

impl Wire for GetResp {
    fn encode(&self, enc: &mut Encoder) {
        match &self.value {
            Some(v) => {
                enc.put_u8(1);
                enc.put_bytes(v);
            }
            None => {
                enc.put_u8(0);
            }
        }
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let value = match dec.get_u8()? {
            0 => None,
            1 => Some(dec.get_bytes()?.to_vec()),
            _ => return Err(CodecError::Invalid("option flag")),
        };
        Ok(GetResp { value })
    }
}

/// Arguments of `sdskv_put_packed`: the packed key-value content stays in
/// origin memory; the target pulls it through the bulk interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutPackedArgs {
    /// Target database index.
    pub db: u32,
    /// Number of pairs in the packed buffer.
    pub count: u32,
    /// Bulk descriptor of the packed buffer.
    pub bulk: RdmaRef,
}

impl Wire for PutPackedArgs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.db);
        enc.put_u32(self.count);
        self.bulk.encode(enc);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(PutPackedArgs {
            db: dec.get_u32()?,
            count: dec.get_u32()?,
            bulk: RdmaRef::decode(dec)?,
        })
    }
}

/// Arguments of `sdskv_list_keyvals_rpc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListArgs {
    /// Target database index.
    pub db: u32,
    /// Smallest key to return.
    pub start: Vec<u8>,
    /// Maximum pairs to return.
    pub max: u32,
}

impl Wire for ListArgs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.db);
        enc.put_bytes(&self.start);
        enc.put_u32(self.max);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(ListArgs {
            db: dec.get_u32()?,
            start: dec.get_bytes()?.to_vec(),
            max: dec.get_u32()?,
        })
    }
}

/// The server-side SDSKV provider.
pub struct SdskvProvider {
    databases: Vec<Arc<dyn KvBackend>>,
}

/// Simulated per-RPC handler work, charged outside any backend lock on
/// the handler's execution stream, with a deterministic ±50% jitter
/// keyed off the request (identical costs would complete requests in
/// artificial lockstep waves).
fn charge_handler_cost(work: std::time::Duration, salt: &[u8]) {
    if work.is_zero() {
        return;
    }
    let h = crate::workload::fnv64(salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let factor = 0.5 + (h % 1024) as f64 / 1024.0;
    std::thread::sleep(work.mul_f64(factor));
}

/// Emit the `symbi_store_*` PVAR families from an aggregated snapshot.
/// One place defines the family set; the Prometheus curated help and the
/// docs in DESIGN.md §19 list the same names.
fn emit_store_metrics(s: &StatsSnapshot, out: &mut Vec<MetricPoint>) {
    out.push(MetricPoint::counter(
        "symbi_store_wal_records_total",
        s.wal_records,
    ));
    out.push(MetricPoint::counter(
        "symbi_store_wal_bytes_total",
        s.wal_bytes,
    ));
    out.push(MetricPoint::counter("symbi_store_fsyncs_total", s.fsyncs));
    out.push(MetricPoint::counter(
        "symbi_store_group_commits_total",
        s.group_commits,
    ));
    out.push(MetricPoint::counter(
        "symbi_store_group_committed_records_total",
        s.group_committed_records,
    ));
    out.push(MetricPoint::gauge(
        "symbi_store_group_commit_mean",
        s.mean_group_size(),
    ));
    out.push(MetricPoint::counter(
        "symbi_store_flush_barriers_total",
        s.flush_barriers,
    ));
    out.push(MetricPoint::counter(
        "symbi_store_memtable_flushes_total",
        s.memtable_flushes,
    ));
    out.push(MetricPoint::counter(
        "symbi_store_compactions_total",
        s.compactions,
    ));
    out.push(MetricPoint::counter(
        "symbi_store_compaction_ms_total",
        s.compaction_ms,
    ));
    out.push(MetricPoint::counter(
        "symbi_store_recoveries_total",
        s.recoveries,
    ));
    out.push(MetricPoint::gauge(
        "symbi_store_recovery_ms",
        s.recovery_ms as f64,
    ));
    out.push(MetricPoint::counter(
        "symbi_store_replayed_records_total",
        s.replayed_records,
    ));
    out.push(MetricPoint::counter(
        "symbi_store_torn_tail_truncations_total",
        s.torn_tail_truncations,
    ));
    out.push(MetricPoint::gauge(
        "symbi_store_memtable_keys",
        s.memtable_keys as f64,
    ));
    out.push(MetricPoint::gauge(
        "symbi_store_memtable_bytes",
        s.memtable_bytes as f64,
    ));
    out.push(MetricPoint::gauge(
        "symbi_store_segments",
        s.segments as f64,
    ));
}

impl SdskvProvider {
    /// Build the provider and register its RPCs on a Margo server, with
    /// handlers running in the server's primary pool.
    pub fn attach(margo: &MargoInstance, spec: SdskvSpec) -> Arc<SdskvProvider> {
        let pool = margo.primary_pool().clone();
        Self::attach_in_pool(margo, spec, &pool)
    }

    /// Build the provider with handlers running in a dedicated pool
    /// (Margo's provider-pool feature; required when another provider on
    /// the same instance calls into this one, as Mobject does).
    pub fn attach_in_pool(
        margo: &MargoInstance,
        spec: SdskvSpec,
        pool: &symbi_tasking::Pool,
    ) -> Arc<SdskvProvider> {
        // Durable databases attribute their WAL/fsync/compaction/recovery
        // intervals as spans on this server's tracer.
        let sink = crate::store_spans::store_span_sink(margo);
        let provider = Arc::new(SdskvProvider {
            databases: (0..spec.num_databases.max(1))
                .map(|i| {
                    spec.backend
                        .build_with(&spec.mode.for_database(i), Some(sink.clone()))
                })
                .collect(),
        });

        if provider.databases.iter().any(|d| d.store_stats().is_some()) {
            let p = provider.clone();
            margo.telemetry().register_source("store", move |out| {
                let mut agg = StatsSnapshot::default();
                for db in &p.databases {
                    if let Some(s) = db.store_stats() {
                        agg.merge(&s);
                    }
                }
                emit_store_metrics(&agg, out);
            });
        }

        let p = provider.clone();
        let cost = spec.handler_cost;
        margo.register_fn_in_pool("sdskv_put_rpc", pool, move |_m, args: PutArgs| {
            charge_handler_cost(cost, &args.key);
            let db = p.database(args.db)?;
            db.put(args.key, args.value);
            Ok::<u32, String>(1)
        });

        let p = provider.clone();
        let cost = spec.handler_cost;
        margo.register_fn_in_pool("sdskv_get_rpc", pool, move |_m, args: KeyArgs| {
            charge_handler_cost(cost, &args.key);
            let db = p.database(args.db)?;
            Ok::<GetResp, String>(GetResp {
                value: db.get(&args.key),
            })
        });

        let p = provider.clone();
        let cost = spec.handler_cost;
        margo.register_fn_in_pool("sdskv_erase_rpc", pool, move |_m, args: KeyArgs| {
            charge_handler_cost(cost, &args.key);
            let db = p.database(args.db)?;
            Ok::<u32, String>(db.erase(&args.key) as u32)
        });

        let p = provider.clone();
        margo.register_fn_in_pool("sdskv_length_rpc", pool, move |_m, db: u32| {
            let db = p.database(db)?;
            Ok::<u64, String>(db.len() as u64)
        });

        let p = provider.clone();
        margo.register_fn_in_pool("sdskv_flush_rpc", pool, move |_m, db: u32| {
            let db = p.database(db)?;
            db.flush();
            Ok::<u32, String>(1)
        });

        let p = provider.clone();
        let cost = spec.handler_cost;
        let cost_per_key = spec.handler_cost_per_key;
        margo.register_fn_in_pool("sdskv_list_keyvals_rpc", pool, move |_m, args: ListArgs| {
            charge_handler_cost(cost + cost_per_key * args.max, &args.start);
            let db = p.database(args.db)?;
            Ok::<Vec<(Vec<u8>, Vec<u8>)>, String>(db.list_keyvals(&args.start, args.max as usize))
        });

        let p = provider.clone();
        let handler_cost = spec.handler_cost;
        let handler_cost_per_key = spec.handler_cost_per_key;
        margo.register_fn_in_pool(
            "sdskv_put_packed",
            pool,
            move |m: &MargoInstance, args: PutPackedArgs| {
                let db = p.database(args.db)?;
                // Per-RPC handler work, outside any backend lock, with a
                // deterministic ±50% jitter (real service times vary with
                // record content; identical costs would complete requests
                // in artificial lockstep waves).
                let work = handler_cost + handler_cost_per_key * args.count;
                if !work.is_zero() {
                    let h = args.bulk.key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let factor = 0.5 + (h % 1024) as f64 / 1024.0;
                    std::thread::sleep(work.mul_f64(factor));
                }
                // The target issues a bulk pull for the key-value content
                // (paper §V-C1: "this RPC call typically results in the
                // target issuing a bulk data transfer").
                let packed = m
                    .hg()
                    .bulk_pull(args.bulk, 0, args.bulk.len as usize)
                    .map_err(|e| e.to_string())?;
                let pairs: Vec<(Vec<u8>, Vec<u8>)> =
                    Wire::from_bytes(packed).map_err(|e| e.to_string())?;
                if pairs.len() != args.count as usize {
                    return Err(format!(
                        "packed count mismatch: header {} vs payload {}",
                        args.count,
                        pairs.len()
                    ));
                }
                let n = pairs.len() as u32;
                db.put_multi(pairs);
                Ok::<u32, String>(n)
            },
        );

        provider
    }

    fn database(&self, idx: u32) -> Result<&Arc<dyn KvBackend>, String> {
        self.databases
            .get(idx as usize)
            .ok_or_else(|| format!("no database {idx} (have {})", self.databases.len()))
    }

    /// Number of databases hosted.
    pub fn num_databases(&self) -> usize {
        self.databases.len()
    }

    /// Total pairs stored across all databases.
    pub fn total_len(&self) -> usize {
        self.databases.iter().map(|d| d.len()).sum()
    }

    /// Direct (test/verification) access to one database.
    pub fn db(&self, idx: usize) -> Option<&Arc<dyn KvBackend>> {
        self.databases.get(idx)
    }
}

/// An in-flight `sdskv_put_packed`, holding the bulk registration alive
/// until completion.
pub struct PendingPutPacked {
    rpc: AsyncRpc,
    margo: MargoInstance,
    bulk: RdmaRef,
    _packed: Arc<Vec<u8>>,
}

impl PendingPutPacked {
    /// Wait for the put to complete; frees the bulk region.
    pub fn wait(self) -> Result<u32, MargoError> {
        let res = self.rpc.wait_decode::<u32>();
        self.margo.hg().bulk_free(self.bulk);
        res
    }
}

/// Client-side SDSKV API.
#[derive(Clone)]
pub struct SdskvClient {
    margo: MargoInstance,
    addr: Addr,
    options: RpcOptions,
}

impl SdskvClient {
    /// Connect a client handle to a provider address.
    pub fn new(margo: MargoInstance, addr: Addr) -> Self {
        SdskvClient {
            margo,
            addr,
            options: RpcOptions::default(),
        }
    }

    /// Apply an [`RpcOptions`] (deadline / retry policy) to every RPC
    /// this client issues.
    #[must_use]
    pub fn with_options(mut self, options: RpcOptions) -> Self {
        self.options = options;
        self
    }

    /// The provider address this client talks to.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Store one pair.
    pub fn put(&self, db: u32, key: Vec<u8>, value: Vec<u8>) -> Result<(), MargoError> {
        let _: u32 = self.margo.forward_with(
            self.addr,
            "sdskv_put_rpc",
            &PutArgs { db, key, value },
            self.options.clone(),
        )?;
        Ok(())
    }

    /// Fetch one value.
    pub fn get(&self, db: u32, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        let resp: GetResp = self.margo.forward_with(
            self.addr,
            "sdskv_get_rpc",
            &KeyArgs {
                db,
                key: key.to_vec(),
            },
            self.options.clone(),
        )?;
        Ok(resp.value)
    }

    /// Remove one key; returns whether it existed.
    pub fn erase(&self, db: u32, key: &[u8]) -> Result<bool, MargoError> {
        let n: u32 = self.margo.forward_with(
            self.addr,
            "sdskv_erase_rpc",
            &KeyArgs {
                db,
                key: key.to_vec(),
            },
            self.options.clone(),
        )?;
        Ok(n == 1)
    }

    /// Number of pairs in a database.
    pub fn length(&self, db: u32) -> Result<u64, MargoError> {
        self.margo
            .forward_with(self.addr, "sdskv_length_rpc", &db, self.options.clone())
    }

    /// Durability barrier on one database: on the `ldb-disk` backend this
    /// joins a group commit and returns only after everything previously
    /// acknowledged is fsync-durable. Simulated backends treat it as a
    /// no-op (they have nothing to persist).
    pub fn flush(&self, db: u32) -> Result<(), MargoError> {
        let _: u32 =
            self.margo
                .forward_with(self.addr, "sdskv_flush_rpc", &db, self.options.clone())?;
        Ok(())
    }

    /// List up to `max` pairs with keys ≥ `start`.
    pub fn list_keyvals(&self, db: u32, start: &[u8], max: u32) -> Result<KvPairs, MargoError> {
        self.margo.forward_with(
            self.addr,
            "sdskv_list_keyvals_rpc",
            &ListArgs {
                db,
                start: start.to_vec(),
                max,
            },
            self.options.clone(),
        )
    }

    /// Store a packed key-value list, blocking until it lands.
    pub fn put_packed(&self, db: u32, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<u32, MargoError> {
        self.put_packed_async(db, pairs).wait()
    }

    /// Issue a packed put asynchronously: the pairs are serialized into a
    /// registered buffer the target pulls via RDMA.
    pub fn put_packed_async(&self, db: u32, pairs: &[(Vec<u8>, Vec<u8>)]) -> PendingPutPacked {
        let packed_vec: Vec<(Vec<u8>, Vec<u8>)> = pairs.to_vec();
        let bytes: Bytes = packed_vec.to_bytes();
        let packed = Arc::new(bytes.to_vec());
        let bulk = self.margo.hg().bulk_expose_read(packed.clone());
        let args = PutPackedArgs {
            db,
            count: pairs.len() as u32,
            bulk,
        };
        let rpc = self.margo.forward_with_async(
            self.addr,
            "sdskv_put_packed",
            &args,
            self.options.clone(),
        );
        PendingPutPacked {
            rpc,
            margo: self.margo.clone(),
            bulk,
            _packed: packed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_fabric::{Fabric, NetworkModel};
    use symbi_margo::MargoConfig;

    fn setup(
        spec: SdskvSpec,
    ) -> (
        MargoInstance,
        MargoInstance,
        Arc<SdskvProvider>,
        SdskvClient,
    ) {
        let f = Fabric::new(NetworkModel::instant());
        let server = MargoInstance::new(f.clone(), MargoConfig::server("sdskv-server", 2));
        let provider = SdskvProvider::attach(&server, spec);
        let client_margo = MargoInstance::new(f, MargoConfig::client("sdskv-client"));
        let client = SdskvClient::new(client_margo.clone(), server.addr());
        (server, client_margo, provider, client)
    }

    #[test]
    fn put_get_erase_roundtrip() {
        let (server, cm, _p, client) = setup(SdskvSpec::default());
        client.put(0, b"k".to_vec(), b"v".to_vec()).unwrap();
        assert_eq!(client.get(0, b"k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(client.get(0, b"other").unwrap(), None);
        assert!(client.erase(0, b"k").unwrap());
        assert!(!client.erase(0, b"k").unwrap());
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn put_packed_bulk_path() {
        let (server, cm, provider, client) = setup(SdskvSpec {
            num_databases: 2,
            ..SdskvSpec::default()
        });
        let pairs: Vec<_> = (0..500u32)
            .map(|i| (format!("evt{i:05}").into_bytes(), vec![(i % 256) as u8; 64]))
            .collect();
        let n = client.put_packed(1, &pairs).unwrap();
        assert_eq!(n, 500);
        assert_eq!(client.length(1).unwrap(), 500);
        assert_eq!(client.length(0).unwrap(), 0);
        assert_eq!(provider.total_len(), 500);
        // Bulk bytes must have moved through the fabric's RDMA path.
        let s = server.hg().fabric().stats();
        assert!(s.rdma_gets >= 1);
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn list_keyvals_ordered() {
        let (server, cm, _p, client) = setup(SdskvSpec::default());
        for i in [3u8, 1, 2] {
            client.put(0, vec![i], vec![i * 10]).unwrap();
        }
        let listed = client.list_keyvals(0, &[], 10).unwrap();
        assert_eq!(
            listed,
            vec![
                (vec![1], vec![10]),
                (vec![2], vec![20]),
                (vec![3], vec![30])
            ]
        );
        let bounded = client.list_keyvals(0, &[2], 1).unwrap();
        assert_eq!(bounded, vec![(vec![2], vec![20])]);
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn invalid_database_is_remote_error() {
        let (server, cm, _p, client) = setup(SdskvSpec::default());
        let res = client.put(9, b"k".to_vec(), b"v".to_vec());
        assert!(matches!(res, Err(MargoError::Remote(_))));
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn concurrent_packed_puts_from_async_api() {
        let (server, cm, provider, client) = setup(SdskvSpec {
            num_databases: 4,
            ..SdskvSpec::default()
        });
        let pending: Vec<_> = (0..4u32)
            .map(|db| {
                let pairs: Vec<_> = (0..50u32)
                    .map(|i| (format!("db{db}-k{i}").into_bytes(), vec![db as u8]))
                    .collect();
                client.put_packed_async(db, &pairs)
            })
            .collect();
        for p in pending {
            assert_eq!(p.wait().unwrap(), 50);
        }
        assert_eq!(provider.total_len(), 200);
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn durable_backend_flush_rpc_and_store_telemetry() {
        let dir = std::env::temp_dir().join(format!(
            "symbi-sdskv-durable-{}-{}",
            std::process::id(),
            symbi_core::now_ns()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (server, cm, provider, client) = setup(SdskvSpec {
            num_databases: 2,
            backend: BackendKind::LdbDisk,
            mode: BackendMode::Durable(dir.clone()),
            ..SdskvSpec::default()
        });
        client.put(0, b"k".to_vec(), b"v".to_vec()).unwrap();
        client.flush(0).unwrap();
        let stats = provider.db(0).unwrap().store_stats().unwrap();
        assert!(stats.flush_barriers >= 1, "flush RPC must reach the WAL");
        assert!(stats.fsyncs >= 1);
        // The databases live in per-index subdirectories of the store dir.
        assert!(dir.join("db-0").is_dir());
        assert!(dir.join("db-1").is_dir());
        // The provider registered a "store" telemetry source aggregating
        // the symbi_store_* families across its databases.
        assert!(server
            .telemetry()
            .source_names()
            .iter()
            .any(|n| n == "store"));
        let snap = server.telemetry().sample();
        for family in [
            "symbi_store_wal_records_total",
            "symbi_store_fsyncs_total",
            "symbi_store_flush_barriers_total",
            "symbi_store_group_commit_mean",
            "symbi_store_segments",
        ] {
            assert!(snap.find(family, &[]).is_some(), "missing family {family}");
        }
        match snap
            .find("symbi_store_wal_records_total", &[])
            .unwrap()
            .point
            .value
        {
            symbi_core::telemetry::MetricValue::Counter(n) => assert!(n >= 1),
            ref v => panic!("wal_records should be a counter, got {v:?}"),
        }
        cm.finalize();
        server.finalize();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulated_backend_flush_is_accepted_and_harmless() {
        let (server, cm, _p, client) = setup(SdskvSpec::default());
        client.put(0, b"k".to_vec(), b"v".to_vec()).unwrap();
        client.flush(0).unwrap();
        assert_eq!(client.get(0, b"k").unwrap(), Some(b"v".to_vec()));
        // No durable database -> no "store" telemetry source.
        assert!(!server
            .telemetry()
            .source_names()
            .iter()
            .any(|n| n == "store"));
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn args_wire_roundtrips() {
        let p = PutArgs {
            db: 3,
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        };
        assert_eq!(PutArgs::from_bytes(p.to_bytes()).unwrap(), p);
        let g = GetResp { value: None };
        assert_eq!(GetResp::from_bytes(g.to_bytes()).unwrap(), g);
        let g2 = GetResp {
            value: Some(vec![1, 2]),
        };
        assert_eq!(GetResp::from_bytes(g2.to_bytes()).unwrap(), g2);
        let pp = PutPackedArgs {
            db: 1,
            count: 9,
            bulk: RdmaRef { key: 4, len: 100 },
        };
        assert_eq!(PutPackedArgs::from_bytes(pp.to_bytes()).unwrap(), pp);
        let l = ListArgs {
            db: 0,
            start: vec![],
            max: 5,
        };
        assert_eq!(ListArgs::from_bytes(l.to_bytes()).unwrap(), l);
    }
}
