//! # symbi-services — Mochi-like microservices and composed data services
//!
//! From-scratch reproductions of every Mochi service the SYMBIOSYS paper
//! uses in its case studies:
//!
//! * [`bake`] — BAKE, the bulk/blob store (RDMA data path).
//! * [`sdskv`] — SDSKV, RPC access to multiple key-value backends
//!   ([`kv`]: `map`, `ldb`, `bdb`), including `sdskv_put_packed`.
//! * [`sonata`] — Sonata, a JSON document store with a filter-query
//!   engine ([`json`] stands in for UnQLite+Jx9).
//! * [`mobject`] — Mobject, the composed RADOS-like object store whose
//!   `write_op` fans out into 12 discrete BAKE/SDSKV RPCs (Figure 5).
//! * [`hepnos`] — HEPnOS, the high-energy-physics event store, with the
//!   Table IV service configurations (C1..C7) and the data-loader client
//!   used throughout §V-C and §VI.
//! * [`ior`] — an ior-like client driver for Mobject (§V-A).
//! * [`deploy`] — symbi-deploy, the multi-process launcher that runs
//!   these services as separate OS processes over a socket transport.
//! * [`scenario`] — typed [`scenario::ScenarioSpec`] load-experiment
//!   descriptions shared by `symbi-load`, `symbi-netd`, and the deploy
//!   manifest.
//! * [`workload`] — the [`workload::WorkloadTarget`] opaque-key face
//!   (put/get/scan/flush) every service client implements, so one load
//!   generator drives any composed service.
//!
//! All clients issue their RPCs through Margo's `forward_with` API and
//! accept an [`symbi_margo::RpcOptions`] (deadline / retry policy) via
//! their `with_options` builder, so fault-injection experiments can make
//! any service call fault-tolerant without new client code.

// This crate is the reference consumer of the redesigned forward API:
// the legacy forward/forward_async methods must not creep back in.
#![deny(deprecated)]

pub mod bake;
pub mod deploy;
pub mod hepnos;
pub mod ior;
pub mod json;
pub mod kv;
pub mod mobject;
pub mod scenario;
pub mod sdskv;
pub mod sonata;
mod store_spans;
pub mod workload;
