//! [`WorkloadTarget`] — one opaque-key face over every composed service.
//!
//! The open-loop load generator (`symbi-load`) drives *services*, not
//! service-specific APIs: an arrival is a `put`, `get`, `scan`, or
//! `flush` over an opaque key, and the target decides what that means —
//! an SDSKV database, a BAKE region, or a HEPnOS event. Implementations
//! here wrap the existing clients:
//!
//! * [`SdskvTarget`] — hashes keys over the provider's databases,
//! * [`BakeTarget`] — one region per key with a client-side key→region
//!   map (BAKE itself is region-addressed),
//! * [`HepnosTarget`] — derives the dataset/run/subrun/event hierarchy
//!   from the key hash and batches through the put-packed path,
//! * [`RoutedTarget`] — consistent-hash fan-out over several targets
//!   (one per server), the multi-server composition the generator uses.
//!
//! All methods take `&self` and implementations are `Send + Sync`, so a
//! fixed pool of virtual-client threads can share one target.

use crate::bake::{BakeClient, RegionId};
use crate::hepnos::{EventKey, HepnosClient};
use crate::sdskv::SdskvClient;
use std::collections::BTreeMap;
use std::sync::Mutex;
use symbi_margo::MargoError;

/// FNV-1a over a byte string — the deterministic key hash every target
/// shares (also how [`EventKey::db_index`] spreads events).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A composed data service visible to the load generator as an opaque
/// key-value surface.
pub trait WorkloadTarget: Send + Sync {
    /// Human-readable description for reports ("sdskv@tcp://…").
    fn describe(&self) -> String;

    /// Write `value` under `key`.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError>;

    /// Point-read `key`; `Ok(None)` when absent (absence is a valid
    /// outcome of the generator's read-before-write races, not an error).
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError>;

    /// Range-read up to `max` entries from `start`, returning how many
    /// the service produced. Targets without a native iterator answer
    /// with their closest honest equivalent (see the impls).
    fn scan(&self, start: &[u8], max: usize) -> Result<usize, MargoError>;

    /// Make issued writes durable/visible (drain client-side batches,
    /// persist regions). A no-op where writes are already synchronous.
    fn flush(&self) -> Result<(), MargoError> {
        Ok(())
    }
}

/// SDSKV as a workload target: keys hash over the provider's databases.
pub struct SdskvTarget {
    client: SdskvClient,
    databases: u32,
    label: String,
}

impl SdskvTarget {
    /// Wrap `client`, spreading keys over `databases` (the provider's
    /// `SdskvSpec::num_databases`).
    pub fn new(client: SdskvClient, databases: u32) -> Self {
        let label = format!("sdskv@{:x}", client.addr().0);
        SdskvTarget {
            client,
            databases: databases.max(1),
            label,
        }
    }

    fn db_of(&self, key: &[u8]) -> u32 {
        (fnv64(key) % self.databases as u64) as u32
    }
}

impl WorkloadTarget for SdskvTarget {
    fn describe(&self) -> String {
        self.label.clone()
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        self.client
            .put(self.db_of(key), key.to_vec(), value.to_vec())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        self.client.get(self.db_of(key), key)
    }

    fn scan(&self, start: &[u8], max: usize) -> Result<usize, MargoError> {
        let pairs = self
            .client
            .list_keyvals(self.db_of(start), start, max as u32)?;
        Ok(pairs.len())
    }

    /// Durability barrier on every database this target spreads keys
    /// over. Against the `ldb-disk` backend each call joins a group
    /// commit and returns only once previously acked writes are
    /// fsync-durable; simulated backends accept it as a no-op. (This
    /// used to silently do nothing even on durable backends.)
    fn flush(&self) -> Result<(), MargoError> {
        for db in 0..self.databases {
            self.client.flush(db)?;
        }
        Ok(())
    }
}

/// BAKE as a workload target. BAKE addresses regions, not keys, so the
/// target keeps a client-side key→region map: `put` creates (or
/// rewrites) the key's region, `get` reads it back, `scan` walks the
/// local key index (BAKE has no server-side iterator — the map *is* the
/// metadata service a composed deployment would put in SDSKV), `flush`
/// persists every region written since the last flush.
pub struct BakeTarget {
    client: BakeClient,
    state: Mutex<BakeIndex>,
    label: String,
}

#[derive(Default)]
struct BakeIndex {
    regions: BTreeMap<Vec<u8>, (RegionId, u64)>,
    dirty: Vec<RegionId>,
}

impl BakeTarget {
    /// Wrap a BAKE client.
    pub fn new(client: BakeClient) -> Self {
        let label = "bake".to_string();
        BakeTarget {
            client,
            state: Mutex::new(BakeIndex::default()),
            label,
        }
    }
}

impl WorkloadTarget for BakeTarget {
    fn describe(&self) -> String {
        self.label.clone()
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        let rid = self.client.create(value.len() as u64)?;
        self.client.write(rid, 0, value)?;
        let mut state = self.state.lock().unwrap();
        state
            .regions
            .insert(key.to_vec(), (rid, value.len() as u64));
        state.dirty.push(rid);
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        let found = self.state.lock().unwrap().regions.get(key).copied();
        match found {
            Some((rid, len)) => self.client.get(rid, 0, len).map(Some),
            None => Ok(None),
        }
    }

    fn scan(&self, start: &[u8], max: usize) -> Result<usize, MargoError> {
        // Probe each region in key order so a scan still costs one RPC
        // per entry, like a real metadata walk would.
        let rids: Vec<RegionId> = {
            let state = self.state.lock().unwrap();
            state
                .regions
                .range(start.to_vec()..)
                .take(max)
                .map(|(_, (rid, _))| *rid)
                .collect()
        };
        for rid in &rids {
            self.client.probe(*rid)?;
        }
        Ok(rids.len())
    }

    fn flush(&self) -> Result<(), MargoError> {
        let dirty = std::mem::take(&mut self.state.lock().unwrap().dirty);
        for rid in dirty {
            self.client.persist(rid)?;
        }
        Ok(())
    }
}

/// HEPnOS as a workload target: the opaque key hashes into the
/// dataset/run/subrun/event hierarchy, writes ride the batched
/// put-packed path, and `flush` issues the pending batches. The client
/// is internally `&mut`, so the target serializes access — virtual
/// clients contend on the batcher exactly like loader threads sharing
/// one HEPnOS connection would.
pub struct HepnosTarget {
    inner: Mutex<HepnosClient>,
    dataset: String,
}

impl HepnosTarget {
    /// Wrap a HEPnOS client; every key lands in `dataset`.
    pub fn new(client: HepnosClient, dataset: impl Into<String>) -> Self {
        HepnosTarget {
            inner: Mutex::new(client),
            dataset: dataset.into(),
        }
    }

    fn event_key(&self, key: &[u8]) -> EventKey {
        let h = fnv64(key);
        EventKey {
            dataset: self.dataset.clone(),
            run: (h >> 40) as u32 & 0xFF,
            subrun: (h >> 32) as u32 & 0xFF,
            event: h as u32,
        }
    }

    /// Events the wrapped client saw shed with `Overloaded` (the
    /// separate shed bucket, not failures).
    pub fn shed_events(&self) -> u64 {
        self.inner.lock().unwrap().shed_events()
    }

    /// Consume the target, returning the wrapped client (for final
    /// accounting / teardown).
    pub fn into_inner(self) -> HepnosClient {
        self.inner.into_inner().unwrap()
    }
}

impl WorkloadTarget for HepnosTarget {
    fn describe(&self) -> String {
        format!("hepnos:{}", self.dataset)
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        let ek = self.event_key(key);
        self.inner.lock().unwrap().store_event(&ek, value.to_vec())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        let ek = self.event_key(key);
        self.inner.lock().unwrap().load_event(&ek)
    }

    fn scan(&self, start: &[u8], _max: usize) -> Result<usize, MargoError> {
        // HEPnOS exposes hierarchy navigation, not raw key iteration; the
        // closest honest range-read is the point lookup of the scan
        // anchor (0 or 1 entries).
        let ek = self.event_key(start);
        Ok(self.inner.lock().unwrap().load_event(&ek)?.map_or(0, |_| 1))
    }

    fn flush(&self) -> Result<(), MargoError> {
        self.inner.lock().unwrap().flush()
    }
}

/// Consistent-hash fan-out over several targets — one per server in a
/// deployment. `put`/`get` route by key hash, `scan` routes by the scan
/// anchor, `flush` reaches every target.
pub struct RoutedTarget {
    targets: Vec<Box<dyn WorkloadTarget>>,
}

impl RoutedTarget {
    /// Compose `targets` (at least one).
    pub fn new(targets: Vec<Box<dyn WorkloadTarget>>) -> Self {
        assert!(
            !targets.is_empty(),
            "RoutedTarget needs at least one target"
        );
        RoutedTarget { targets }
    }

    fn route(&self, key: &[u8]) -> &dyn WorkloadTarget {
        // Splay with a distinct hash basis from the per-target db hash so
        // server choice and database choice stay independent.
        let h = fnv64(key).rotate_left(17);
        self.targets[(h % self.targets.len() as u64) as usize].as_ref()
    }
}

impl WorkloadTarget for RoutedTarget {
    fn describe(&self) -> String {
        let parts: Vec<String> = self.targets.iter().map(|t| t.describe()).collect();
        format!("routed[{}]", parts.join(","))
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        self.route(key).put(key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        self.route(key).get(key)
    }

    fn scan(&self, start: &[u8], max: usize) -> Result<usize, MargoError> {
        self.route(start).scan(start, max)
    }

    fn flush(&self) -> Result<(), MargoError> {
        for t in &self.targets {
            t.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bake::{BakeProvider, BakeSpec};
    use crate::hepnos::HepnosConfig;
    use crate::kv::{BackendKind, BackendMode, StorageCost};
    use crate::sdskv::{SdskvProvider, SdskvSpec};
    use std::time::Duration;
    use symbi_fabric::{Fabric, NetworkModel};
    use symbi_margo::{MargoConfig, MargoInstance};

    fn quick_spec() -> SdskvSpec {
        SdskvSpec {
            num_databases: 4,
            backend: BackendKind::Map,
            mode: BackendMode::simulated_free(),
            handler_cost: Duration::ZERO,
            handler_cost_per_key: Duration::ZERO,
        }
    }

    fn put_get_scan_flush(target: &dyn WorkloadTarget) {
        for i in 0..32u32 {
            let key = format!("wk-{i:04}").into_bytes();
            target.put(&key, format!("v{i}").as_bytes()).unwrap();
        }
        target.flush().unwrap();
        assert_eq!(
            target.get(b"wk-0007").unwrap().as_deref(),
            Some(b"v7".as_ref())
        );
        assert_eq!(target.get(b"wk-none").unwrap(), None);
        let n = target.scan(b"wk-0000", 8).unwrap();
        assert!(n >= 1, "scan from the first key finds entries, got {n}");
    }

    #[test]
    fn sdskv_target_round_trips_through_the_trait() {
        let fabric = Fabric::new(NetworkModel::instant());
        let server = MargoInstance::new(fabric.clone(), MargoConfig::server("sdskv-wl", 2));
        let _provider = SdskvProvider::attach(&server, quick_spec());
        let client = MargoInstance::new(fabric, MargoConfig::client("wl-client"));
        let target = SdskvTarget::new(SdskvClient::new(client.clone(), server.addr()), 4);
        put_get_scan_flush(&target);
        assert!(target.describe().starts_with("sdskv@"));
        client.finalize();
        server.finalize();
    }

    #[test]
    fn sdskv_target_flush_barriers_every_durable_database() {
        let dir = std::env::temp_dir().join(format!(
            "symbi-wl-flush-{}-{}",
            std::process::id(),
            symbi_core::now_ns()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fabric = Fabric::new(NetworkModel::instant());
        let server = MargoInstance::new(fabric.clone(), MargoConfig::server("sdskv-wl-d", 2));
        let provider = SdskvProvider::attach(
            &server,
            SdskvSpec {
                backend: BackendKind::LdbDisk,
                mode: BackendMode::Durable(dir.clone()),
                ..quick_spec()
            },
        );
        let client = MargoInstance::new(fabric, MargoConfig::client("wl-client-d"));
        let target = SdskvTarget::new(SdskvClient::new(client.clone(), server.addr()), 4);
        for i in 0..16u32 {
            target.put(format!("dk-{i:04}").as_bytes(), b"v").unwrap();
        }
        target.flush().unwrap();
        // The barrier must have reached every database's WAL, not been
        // swallowed client-side.
        for db in 0..4 {
            let stats = provider.db(db).unwrap().store_stats().unwrap();
            assert!(stats.flush_barriers >= 1, "db {db} saw no flush barrier");
        }
        client.finalize();
        server.finalize();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bake_target_round_trips_through_the_trait() {
        let fabric = Fabric::new(NetworkModel::instant());
        let server = MargoInstance::new(fabric.clone(), MargoConfig::server("bake-wl", 2));
        let _provider = BakeProvider::attach(&server, BakeSpec::default());
        let client = MargoInstance::new(fabric, MargoConfig::client("wl-bake-client"));
        let target = BakeTarget::new(BakeClient::new(client.clone(), server.addr()));
        put_get_scan_flush(&target);
        client.finalize();
        server.finalize();
    }

    #[test]
    fn hepnos_target_round_trips_through_the_trait() {
        let fabric = Fabric::new(NetworkModel::instant());
        let mut cfg = HepnosConfig::c3();
        cfg.total_servers = 1;
        cfg.threads = 2;
        cfg.databases = 4;
        cfg.batch_size = 8;
        cfg.cost = StorageCost::free();
        cfg.handler_cost = Duration::ZERO;
        cfg.handler_cost_per_key = Duration::ZERO;
        let dep = crate::hepnos::HepnosDeployment::launch(&fabric, &cfg);
        let client = HepnosClient::connect(&fabric, "wl-hepnos", &dep.addrs(), &cfg);
        let target = HepnosTarget::new(client, "wl-ds");
        put_get_scan_flush(&target);
        // The scan anchor exists after the flush → the point fallback
        // reports one entry.
        assert_eq!(target.scan(b"wk-0003", 4).unwrap(), 1);
        target.into_inner().finalize();
        dep.finalize();
    }

    #[test]
    fn routed_target_spreads_keys_and_flushes_everywhere() {
        let fabric = Fabric::new(NetworkModel::instant());
        let mut servers = Vec::new();
        let mut targets: Vec<Box<dyn WorkloadTarget>> = Vec::new();
        let client = MargoInstance::new(fabric.clone(), MargoConfig::client("wl-routed"));
        for i in 0..2 {
            let server =
                MargoInstance::new(fabric.clone(), MargoConfig::server(format!("rt-{i}"), 2));
            let _p = SdskvProvider::attach(&server, quick_spec());
            targets.push(Box::new(SdskvTarget::new(
                SdskvClient::new(client.clone(), server.addr()),
                4,
            )));
            servers.push(server);
        }
        let routed = RoutedTarget::new(targets);
        put_get_scan_flush(&routed);
        client.finalize();
        for s in servers {
            s.finalize();
        }
    }
}
