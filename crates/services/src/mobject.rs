//! Mobject — the composed RADOS-like distributed object store (paper
//! §V-A, Figure 4): a client-facing *Mobject provider* translates object
//! operations into BAKE (object data) and SDSKV (metadata) operations,
//! with a sequencer ordering updates. Control always returns to the
//! Mobject provider between downstream calls.
//!
//! A single `mobject_write_op` fans out into **12 discrete BAKE/SDSKV
//! RPCs** — the structure SYMBIOSYS's trace visualization uncovers in the
//! paper's Figure 5.

use crate::bake::BakeClient;
use crate::sdskv::SdskvClient;
use std::sync::Arc;
use symbi_fabric::Addr;
use symbi_margo::{MargoError, MargoInstance, RpcOptions};
use symbi_mercury::{CodecError, Decoder, Encoder, RdmaRef, Wire};

/// SDSKV database indices used by the Mobject provider's metadata layout.
mod dbs {
    /// Sequencer state.
    pub const SEQ: u32 = 0;
    /// Object id → BAKE region mapping.
    pub const OMAP: u32 = 1;
    /// Object attribute metadata (sizes, timestamps, flags).
    pub const ATTRS: u32 = 2;
}

/// Number of SDSKV databases the Mobject provider expects its metadata
/// SDSKV provider to host.
pub const REQUIRED_SDSKV_DBS: usize = 3;

/// Arguments of `mobject_write_op`: object name plus a bulk descriptor of
/// the data in client memory (pulled by BAKE through RDMA).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOpArgs {
    /// Object name.
    pub object: String,
    /// Bulk descriptor of the object data.
    pub bulk: RdmaRef,
}

impl Wire for WriteOpArgs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.object);
        self.bulk.encode(enc);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(WriteOpArgs {
            object: dec.get_str()?,
            bulk: RdmaRef::decode(dec)?,
        })
    }
}

/// The server-side Mobject provider. Holds client handles to the BAKE
/// and SDSKV providers it composes (which may live on the same Margo
/// instance, as on the paper's Mobject provider nodes).
pub struct MobjectProvider {
    _private: (),
}

impl MobjectProvider {
    /// Register the Mobject RPCs on `margo`, composing the BAKE provider
    /// at `bake_addr` and the SDSKV provider at `sdskv_addr` (which must
    /// host at least [`REQUIRED_SDSKV_DBS`] databases).
    pub fn attach(
        margo: &MargoInstance,
        bake_addr: Addr,
        sdskv_addr: Addr,
    ) -> Arc<MobjectProvider> {
        let provider = Arc::new(MobjectProvider { _private: () });

        margo.register_fn(
            "mobject_write_op",
            move |m: &MargoInstance, args: WriteOpArgs| {
                let bake = BakeClient::new(m.clone(), bake_addr);
                let kv = SdskvClient::new(m.clone(), sdskv_addr);
                let err = |e: MargoError| e.to_string();
                let oid = args.object.as_bytes().to_vec();

                // 1. Fetch the sequencer state.
                let seq = kv
                    .get(dbs::SEQ, b"seq")
                    .map_err(err)?
                    .map(|v| u64::from_le_bytes(v.try_into().unwrap_or([0; 8])))
                    .unwrap_or(0);
                // 2. Advance the sequencer.
                kv.put(dbs::SEQ, b"seq".to_vec(), (seq + 1).to_le_bytes().to_vec())
                    .map_err(err)?;
                // 3. Look up an existing region for the object.
                let existing = kv.get(dbs::OMAP, &oid).map_err(err)?;
                // 4. Create (or reuse) the BAKE region.
                let rid = match existing {
                    Some(v) => u64::from_le_bytes(v.try_into().unwrap_or([0; 8])),
                    None => bake.create(args.bulk.len).map_err(err)?,
                };
                // 5. Pull the object data into the region.
                //    (The provider re-exposes the client's bulk handle.)
                let data = m
                    .hg()
                    .bulk_pull(args.bulk, 0, args.bulk.len as usize)
                    .map_err(|e| e.to_string())?;
                bake.write(rid, 0, &data).map_err(err)?;
                // 6. Persist the region.
                bake.persist(rid).map_err(err)?;
                // 7. Record the object → region mapping.
                kv.put(dbs::OMAP, oid.clone(), rid.to_le_bytes().to_vec())
                    .map_err(err)?;
                // 8. Record the object size.
                kv.put(
                    dbs::ATTRS,
                    [b"size:".as_slice(), &oid].concat(),
                    (data.len() as u64).to_le_bytes().to_vec(),
                )
                .map_err(err)?;
                // 9. Record the sequence stamp.
                kv.put(
                    dbs::ATTRS,
                    [b"seq:".as_slice(), &oid].concat(),
                    seq.to_le_bytes().to_vec(),
                )
                .map_err(err)?;
                // 10. Mark the object clean.
                kv.put(dbs::ATTRS, [b"dirty:".as_slice(), &oid].concat(), vec![0])
                    .map_err(err)?;
                // 11. Touch the name index (list around the object key).
                let _ = kv.list_keyvals(dbs::OMAP, &oid, 1).map_err(err)?;
                // 12. Verify the region landed.
                let probe = bake.probe(rid).map_err(err)?;
                if !probe.exists {
                    return Err("bake region vanished".to_string());
                }
                Ok::<u64, String>(seq)
            },
        );

        margo.register_fn(
            "mobject_read_op",
            move |m: &MargoInstance, object: String| {
                let bake = BakeClient::new(m.clone(), bake_addr);
                let kv = SdskvClient::new(m.clone(), sdskv_addr);
                let err = |e: MargoError| e.to_string();
                let oid = object.as_bytes().to_vec();

                // 1. List the object's metadata neighborhood.
                let _ = kv.list_keyvals(dbs::OMAP, &oid, 1).map_err(err)?;
                // 2. Resolve the region.
                let rid = kv
                    .get(dbs::OMAP, &oid)
                    .map_err(err)?
                    .map(|v| u64::from_le_bytes(v.try_into().unwrap_or([0; 8])))
                    .ok_or_else(|| format!("no object {object}"))?;
                // 3. Probe it.
                let probe = bake.probe(rid).map_err(err)?;
                if !probe.exists {
                    return Err(format!("region {rid} missing"));
                }
                // 4. Read the data.
                bake.get(rid, 0, probe.size).map_err(err)
            },
        );

        provider
    }
}

/// Number of downstream RPCs a single `mobject_write_op` issues (the 12
/// discrete steps of the paper's Figure 5).
pub const WRITE_OP_SUBCALLS: usize = 12;

/// Number of downstream RPCs a single `mobject_read_op` issues.
pub const READ_OP_SUBCALLS: usize = 4;

/// Client-side Mobject API.
#[derive(Clone)]
pub struct MobjectClient {
    margo: MargoInstance,
    addr: Addr,
    options: RpcOptions,
}

impl MobjectClient {
    /// Connect a client handle to a Mobject provider address.
    pub fn new(margo: MargoInstance, addr: Addr) -> Self {
        MobjectClient {
            margo,
            addr,
            options: RpcOptions::default(),
        }
    }

    /// Apply an [`RpcOptions`] (deadline / retry policy) to every RPC
    /// this client issues. Note `write_op` advances the sequencer, so a
    /// retrying policy should leave the idempotency flag off for writes.
    #[must_use]
    pub fn with_options(mut self, options: RpcOptions) -> Self {
        self.options = options;
        self
    }

    /// Write an object; returns the sequencer stamp.
    pub fn write_op(&self, object: &str, data: &[u8]) -> Result<u64, MargoError> {
        let staged = Arc::new(data.to_vec());
        let bulk = self.margo.hg().bulk_expose_read(staged.clone());
        let res = self.margo.forward_with(
            self.addr,
            "mobject_write_op",
            &WriteOpArgs {
                object: object.to_string(),
                bulk,
            },
            self.options.clone(),
        );
        self.margo.hg().bulk_free(bulk);
        res
    }

    /// Read an object's full contents.
    pub fn read_op(&self, object: &str) -> Result<Vec<u8>, MargoError> {
        self.margo.forward_with(
            self.addr,
            "mobject_read_op",
            &object.to_string(),
            self.options.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bake::{BakeProvider, BakeSpec};
    use crate::kv::{BackendKind, BackendMode};
    use crate::sdskv::{SdskvProvider, SdskvSpec};
    use symbi_core::{Side, TraceEventKind};
    use symbi_fabric::{Fabric, NetworkModel};
    use symbi_margo::MargoConfig;

    /// One "Mobject provider node" hosting all three providers, as in
    /// the paper's Figure 4.
    fn setup() -> (MargoInstance, MargoInstance, MobjectClient) {
        let f = Fabric::new(NetworkModel::instant());
        let node = MargoInstance::new(f.clone(), MargoConfig::server("mobject-node", 4));
        // Backend providers get their own pool so nested RPCs cannot be
        // starved by blocked mobject handlers (Margo's provider pools).
        let backend_pool = node.add_handler_pool("backend", 4);
        let _bake = BakeProvider::attach_in_pool(&node, BakeSpec::default(), &backend_pool);
        let _kv = SdskvProvider::attach_in_pool(
            &node,
            SdskvSpec {
                num_databases: REQUIRED_SDSKV_DBS,
                backend: BackendKind::Map,
                mode: BackendMode::simulated_free(),
                handler_cost: std::time::Duration::ZERO,
                handler_cost_per_key: std::time::Duration::ZERO,
            },
            &backend_pool,
        );
        let _mobject = MobjectProvider::attach(&node, node.addr(), node.addr());
        let cm = MargoInstance::new(f, MargoConfig::client("mobject-client"));
        let client = MobjectClient::new(cm.clone(), node.addr());
        (node, cm, client)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (node, cm, client) = setup();
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 240) as u8).collect();
        let seq0 = client.write_op("obj-A", &data).unwrap();
        assert_eq!(seq0, 0);
        let seq1 = client.write_op("obj-B", &data).unwrap();
        assert_eq!(seq1, 1);
        let read = client.read_op("obj-A").unwrap();
        assert_eq!(read, data);
        assert!(client.read_op("obj-missing").is_err());
        cm.finalize();
        node.finalize();
    }

    #[test]
    fn overwrite_reuses_region() {
        let (node, cm, client) = setup();
        client.write_op("obj", b"first").unwrap();
        client.write_op("obj", b"second").unwrap();
        assert_eq!(client.read_op("obj").unwrap(), b"second");
        cm.finalize();
        node.finalize();
    }

    #[test]
    fn write_op_fans_out_into_twelve_subcalls() {
        let (node, cm, client) = setup();
        client.write_op("traced-obj", b"payload").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(80));
        // The provider node's origin-side profile rows cover every
        // downstream RPC; total origin-side call count must be 12.
        let rows = node.symbiosys().profiler().snapshot();
        let downstream: u64 = rows
            .iter()
            .filter(|r| r.side == Side::Origin)
            .map(|r| r.count)
            .sum();
        assert_eq!(downstream as usize, WRITE_OP_SUBCALLS);
        // Every downstream callpath is rooted at mobject_write_op.
        let root = symbi_core::callpath::hash16("mobject_write_op");
        for r in rows.iter().filter(|r| r.side == Side::Origin) {
            assert_eq!(r.callpath.frames()[0], root, "{}", r.callpath);
        }
        cm.finalize();
        node.finalize();
    }

    #[test]
    fn read_op_fans_out_into_four_subcalls() {
        let (node, cm, client) = setup();
        client.write_op("r-obj", b"x").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        node.symbiosys().profiler().reset();
        client.read_op("r-obj").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let rows = node.symbiosys().profiler().snapshot();
        let read_root = symbi_core::callpath::hash16("mobject_read_op");
        let downstream: u64 = rows
            .iter()
            .filter(|r| r.side == Side::Origin && r.callpath.frames()[0] == read_root)
            .map(|r| r.count)
            .sum();
        assert_eq!(downstream as usize, READ_OP_SUBCALLS);
        cm.finalize();
        node.finalize();
    }

    #[test]
    fn trace_contains_nested_target_events() {
        let (node, cm, client) = setup();
        client.write_op("t-obj", b"data").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(80));
        let mut events = cm.symbiosys().tracer().snapshot();
        events.extend(node.symbiosys().tracer().snapshot());
        // One request id spans client and provider node.
        let rid = events[0].request_id;
        assert!(events.iter().all(|e| e.request_id == rid));
        // The node serviced 1 write_op + 12 nested targets = 13 ULT starts.
        let target_starts = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::TargetUltStart)
            .count();
        assert_eq!(target_starts, 1 + WRITE_OP_SUBCALLS);
        cm.finalize();
        node.finalize();
    }

    #[test]
    fn wire_roundtrip() {
        let w = WriteOpArgs {
            object: "o".into(),
            bulk: RdmaRef { key: 1, len: 2 },
        };
        assert_eq!(WriteOpArgs::from_bytes(w.to_bytes()).unwrap(), w);
    }
}
