//! An ior-like client driver for Mobject (paper §V-A: "The ior benchmark
//! has been modified to use Mobject for reading and writing objects").
//!
//! `clients` driver threads are colocated with the provider (as in the
//! paper's single-node Mobject setup), each writing and optionally
//! reading back a set of fixed-size objects through the Mobject API.

use crate::mobject::MobjectClient;
use std::sync::Arc;
use std::time::Instant;
use symbi_core::{ProfileRow, Stage, TraceEvent};
use symbi_fabric::{Addr, Fabric};
use symbi_margo::{MargoConfig, MargoInstance};
use symbi_tasking::AbtBarrier;

/// ior-like workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct IorConfig {
    /// Number of concurrent client processes (threads).
    pub clients: usize,
    /// Objects written per client.
    pub objects_per_client: usize,
    /// Bytes per object.
    pub object_size: usize,
    /// Whether to run the read phase after the write phase.
    pub do_read: bool,
    /// SYMBIOSYS measurement stage for the client instances.
    pub stage: Stage,
}

impl Default for IorConfig {
    fn default() -> Self {
        IorConfig {
            clients: 10,
            objects_per_client: 4,
            object_size: 8192,
            do_read: true,
            stage: Stage::Full,
        }
    }
}

/// Results of one ior run, including the clients' collected
/// instrumentation data for post-mortem analysis.
#[derive(Debug)]
pub struct IorRun {
    /// Wall time of the write phase (seconds).
    pub write_seconds: f64,
    /// Wall time of the read phase (seconds), 0 if skipped.
    pub read_seconds: f64,
    /// Total objects written.
    pub objects: usize,
    /// Total bytes written.
    pub bytes: u64,
    /// Origin-side profile rows from all client instances.
    pub client_profiles: Vec<ProfileRow>,
    /// Trace events from all client instances.
    pub client_traces: Vec<TraceEvent>,
}

/// Run the ior workload against a Mobject provider.
pub fn run_ior(fabric: &Fabric, mobject_addr: Addr, cfg: &IorConfig) -> IorRun {
    let barrier = Arc::new(AbtBarrier::new(cfg.clients + 1));
    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let fabric = fabric.clone();
            let barrier = barrier.clone();
            let cfg = *cfg;
            std::thread::spawn(move || {
                let margo = MargoInstance::new(
                    fabric,
                    MargoConfig::client(format!("ior-client-{c}")).with_stage(cfg.stage),
                );
                let client = MobjectClient::new(margo.clone(), mobject_addr);
                let data: Vec<u8> = (0..cfg.object_size)
                    .map(|i| ((i * 31 + c * 7) % 251) as u8)
                    .collect();
                barrier.wait(); // simultaneous write phase start
                let w0 = Instant::now();
                for o in 0..cfg.objects_per_client {
                    client
                        .write_op(&format!("ior-c{c}-o{o}"), &data)
                        .expect("ior write_op failed");
                }
                let write_s = w0.elapsed().as_secs_f64();
                let mut read_s = 0.0;
                if cfg.do_read {
                    let r0 = Instant::now();
                    for o in 0..cfg.objects_per_client {
                        let got = client
                            .read_op(&format!("ior-c{c}-o{o}"))
                            .expect("ior read_op failed");
                        assert_eq!(got.len(), cfg.object_size);
                    }
                    read_s = r0.elapsed().as_secs_f64();
                }
                // Harvest instrumentation before tearing the client down.
                let profiles = margo.symbiosys().profiler().snapshot();
                let traces = margo.symbiosys().tracer().snapshot();
                margo.finalize();
                (write_s, read_s, profiles, traces)
            })
        })
        .collect();
    barrier.wait();
    let mut write_seconds: f64 = 0.0;
    let mut read_seconds: f64 = 0.0;
    let mut client_profiles = Vec::new();
    let mut client_traces = Vec::new();
    for h in handles {
        let (w, r, p, t) = h.join().expect("ior client panicked");
        write_seconds = write_seconds.max(w);
        read_seconds = read_seconds.max(r);
        client_profiles.extend(p);
        client_traces.extend(t);
    }
    IorRun {
        write_seconds,
        read_seconds,
        objects: cfg.clients * cfg.objects_per_client,
        bytes: (cfg.clients * cfg.objects_per_client * cfg.object_size) as u64,
        client_profiles,
        client_traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bake::{BakeProvider, BakeSpec};
    use crate::kv::{BackendKind, BackendMode};
    use crate::mobject::{MobjectProvider, REQUIRED_SDSKV_DBS, WRITE_OP_SUBCALLS};
    use crate::sdskv::{SdskvProvider, SdskvSpec};
    use symbi_fabric::NetworkModel;

    fn provider_node(fabric: &Fabric) -> MargoInstance {
        let node = MargoInstance::new(fabric.clone(), MargoConfig::server("ior-node", 6));
        let backend_pool = node.add_handler_pool("backend", 6);
        BakeProvider::attach_in_pool(&node, BakeSpec::default(), &backend_pool);
        SdskvProvider::attach_in_pool(
            &node,
            SdskvSpec {
                num_databases: REQUIRED_SDSKV_DBS,
                backend: BackendKind::Map,
                mode: BackendMode::simulated_free(),
                handler_cost: std::time::Duration::ZERO,
                handler_cost_per_key: std::time::Duration::ZERO,
            },
            &backend_pool,
        );
        MobjectProvider::attach(&node, node.addr(), node.addr());
        node
    }

    #[test]
    fn small_ior_run_completes() {
        let fabric = Fabric::new(NetworkModel::instant());
        let node = provider_node(&fabric);
        let run = run_ior(
            &fabric,
            node.addr(),
            &IorConfig {
                clients: 3,
                objects_per_client: 2,
                object_size: 1024,
                do_read: true,
                stage: Stage::Full,
            },
        );
        assert_eq!(run.objects, 6);
        assert_eq!(run.bytes, 6 * 1024);
        assert!(run.write_seconds > 0.0);
        assert!(run.read_seconds > 0.0);
        // Each client recorded the write_op callpath.
        let write_root = symbi_core::Callpath::root("mobject_write_op");
        let write_rows: Vec<_> = run
            .client_profiles
            .iter()
            .filter(|r| r.callpath == write_root)
            .collect();
        assert_eq!(write_rows.len(), 3);
        assert!(write_rows.iter().all(|r| r.count == 2));
        node.finalize();
    }

    #[test]
    fn provider_profile_covers_subcalls() {
        let fabric = Fabric::new(NetworkModel::instant());
        let node = provider_node(&fabric);
        let run = run_ior(
            &fabric,
            node.addr(),
            &IorConfig {
                clients: 2,
                objects_per_client: 1,
                object_size: 512,
                do_read: false,
                stage: Stage::Full,
            },
        );
        assert_eq!(run.objects, 2);
        std::thread::sleep(std::time::Duration::from_millis(80));
        let rows = node.symbiosys().profiler().snapshot();
        let downstream: u64 = rows
            .iter()
            .filter(|r| r.side == symbi_core::Side::Origin)
            .map(|r| r.count)
            .sum();
        assert_eq!(downstream as usize, 2 * WRITE_OP_SUBCALLS);
        node.finalize();
    }
}
