//! Typed scenario specifications for the open-loop load plane.
//!
//! A [`ScenarioSpec`] is the single source of truth for one load
//! experiment: the workload mix, the arrival process and target rate, the
//! run duration, the server shape (execution streams, databases, handler
//! service time), an optional fault script (blackout storms over the
//! existing [`symbi_fabric::FaultPlan`]), and the adaptive control
//! policy. The same spec is consumed by three parties:
//!
//! * `symbi-load` generates the seeded arrival schedule and drives the
//!   workload graph from it,
//! * `symbi-netd` builds its `scenario`-role server providers and its
//!   `load`-role generator from it,
//! * [`crate::deploy::DeployManifest::with_scenario`] ships it to every
//!   spawned process as one JSON value in `SYMBI_SCENARIO`.
//!
//! The codec is the flight-recorder JSON dialect
//! ([`symbi_core::telemetry::jsonl`]): fixed member order, integer
//! tokens kept exact, so `spec → json → spec` round-trips by value.
//!
//! The pre-PR-8 ad-hoc environment knobs (`SYMBI_ADAPTIVE`,
//! `SYMBI_ADAPTIVE_COOLDOWN_MS`, `SYMBI_FAULT_SEED`, `SYMBI_THREADS`,
//! `SYMBI_DATABASES`) survive only as a deprecated fallback that parses
//! into a `ScenarioSpec` when `SYMBI_SCENARIO` is absent
//! ([`ScenarioSpec::from_legacy_env`]).

use std::fmt::Write as _;
use std::time::Duration;
use symbi_core::telemetry::jsonl::{parse_json, JsonValue};
use symbi_fabric::{Addr, FaultPlan};
use symbi_margo::ControlPolicy;

/// Environment variable carrying a JSON-encoded [`ScenarioSpec`].
pub const SCENARIO_ENV: &str = "SYMBI_SCENARIO";

/// Relative weights of the three workload operations. The generator maps
/// each arrival to an operation deterministically from the spec seed, so
/// two runs of the same spec issue the same op sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Weight of `put` (write) operations.
    pub put: u32,
    /// Weight of `get` (point read) operations.
    pub get: u32,
    /// Weight of `scan` (range read) operations.
    pub scan: u32,
}

impl WorkloadMix {
    /// Sum of the weights (at least 1 so a zero mix degenerates to puts).
    pub fn total(&self) -> u32 {
        (self.put + self.get + self.scan).max(1)
    }
}

/// The inter-arrival process of the open-loop schedule. Both carry the
/// *offered* rate; the heavy-tail variant adds the Pareto shape.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrivals (memoryless): `gap = -ln(U)/rate`.
    Poisson {
        /// Offered arrival rate in operations per second.
        rate_hz: f64,
    },
    /// Pareto inter-arrivals with shape `alpha > 1`, scaled so the mean
    /// gap matches `1/rate` — same offered rate, bursty heavy tail.
    Pareto {
        /// Offered arrival rate in operations per second.
        rate_hz: f64,
        /// Tail index; smaller is heavier (must be > 1 for a finite mean).
        alpha: f64,
    },
}

impl ArrivalProcess {
    /// The offered rate in operations per second.
    pub fn rate_hz(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_hz } | ArrivalProcess::Pareto { rate_hz, .. } => {
                *rate_hz
            }
        }
    }
}

/// The adaptive control-loop policy of a scenario, mirrored onto
/// [`symbi_margo::ControlPolicy`] by server roles when `enabled`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveSpec {
    /// Attach the online control loop to scenario servers.
    pub enabled: bool,
    /// Per-(action, subject) cooldown in milliseconds.
    pub cooldown_ms: u64,
    /// Cap for the lane-widening reaction.
    pub max_lanes: u32,
    /// Cap for execution-stream growth.
    pub max_streams: u32,
    /// Allow the admission-gate shedding reaction.
    pub shedding: bool,
}

/// A scripted storm of transport blackouts, built on the deterministic
/// [`symbi_fabric::FaultPlan`]: `blackouts` windows of `blackout_ms`
/// each, the k-th starting at `first_ms + k·period_ms`, rotating over
/// the server list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScript {
    /// Seed of the fault plan (also drives drop/latency jitter if added).
    pub seed: u64,
    /// Number of blackout windows in the storm.
    pub blackouts: u32,
    /// Offset of the first blackout from generator start, in ms.
    pub first_ms: u64,
    /// Spacing between blackout starts, in ms.
    pub period_ms: u64,
    /// Length of each blackout window, in ms.
    pub blackout_ms: u64,
}

/// One open-loop load experiment, end to end. See the module docs for
/// who consumes which fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (labels reports and flight rings).
    pub name: String,
    /// Arrival process and offered rate.
    pub arrivals: ArrivalProcess,
    /// Read/write/scan weights.
    pub mix: WorkloadMix,
    /// Offered-schedule horizon in milliseconds.
    pub duration_ms: u64,
    /// Size of the fixed virtual-client pool issuing the schedule.
    pub virtual_clients: u32,
    /// Master seed: arrival schedule, op choice, key choice, values.
    pub seed: u64,
    /// Number of distinct keys the generator cycles over.
    pub key_space: u64,
    /// Value bytes per put.
    pub value_size: u32,
    /// Value bytes per put once `large_after_ms` is reached (0 = never):
    /// the eager→RDMA threshold-crossing script flips payloads past the
    /// eager limit mid-run.
    pub large_value_size: u32,
    /// Intended-send-time offset (ms) after which puts switch to
    /// `large_value_size`.
    pub large_after_ms: u64,
    /// Keys returned per scan operation.
    pub scan_span: u32,
    /// Handler execution streams per scenario server.
    pub server_threads: u32,
    /// SDSKV databases per scenario server.
    pub databases: u32,
    /// SDSKV backend name for scenario servers (`map`, `ldb`, `bdb`, or
    /// `ldb-disk` — see [`crate::kv::BackendKind::parse`]). The `ldb-disk`
    /// backend runs each server against a real durable store rooted at
    /// `SYMBI_STORE_DIR`.
    pub backend: String,
    /// Simulated per-RPC handler service time, µs (ES-limited).
    pub handler_cost_us: u64,
    /// Additional handler time per key in packed/list operations, µs.
    pub handler_cost_per_key_us: u64,
    /// Adaptive control-loop policy for scenario servers.
    pub adaptive: AdaptiveSpec,
    /// Optional scripted fault storm, installed by the generator.
    pub fault: Option<FaultScript>,
}

impl Default for AdaptiveSpec {
    fn default() -> Self {
        AdaptiveSpec {
            enabled: false,
            cooldown_ms: 50,
            max_lanes: 1024,
            max_streams: 4,
            shedding: false,
        }
    }
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "base".into(),
            arrivals: ArrivalProcess::Poisson { rate_hz: 1000.0 },
            mix: WorkloadMix {
                put: 60,
                get: 35,
                scan: 5,
            },
            duration_ms: 2000,
            virtual_clients: 64,
            seed: 42,
            key_space: 4096,
            value_size: 256,
            large_value_size: 0,
            large_after_ms: 0,
            scan_span: 16,
            server_threads: 2,
            databases: 4,
            backend: "map".into(),
            handler_cost_us: 400,
            handler_cost_per_key_us: 0,
            adaptive: AdaptiveSpec::default(),
            fault: None,
        }
    }
}

impl ScenarioSpec {
    /// A default spec with the given name.
    pub fn named(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The offered rate in operations per second.
    pub fn rate_hz(&self) -> f64 {
        self.arrivals.rate_hz()
    }

    /// Replace the offered rate, keeping the arrival process shape.
    #[must_use]
    pub fn with_rate_hz(mut self, rate_hz: f64) -> Self {
        self.arrivals = match self.arrivals {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rate_hz },
            ArrivalProcess::Pareto { alpha, .. } => ArrivalProcess::Pareto { rate_hz, alpha },
        };
        self
    }

    /// Replace the arrival process.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Replace the workload mix.
    #[must_use]
    pub fn with_mix(mut self, put: u32, get: u32, scan: u32) -> Self {
        self.mix = WorkloadMix { put, get, scan };
        self
    }

    /// Replace the schedule horizon.
    #[must_use]
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration_ms = duration.as_millis() as u64;
        self
    }

    /// Replace the virtual-client pool size.
    #[must_use]
    pub fn with_virtual_clients(mut self, n: u32) -> Self {
        self.virtual_clients = n.max(1);
        self
    }

    /// Replace the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the server shape (execution streams, databases, fixed
    /// per-RPC handler cost).
    #[must_use]
    pub fn with_server_shape(
        mut self,
        threads: u32,
        databases: u32,
        handler_cost: Duration,
    ) -> Self {
        self.server_threads = threads.max(1);
        self.databases = databases.max(1);
        self.handler_cost_us = handler_cost.as_micros() as u64;
        self
    }

    /// Enable the adaptive control loop with the given policy knobs.
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: AdaptiveSpec) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Attach a scripted fault storm.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultScript) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Replace the SDSKV backend scenario servers build their databases
    /// on (`map` / `ldb` / `bdb` / `ldb-disk`).
    #[must_use]
    pub fn with_backend(mut self, backend: impl Into<String>) -> Self {
        self.backend = backend.into();
        self
    }

    /// Number of arrivals in the offered schedule (rate × horizon,
    /// at least 1).
    pub fn total_ops(&self) -> u64 {
        ((self.rate_hz() * self.duration_ms as f64 / 1000.0).round() as u64).max(1)
    }

    /// The margo control policy this scenario asks servers to attach, if
    /// the adaptive loop is enabled.
    pub fn control_policy(&self) -> Option<ControlPolicy> {
        if !self.adaptive.enabled {
            return None;
        }
        Some(
            ControlPolicy::default()
                .with_cooldown(Duration::from_millis(self.adaptive.cooldown_ms))
                .with_max_lanes(self.adaptive.max_lanes as usize)
                .with_max_streams(self.adaptive.max_streams as usize)
                .with_shedding(self.adaptive.shedding),
        )
    }

    /// Build the blackout-storm fault plan against `servers`, if the
    /// scenario scripts one. Blackout `k` hits `servers[k % len]` at
    /// `first_ms + k·period_ms` for `blackout_ms`.
    pub fn fault_plan(&self, servers: &[Addr]) -> Option<FaultPlan> {
        let script = self.fault.as_ref()?;
        if servers.is_empty() {
            return None;
        }
        let mut plan = FaultPlan::seeded(script.seed);
        for k in 0..script.blackouts {
            plan = plan.with_blackout(
                servers[k as usize % servers.len()],
                Duration::from_millis(script.first_ms + k as u64 * script.period_ms),
                Duration::from_millis(script.blackout_ms),
            );
        }
        Some(plan)
    }

    /// Encode as one JSON object (fixed member order; the codec dialect
    /// of the flight ring).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"kind\":\"scenario\",\"name\":");
        push_json_str(&mut out, &self.name);
        match &self.arrivals {
            ArrivalProcess::Poisson { rate_hz } => {
                let _ = write!(out, ",\"arrival\":\"poisson\",\"rate_hz\":{rate_hz}");
            }
            ArrivalProcess::Pareto { rate_hz, alpha } => {
                let _ = write!(
                    out,
                    ",\"arrival\":\"pareto\",\"rate_hz\":{rate_hz},\"alpha\":{alpha}"
                );
            }
        }
        let _ = write!(
            out,
            ",\"mix_put\":{},\"mix_get\":{},\"mix_scan\":{}",
            self.mix.put, self.mix.get, self.mix.scan
        );
        let _ = write!(
            out,
            ",\"duration_ms\":{},\"virtual_clients\":{},\"seed\":{},\"key_space\":{}",
            self.duration_ms, self.virtual_clients, self.seed, self.key_space
        );
        let _ = write!(
            out,
            ",\"value_size\":{},\"large_value_size\":{},\"large_after_ms\":{},\"scan_span\":{}",
            self.value_size, self.large_value_size, self.large_after_ms, self.scan_span
        );
        let _ = write!(
            out,
            ",\"server_threads\":{},\"databases\":{},\"backend\":",
            self.server_threads, self.databases
        );
        push_json_str(&mut out, &self.backend);
        let _ = write!(
            out,
            ",\"handler_cost_us\":{},\"handler_cost_per_key_us\":{}",
            self.handler_cost_us, self.handler_cost_per_key_us
        );
        let _ = write!(
            out,
            ",\"adaptive\":{},\"adaptive_cooldown_ms\":{},\"adaptive_max_lanes\":{},\"adaptive_max_streams\":{},\"adaptive_shedding\":{}",
            self.adaptive.enabled,
            self.adaptive.cooldown_ms,
            self.adaptive.max_lanes,
            self.adaptive.max_streams,
            self.adaptive.shedding
        );
        if let Some(f) = &self.fault {
            let _ = write!(
                out,
                ",\"fault_seed\":{},\"fault_blackouts\":{},\"fault_first_ms\":{},\"fault_period_ms\":{},\"fault_blackout_ms\":{}",
                f.seed, f.blackouts, f.first_ms, f.period_ms, f.blackout_ms
            );
        }
        out.push('}');
        out
    }

    /// Decode a spec encoded by [`ScenarioSpec::to_json`].
    pub fn from_json(input: &str) -> Result<ScenarioSpec, String> {
        let v = parse_json(input)?;
        if v.get("kind").and_then(JsonValue::as_str) != Some("scenario") {
            return Err("not a scenario spec".into());
        }
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("scenario missing {key}"))
        };
        let f = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("scenario missing {key}"))
        };
        let b = |key: &str| match v.get(key) {
            Some(JsonValue::Bool(x)) => Ok(*x),
            _ => Err(format!("scenario missing {key}")),
        };
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("scenario missing name")?
            .to_string();
        let rate_hz = f("rate_hz")?;
        let arrivals = match v.get("arrival").and_then(JsonValue::as_str) {
            Some("poisson") => ArrivalProcess::Poisson { rate_hz },
            Some("pareto") => ArrivalProcess::Pareto {
                rate_hz,
                alpha: f("alpha")?,
            },
            other => return Err(format!("unknown arrival process {other:?}")),
        };
        let fault = if v.get("fault_seed").is_some() {
            Some(FaultScript {
                seed: u("fault_seed")?,
                blackouts: u("fault_blackouts")? as u32,
                first_ms: u("fault_first_ms")?,
                period_ms: u("fault_period_ms")?,
                blackout_ms: u("fault_blackout_ms")?,
            })
        } else {
            None
        };
        Ok(ScenarioSpec {
            name,
            arrivals,
            mix: WorkloadMix {
                put: u("mix_put")? as u32,
                get: u("mix_get")? as u32,
                scan: u("mix_scan")? as u32,
            },
            duration_ms: u("duration_ms")?,
            virtual_clients: u("virtual_clients")? as u32,
            seed: u("seed")?,
            key_space: u("key_space")?,
            value_size: u("value_size")? as u32,
            large_value_size: u("large_value_size")? as u32,
            large_after_ms: u("large_after_ms")?,
            scan_span: u("scan_span")? as u32,
            server_threads: u("server_threads")? as u32,
            databases: u("databases")? as u32,
            // Optional with a default so specs emitted before the durable
            // backend existed still parse (the fault_seed precedent).
            backend: v
                .get("backend")
                .and_then(JsonValue::as_str)
                .unwrap_or("map")
                .to_string(),
            handler_cost_us: u("handler_cost_us")?,
            handler_cost_per_key_us: u("handler_cost_per_key_us")?,
            adaptive: AdaptiveSpec {
                enabled: b("adaptive")?,
                cooldown_ms: u("adaptive_cooldown_ms")?,
                max_lanes: u("adaptive_max_lanes")? as u32,
                max_streams: u("adaptive_max_streams")? as u32,
                shedding: b("adaptive_shedding")?,
            },
            fault,
        })
    }

    /// The scenario for this process, from the environment:
    /// `SYMBI_SCENARIO` (JSON, [`SCENARIO_ENV`]) when present, otherwise
    /// the deprecated ad-hoc knobs via
    /// [`ScenarioSpec::from_legacy_env`]. A present-but-unparsable
    /// `SYMBI_SCENARIO` is an error, never a silent fallback.
    pub fn from_env() -> Result<ScenarioSpec, String> {
        match std::env::var(SCENARIO_ENV) {
            Ok(json) if !json.trim().is_empty() => Self::from_json(&json),
            _ => {
                #[allow(deprecated)] // the one sanctioned caller of the fallback
                Ok(Self::from_legacy_env())
            }
        }
    }

    /// Parse the pre-`ScenarioSpec` environment knobs into a spec:
    /// `SYMBI_ADAPTIVE`, `SYMBI_ADAPTIVE_COOLDOWN_MS`, `SYMBI_FAULT_SEED`,
    /// `SYMBI_THREADS`, `SYMBI_DATABASES` over [`ScenarioSpec::default`].
    #[deprecated(
        since = "0.1.0",
        note = "set a full JSON ScenarioSpec in SYMBI_SCENARIO (DeployManifest::with_scenario) instead of ad-hoc env knobs"
    )]
    pub fn from_legacy_env() -> ScenarioSpec {
        let env_u64 = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        let mut spec = ScenarioSpec::named("legacy-env");
        if let Ok(v) = std::env::var("SYMBI_ADAPTIVE") {
            spec.adaptive.enabled = v == "1" || v.eq_ignore_ascii_case("true");
        }
        if let Some(ms) = env_u64("SYMBI_ADAPTIVE_COOLDOWN_MS") {
            spec.adaptive.cooldown_ms = ms;
        }
        if let Some(seed) = env_u64("SYMBI_FAULT_SEED") {
            if seed != 0 {
                spec.seed = seed;
                spec.fault = Some(FaultScript {
                    seed,
                    blackouts: 1,
                    first_ms: 0,
                    period_ms: 0,
                    blackout_ms: 100,
                });
            }
        }
        if let Some(t) = env_u64("SYMBI_THREADS") {
            spec.server_threads = (t as u32).max(1);
        }
        if let Some(d) = env_u64("SYMBI_DATABASES") {
            spec.databases = (d as u32).max(1);
        }
        spec
    }
}

/// Minimal JSON string escaping (quote, backslash, control chars) — the
/// same subset the flight-ring codec emits.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_every_field() {
        let spec = ScenarioSpec::named("storm \"quoted\"")
            .with_arrivals(ArrivalProcess::Pareto {
                rate_hz: 1250.5,
                alpha: 1.5,
            })
            .with_mix(1, 2, 3)
            .with_duration(Duration::from_millis(750))
            .with_virtual_clients(17)
            .with_seed(0xDEADBEEF)
            .with_server_shape(3, 9, Duration::from_micros(123))
            .with_backend("ldb-disk")
            .with_adaptive(AdaptiveSpec {
                enabled: true,
                cooldown_ms: 33,
                max_lanes: 256,
                max_streams: 6,
                shedding: true,
            })
            .with_fault(FaultScript {
                seed: 7,
                blackouts: 4,
                first_ms: 100,
                period_ms: 250,
                blackout_ms: 40,
            });
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("round trip");
        assert_eq!(back, spec);
        // And a faultless Poisson spec too.
        let plain = ScenarioSpec::default();
        assert_eq!(ScenarioSpec::from_json(&plain.to_json()).unwrap(), plain);
    }

    #[test]
    fn backend_is_optional_with_map_default() {
        // A spec emitted before the backend field existed still parses.
        let json = ScenarioSpec::default().to_json();
        let stripped = json.replace(",\"backend\":\"map\"", "");
        assert_ne!(stripped, json, "test must actually strip the field");
        let back = ScenarioSpec::from_json(&stripped).expect("legacy spec parses");
        assert_eq!(back.backend, "map");
        assert_eq!(back, ScenarioSpec::default());
    }

    #[test]
    fn total_ops_follows_rate_and_horizon() {
        let spec = ScenarioSpec::default()
            .with_rate_hz(500.0)
            .with_duration(Duration::from_secs(2));
        assert_eq!(spec.total_ops(), 1000);
    }

    #[test]
    fn control_policy_mirrors_the_adaptive_spec() {
        let off = ScenarioSpec::default();
        assert!(off.control_policy().is_none());
        let on = off.with_adaptive(AdaptiveSpec {
            enabled: true,
            cooldown_ms: 25,
            max_lanes: 128,
            max_streams: 3,
            shedding: false,
        });
        let policy = on.control_policy().expect("enabled");
        assert_eq!(policy.cooldown, Duration::from_millis(25));
        assert_eq!(policy.max_lanes, 128);
        assert_eq!(policy.max_streams, 3);
        assert!(!policy.shed);
    }

    #[test]
    fn fault_plan_rotates_blackouts_over_servers() {
        let spec = ScenarioSpec::default().with_fault(FaultScript {
            seed: 11,
            blackouts: 3,
            first_ms: 10,
            period_ms: 100,
            blackout_ms: 20,
        });
        let servers = [Addr(1), Addr(2)];
        let plan = spec.fault_plan(&servers).expect("scripted");
        assert_eq!(plan.seed(), 11);
        let b = plan.blackouts();
        assert_eq!(b.len(), 3);
        // No fault script → no plan; no servers → no plan.
        assert!(ScenarioSpec::default().fault_plan(&servers).is_none());
        assert!(spec.fault_plan(&[]).is_none());
    }

    #[test]
    fn legacy_env_knobs_parse_into_a_spec() {
        std::env::set_var("SYMBI_ADAPTIVE", "1");
        std::env::set_var("SYMBI_ADAPTIVE_COOLDOWN_MS", "75");
        std::env::set_var("SYMBI_FAULT_SEED", "1337");
        let spec = ScenarioSpec::from_env().expect("legacy fallback");
        std::env::remove_var("SYMBI_ADAPTIVE");
        std::env::remove_var("SYMBI_ADAPTIVE_COOLDOWN_MS");
        std::env::remove_var("SYMBI_FAULT_SEED");
        assert!(spec.adaptive.enabled);
        assert_eq!(spec.adaptive.cooldown_ms, 75);
        assert_eq!(spec.fault.as_ref().map(|f| f.seed), Some(1337));
        assert_eq!(spec.seed, 1337);
    }
}
