//! HEPnOS service configurations — the paper's Table IV, plus the
//! workload knobs the reproduction scales for a single-machine harness.

use crate::kv::StorageCost;
use std::time::Duration;
use symbi_core::Stage;
use symbi_margo::{RetryPolicy, RpcOptions, TelemetryOptions};

/// One HEPnOS service configuration. The first eight fields reproduce
/// Table IV column-for-column; the remaining fields parameterize the
/// synthetic data-loader workload (shrunk from the paper's Theta scale so
/// the whole suite runs in minutes while keeping every knob *ratio*
/// identical).
#[derive(Debug, Clone)]
pub struct HepnosConfig {
    /// Configuration label (C1..C7).
    pub label: String,
    /// Total data-loader client processes.
    pub total_clients: usize,
    /// Clients per node (Table IV; informational in the thread-group
    /// harness).
    pub clients_per_node: usize,
    /// Total service provider processes.
    pub total_servers: usize,
    /// Servers per node (informational).
    pub servers_per_node: usize,
    /// Client-side key-value batch size per `sdskv_put_packed`.
    pub batch_size: usize,
    /// Handler execution streams per server (*Threads (ESs)*).
    pub threads: usize,
    /// SDSKV databases per server (map backend).
    pub databases: usize,
    /// Whether clients run a dedicated progress stream.
    pub client_progress_thread: bool,
    /// `OFI_max_events` on the client.
    pub ofi_max_events: usize,

    // --- workload knobs (not part of Table IV) ---
    /// Events generated per client.
    pub events_per_client: usize,
    /// Bytes per event value.
    pub value_size: usize,
    /// Simulated lock-held storage cost per put operation.
    pub cost: StorageCost,
    /// Simulated per-RPC handler work outside any lock (ES-limited).
    pub handler_cost: std::time::Duration,
    /// Additional unlocked handler work per key in a packed put.
    pub handler_cost_per_key: std::time::Duration,
    /// Maximum in-flight async `put_packed` RPCs per client.
    pub async_window: usize,
    /// Margo-level pipeline window per destination
    /// ([`RpcOptions::with_pipeline`]): how many RPC handles the engine
    /// keeps open toward one server, letting the transport's coalescing
    /// flush batch frames. `0` disables the window (legacy, unbounded by
    /// the engine; the client's `async_window` still bounds puts).
    pub pipeline_depth: usize,
    /// Per-message fabric latency for the deployment (a zero-latency
    /// fabric delivers response bursts atomically, which no real network
    /// does; a small latency staggers arrivals as on the paper's testbed).
    pub net_latency: std::time::Duration,
    /// SYMBIOSYS measurement stage for all instances.
    pub stage: Stage,
    /// Live-telemetry settings applied to every *server* instance
    /// (default: off). Explicit Prometheus ports are offset by the server
    /// index and flight-recorder rings get per-server subdirectories, so
    /// one option block serves the whole deployment.
    pub telemetry: TelemetryOptions,

    // --- fault-tolerance knobs (default: legacy behavior, no retries) ---
    /// Per-attempt deadline applied to every client RPC (`None` falls
    /// back to the Margo instance's blocking `rpc_timeout`).
    pub rpc_deadline: Option<Duration>,
    /// Attempt budget per RPC; `0` disables retries entirely.
    pub retry_attempts: usize,
    /// Base back-off of the exponential retry schedule.
    pub retry_backoff: Duration,
    /// Seed of the deterministic retry-jitter RNG, so a fixed seed yields
    /// a byte-identical retry schedule across runs.
    pub fault_seed: u64,
    /// Consecutive put failures after which a client declares a server
    /// dead and stops sending to it (`0` keeps the legacy
    /// fail-the-whole-load behavior).
    pub dead_server_threshold: usize,
}

impl HepnosConfig {
    fn base() -> Self {
        HepnosConfig {
            label: "base".into(),
            total_clients: 32,
            clients_per_node: 16,
            total_servers: 4,
            servers_per_node: 2,
            batch_size: 1024,
            threads: 5,
            databases: 32,
            client_progress_thread: false,
            ofi_max_events: 16,
            events_per_client: 1024,
            value_size: 64,
            cost: StorageCost::default_experiment(),
            // Dominant, ES-limited per-RPC service time (fixed + per-key),
            // scaled so that simulated service work (slept, not spun)
            // dwarfs the harness's real CPU cost per RPC — the regime in
            // which the *Threads (ESs)* knob governs performance, as on
            // the paper's testbed. The fixed:per-key balance is what sets
            // the many-small-RPCs vs few-big-RPCs trade-off of Fig. 10.
            handler_cost: std::time::Duration::from_millis(2),
            handler_cost_per_key: std::time::Duration::from_micros(100),
            async_window: 64,
            pipeline_depth: 0,
            net_latency: std::time::Duration::from_micros(20),
            stage: Stage::Full,
            telemetry: TelemetryOptions::default(),
            rpc_deadline: None,
            retry_attempts: 0,
            retry_backoff: Duration::from_millis(5),
            fault_seed: 0,
            dead_server_threshold: 0,
        }
    }

    /// Table IV **C1**: 32 clients, 4 servers, batch 1024, **5 threads**,
    /// 32 databases — the ES-starved configuration of Figure 9.
    pub fn c1() -> Self {
        HepnosConfig {
            label: "C1".into(),
            ..Self::base()
        }
    }

    /// Table IV **C2**: C1 with **20 threads** — the Figure 9 remedy.
    pub fn c2() -> Self {
        HepnosConfig {
            label: "C2".into(),
            threads: 20,
            ..Self::base()
        }
    }

    /// Table IV **C3**: C2 with **8 databases** — the Figure 10 remedy
    /// for map-backend write serialization.
    pub fn c3() -> Self {
        HepnosConfig {
            label: "C3".into(),
            threads: 20,
            databases: 8,
            ..Self::base()
        }
    }

    /// Table IV **C4**: 2 clients, 16 threads, 8 databases, batch 1024.
    /// The §V-C4 configurations use a light-RPC cost profile: with only
    /// two clients and (in C5..C7) single-key puts, the paper's bottleneck
    /// is the client's progress path, not server service time.
    pub fn c4() -> Self {
        HepnosConfig {
            label: "C4".into(),
            total_clients: 2,
            clients_per_node: 1,
            threads: 16,
            databases: 8,
            events_per_client: 2048,
            handler_cost: std::time::Duration::from_micros(40),
            handler_cost_per_key: std::time::Duration::from_micros(30),
            cost: StorageCost {
                per_op: std::time::Duration::from_micros(10),
                per_key: std::time::Duration::from_micros(1),
            },
            ..Self::base()
        }
    }

    /// Table IV **C5**: C4 with **batch size 1** — the progress-starved
    /// configuration of Figures 11 and 12.
    pub fn c5() -> Self {
        HepnosConfig {
            label: "C5".into(),
            batch_size: 1,
            // Batch 1 is hundreds of times slower; shrink the event count
            // so the experiment stays in budget (the knob under study is
            // the batch size, not the total volume).
            events_per_client: 512,
            ..Self::c4()
        }
    }

    /// Table IV **C6**: C5 with `OFI_max_events` **64**.
    pub fn c6() -> Self {
        HepnosConfig {
            label: "C6".into(),
            ofi_max_events: 64,
            ..Self::c5()
        }
    }

    /// Table IV **C7**: C6 with a **dedicated client progress thread**.
    pub fn c7() -> Self {
        HepnosConfig {
            label: "C7".into(),
            client_progress_thread: true,
            ..Self::c6()
        }
    }

    /// The §VI overhead-study setup, shrunk: many clients and servers,
    /// large batches, map backend.
    pub fn overhead_study(stage: Stage) -> Self {
        HepnosConfig {
            label: format!("overhead-{stage}"),
            total_clients: 8,
            clients_per_node: 4,
            total_servers: 4,
            servers_per_node: 2,
            batch_size: 1024,
            threads: 8,
            databases: 8,
            client_progress_thread: false,
            ofi_max_events: 16,
            events_per_client: 4096,
            value_size: 64,
            cost: StorageCost::default_experiment(),
            handler_cost: std::time::Duration::from_micros(200),
            handler_cost_per_key: std::time::Duration::from_micros(10),
            async_window: 64,
            pipeline_depth: 0,
            net_latency: std::time::Duration::from_micros(20),
            stage,
            telemetry: TelemetryOptions::default(),
            rpc_deadline: None,
            retry_attempts: 0,
            retry_backoff: Duration::from_millis(5),
            fault_seed: 0,
            dead_server_threshold: 0,
        }
    }

    /// Turn on fault tolerance: per-attempt deadline `deadline`, up to
    /// `attempts` attempts per RPC, and dead-server detection after 3
    /// consecutive failures. The retry schedule derives from
    /// [`HepnosConfig::fault_seed`].
    #[must_use]
    pub fn with_fault_tolerance(mut self, deadline: Duration, attempts: usize) -> Self {
        self.rpc_deadline = Some(deadline);
        self.retry_attempts = attempts;
        self.dead_server_threshold = 3;
        self
    }

    /// Set the deterministic seed driving retry jitter (and, by
    /// convention, the experiment's fabric [`symbi_fabric::FaultPlan`]).
    #[must_use]
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Window client RPCs through a Margo pipeline gate of `depth`
    /// in-flight handles per server (`0` disables the window).
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// The [`RpcOptions`] the configuration prescribes for client RPCs.
    /// `sdskv_put_packed` overwrites the same keys on replay, so retried
    /// puts are marked idempotent and may be re-issued after a timeout.
    pub fn rpc_options(&self) -> RpcOptions {
        let mut options = RpcOptions::new();
        if let Some(deadline) = self.rpc_deadline {
            options = options.with_deadline(deadline);
        }
        if self.retry_attempts > 0 {
            options = options
                .with_retry(
                    RetryPolicy::new(self.retry_attempts as u32)
                        .with_base_backoff(self.retry_backoff)
                        .with_seed(self.fault_seed),
                )
                .idempotent(true);
        }
        if self.pipeline_depth > 0 {
            options = options.with_pipeline(self.pipeline_depth);
        }
        options
    }

    /// Total databases across the deployment (`servers × databases`).
    pub fn total_databases(&self) -> usize {
        self.total_servers * self.databases
    }

    /// Scale the workload volume (events per client) by `factor`, for
    /// quick smoke runs.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.events_per_client = ((self.events_per_client as f64 * factor).round() as usize).max(1);
        self
    }

    /// Render the Table IV row for this configuration.
    pub fn table_row(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            format!("{}; {}", self.total_clients, self.clients_per_node),
            format!("{}; {}", self.total_servers, self.servers_per_node),
            self.batch_size.to_string(),
            self.threads.to_string(),
            self.databases.to_string(),
            if self.client_progress_thread {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            self.ofi_max_events.to_string(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_four() {
        let c1 = HepnosConfig::c1();
        assert_eq!(
            (
                c1.total_clients,
                c1.total_servers,
                c1.batch_size,
                c1.threads,
                c1.databases
            ),
            (32, 4, 1024, 5, 32)
        );
        assert!(!c1.client_progress_thread);
        assert_eq!(c1.ofi_max_events, 16);

        assert_eq!(HepnosConfig::c2().threads, 20);
        assert_eq!(HepnosConfig::c3().databases, 8);
        let c4 = HepnosConfig::c4();
        assert_eq!((c4.total_clients, c4.threads, c4.databases), (2, 16, 8));
        assert_eq!(c4.batch_size, 1024);
        assert_eq!(HepnosConfig::c5().batch_size, 1);
        assert_eq!(HepnosConfig::c6().ofi_max_events, 64);
        assert!(HepnosConfig::c7().client_progress_thread);
    }

    #[test]
    fn knob_deltas_between_configs() {
        // Each successive configuration differs from its base by exactly
        // the knob the paper tunes.
        let (c1, c2) = (HepnosConfig::c1(), HepnosConfig::c2());
        assert_eq!(c1.databases, c2.databases);
        assert_ne!(c1.threads, c2.threads);
        let (c5, c6) = (HepnosConfig::c5(), HepnosConfig::c6());
        assert_eq!(c5.batch_size, c6.batch_size);
        assert_ne!(c5.ofi_max_events, c6.ofi_max_events);
        let (c6b, c7) = (HepnosConfig::c6(), HepnosConfig::c7());
        assert_eq!(c6b.ofi_max_events, c7.ofi_max_events);
        assert_ne!(c6b.client_progress_thread, c7.client_progress_thread);
    }

    #[test]
    fn total_databases_product() {
        assert_eq!(HepnosConfig::c1().total_databases(), 128);
        assert_eq!(HepnosConfig::c3().total_databases(), 32);
    }

    #[test]
    fn scaled_shrinks_workload() {
        let base = HepnosConfig::c1();
        let c = base.clone().scaled(0.25);
        assert_eq!(c.events_per_client, base.events_per_client / 4);
        assert!(HepnosConfig::c1().scaled(0.0).events_per_client >= 1);
    }

    #[test]
    fn table_row_has_eight_columns() {
        assert_eq!(HepnosConfig::c7().table_row().len(), 8);
    }

    #[test]
    fn default_rpc_options_are_legacy() {
        let opts = HepnosConfig::c1().rpc_options();
        assert_eq!(opts.deadline(), None);
        assert!(opts.retry().is_none());
        assert!(!opts.is_idempotent());
    }

    #[test]
    fn pipeline_depth_flows_into_rpc_options() {
        let legacy = HepnosConfig::c3();
        assert_eq!(legacy.rpc_options().pipeline(), None);
        let piped = HepnosConfig::c3().with_pipeline_depth(64);
        assert_eq!(piped.rpc_options().pipeline(), Some(64));
    }

    #[test]
    fn fault_tolerance_builders_apply() {
        let cfg = HepnosConfig::c3()
            .with_fault_tolerance(Duration::from_millis(50), 4)
            .with_fault_seed(42);
        let opts = cfg.rpc_options();
        assert_eq!(opts.deadline(), Some(Duration::from_millis(50)));
        assert!(opts.is_idempotent());
        let policy = opts.retry().expect("retry policy");
        assert_eq!(policy.max_attempts(), 4);
        assert_eq!(policy.seed(), 42);
        assert_eq!(cfg.dead_server_threshold, 3);
    }
}
