//! The HEPnOS client API: the dataset/run/subrun/event hierarchy, event
//! key hashing across databases, client-side batching, and the async
//! `sdskv_put_packed` flush path that dominates the paper's study.

use super::HepnosConfig;
use crate::sdskv::{KvPairs, PendingPutPacked, SdskvClient};
use std::collections::HashMap;
use std::collections::VecDeque;
use symbi_fabric::Addr;
use symbi_margo::{MargoConfig, MargoError, MargoInstance};
use symbi_mercury::RpcStatus;

/// The hierarchical key of one event (paper §V-C1: "Data in HEPnOS is
/// arranged in a hierarchy of datasets, runs, subruns, and events").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EventKey {
    /// Dataset name.
    pub dataset: String,
    /// Run number.
    pub run: u32,
    /// Subrun number.
    pub subrun: u32,
    /// Event number.
    pub event: u32,
}

impl EventKey {
    /// Canonical byte encoding used as the SDSKV key.
    pub fn to_bytes(&self) -> Vec<u8> {
        format!(
            "{}/{:08x}/{:08x}/{:08x}",
            self.dataset, self.run, self.subrun, self.event
        )
        .into_bytes()
    }

    /// The deployment-global database index this event hashes to — the
    /// origin-side "hashing scheme using the key and the total number of
    /// databases" of §V-C3.
    pub fn db_index(&self, total_databases: usize) -> usize {
        let bytes = self.to_bytes();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in &bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % total_databases as u64) as usize
    }
}

/// One in-flight packed put, remembered with enough context to attribute
/// its outcome to a server when it settles.
struct InflightPut {
    server: usize,
    pairs: u64,
    pending: PendingPutPacked,
}

/// A HEPnOS client process: owns its Margo client instance and the
/// per-database write batches.
///
/// When the configuration enables fault tolerance
/// ([`HepnosConfig::with_fault_tolerance`]), every RPC carries the
/// config's deadline/retry [`symbi_margo::RpcOptions`], and a server that
/// keeps failing after retries is declared dead: its batches are skipped
/// (counted in [`HepnosClient::skipped_events`]) instead of failing the
/// whole load, and already-issued batches it never acknowledged are
/// counted in [`HepnosClient::lost_events`].
pub struct HepnosClient {
    margo: MargoInstance,
    sdskv: Vec<SdskvClient>,
    databases_per_server: usize,
    batch_size: usize,
    async_window: usize,
    /// Consecutive put failures after which a server is declared dead
    /// (0 = legacy fail-fast behavior).
    dead_server_threshold: usize,
    /// Pending pairs grouped by global database index.
    batches: HashMap<usize, KvPairs>,
    /// Pairs accumulated since the last flush (across databases).
    pending_pairs: usize,
    /// In-flight async puts, oldest first.
    inflight: VecDeque<InflightPut>,
    /// Events issued to the service (not necessarily acknowledged).
    stored: u64,
    /// Events acknowledged by a server.
    acked: u64,
    /// Events issued but never acknowledged (put failed after retries).
    lost: u64,
    /// Events rejected at admission with [`RpcStatus::Overloaded`] (the
    /// server's shed gate) — deliberate backpressure, counted apart from
    /// `lost` so loader accounting can tell collapse from control.
    shed: u64,
    /// Events never issued because their server was already dead.
    skipped: u64,
    /// Per-server consecutive put failures.
    consecutive_failures: Vec<usize>,
}

impl HepnosClient {
    /// Create a client connected to the deployment's servers.
    pub fn connect(
        fabric: &symbi_fabric::Fabric,
        name: &str,
        server_addrs: &[Addr],
        config: &HepnosConfig,
    ) -> Self {
        Self::connect_with_telemetry(
            fabric,
            name,
            server_addrs,
            config,
            symbi_margo::TelemetryOptions::default(),
        )
    }

    /// [`HepnosClient::connect`] with live telemetry on the client's own
    /// Margo instance — a multi-process deployment gives each client
    /// process its own monitor period, scrape port, and flight ring, so
    /// the client-origin halves of every span land in a ring that
    /// `symbi-analyze` can merge with the servers'.
    pub fn connect_with_telemetry(
        fabric: &symbi_fabric::Fabric,
        name: &str,
        server_addrs: &[Addr],
        config: &HepnosConfig,
        telemetry: symbi_margo::TelemetryOptions,
    ) -> Self {
        let mut margo_config = MargoConfig::client(name)
            .with_stage(config.stage)
            .with_ofi_max_events(config.ofi_max_events)
            .with_dedicated_progress(config.client_progress_thread);
        margo_config.telemetry = telemetry;
        let margo = MargoInstance::new(fabric.clone(), margo_config);
        let options = config.rpc_options();
        let sdskv: Vec<SdskvClient> = server_addrs
            .iter()
            .map(|a| SdskvClient::new(margo.clone(), *a).with_options(options.clone()))
            .collect();
        let num_servers = sdskv.len();
        HepnosClient {
            margo,
            sdskv,
            databases_per_server: config.databases,
            batch_size: config.batch_size.max(1),
            async_window: config.async_window.max(1),
            dead_server_threshold: config.dead_server_threshold,
            batches: HashMap::new(),
            pending_pairs: 0,
            inflight: VecDeque::new(),
            stored: 0,
            acked: 0,
            lost: 0,
            shed: 0,
            skipped: 0,
            consecutive_failures: vec![0; num_servers],
        }
    }

    /// This client's Margo instance (for instrumentation harvest).
    pub fn margo(&self) -> &MargoInstance {
        &self.margo
    }

    /// Total databases across the deployment.
    pub fn total_databases(&self) -> usize {
        self.sdskv.len() * self.databases_per_server
    }

    /// Buffer one event for storage; flushes full batches.
    pub fn store_event(&mut self, key: &EventKey, value: Vec<u8>) -> Result<(), MargoError> {
        let db = key.db_index(self.total_databases());
        self.batches
            .entry(db)
            .or_default()
            .push((key.to_bytes(), value));
        self.pending_pairs += 1;
        if self.pending_pairs >= self.batch_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Whether a server has exhausted its failure budget and is skipped.
    fn server_is_dead(&self, server: usize) -> bool {
        self.dead_server_threshold > 0
            && self.consecutive_failures[server] >= self.dead_server_threshold
    }

    /// Account for one settled put. In legacy mode (threshold 0) a
    /// failure propagates; with dead-server detection it is recorded and
    /// the load keeps going. A terminal `Overloaded` rejection is the
    /// server *shedding on purpose*: it lands in the `shed` bucket, not
    /// `lost`, and does not count toward declaring the server dead (the
    /// admission gate answering is proof of life).
    fn settle(&mut self, put: InflightPut) -> Result<(), MargoError> {
        match put.pending.wait() {
            Ok(_) => {
                self.acked += put.pairs;
                self.consecutive_failures[put.server] = 0;
                Ok(())
            }
            Err(MargoError::Remote(RpcStatus::Overloaded)) => {
                self.shed += put.pairs;
                self.consecutive_failures[put.server] = 0;
                if self.dead_server_threshold == 0 {
                    Err(MargoError::Remote(RpcStatus::Overloaded))
                } else {
                    Ok(())
                }
            }
            Err(e) => {
                self.lost += put.pairs;
                self.consecutive_failures[put.server] += 1;
                if self.dead_server_threshold == 0 {
                    Err(e)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Issue `sdskv_put_packed` for every non-empty batch, asynchronously
    /// with the configured in-flight window. Batches bound for a dead
    /// server are dropped and counted as skipped.
    pub fn flush(&mut self) -> Result<(), MargoError> {
        let batches = std::mem::take(&mut self.batches);
        self.pending_pairs = 0;
        let mut groups: Vec<(usize, KvPairs)> = batches.into_iter().collect();
        groups.sort_by_key(|(db, _)| *db);
        for (global_db, pairs) in groups {
            let server = global_db / self.databases_per_server;
            let local_db = (global_db % self.databases_per_server) as u32;
            let n = pairs.len() as u64;
            if self.server_is_dead(server) {
                self.skipped += n;
                continue;
            }
            let pending = self.sdskv[server].put_packed_async(local_db, &pairs);
            self.inflight.push_back(InflightPut {
                server,
                pairs: n,
                pending,
            });
            self.stored += n;
            while self.inflight.len() >= self.async_window {
                let oldest = self.inflight.pop_front().expect("non-empty");
                self.settle(oldest)?;
            }
        }
        Ok(())
    }

    /// Flush remaining batches and wait for every in-flight put. Returns
    /// the number of *acknowledged* events (equal to the issued count when
    /// nothing failed).
    pub fn drain(&mut self) -> Result<u64, MargoError> {
        self.flush()?;
        while let Some(p) = self.inflight.pop_front() {
            self.settle(p)?;
        }
        Ok(self.acked)
    }

    /// Read one event back (post-load verification).
    pub fn load_event(&self, key: &EventKey) -> Result<Option<Vec<u8>>, MargoError> {
        let db = key.db_index(self.total_databases());
        let server = db / self.databases_per_server;
        let local_db = (db % self.databases_per_server) as u32;
        self.sdskv[server].get(local_db, &key.to_bytes())
    }

    /// Events stored so far (issued, not necessarily yet acknowledged —
    /// call [`HepnosClient::drain`] first for an exact count).
    pub fn stored(&self) -> u64 {
        self.stored
    }

    /// Events acknowledged by a server.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Events issued whose put failed even after retries.
    pub fn lost_events(&self) -> u64 {
        self.lost
    }

    /// Events rejected by a server's admission gate with
    /// [`RpcStatus::Overloaded`] after any retries — shed load, reported
    /// separately from [`HepnosClient::lost_events`].
    pub fn shed_events(&self) -> u64 {
        self.shed
    }

    /// Events never issued because their server was declared dead.
    pub fn skipped_events(&self) -> u64 {
        self.skipped
    }

    /// Indices of servers currently considered dead.
    pub fn dead_servers(&self) -> Vec<usize> {
        (0..self.sdskv.len())
            .filter(|&s| self.server_is_dead(s))
            .collect()
    }

    /// Tear down the client's Margo instance.
    pub fn finalize(self) {
        self.margo.finalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hepnos::HepnosDeployment;
    use symbi_fabric::{Fabric, NetworkModel};

    fn tiny_config() -> HepnosConfig {
        let mut cfg = HepnosConfig::c3();
        cfg.total_servers = 2;
        cfg.threads = 2;
        cfg.databases = 4;
        cfg.batch_size = 16;
        cfg.cost = crate::kv::StorageCost::free();
        cfg
    }

    #[test]
    fn event_key_encoding_and_hashing() {
        let k = EventKey {
            dataset: "nova".into(),
            run: 1,
            subrun: 2,
            event: 3,
        };
        let bytes = k.to_bytes();
        assert!(String::from_utf8(bytes.clone())
            .unwrap()
            .starts_with("nova/"));
        // Hashing is deterministic and in range.
        assert_eq!(k.db_index(8), k.db_index(8));
        assert!(k.db_index(8) < 8);
        // Different events usually map to different databases.
        let spread: std::collections::HashSet<usize> = (0..64u32)
            .map(|e| {
                EventKey {
                    dataset: "nova".into(),
                    run: 1,
                    subrun: 1,
                    event: e,
                }
                .db_index(8)
            })
            .collect();
        assert!(spread.len() >= 6, "hash should spread events over dbs");
    }

    #[test]
    fn store_flush_load_roundtrip() {
        let fabric = Fabric::new(NetworkModel::instant());
        let cfg = tiny_config();
        let dep = HepnosDeployment::launch(&fabric, &cfg);
        let mut client = HepnosClient::connect(&fabric, "hc-test", &dep.addrs(), &cfg);
        let keys: Vec<EventKey> = (0..100u32)
            .map(|e| EventKey {
                dataset: "nova".into(),
                run: 1,
                subrun: e / 10,
                event: e,
            })
            .collect();
        for (i, k) in keys.iter().enumerate() {
            client.store_event(k, vec![i as u8; 32]).unwrap();
        }
        let stored = client.drain().unwrap();
        assert_eq!(stored, 100);
        assert_eq!(dep.total_events_stored(), 100);
        // Every event is readable from the right database.
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(client.load_event(k).unwrap(), Some(vec![i as u8; 32]));
        }
        client.finalize();
        dep.finalize();
    }

    #[test]
    fn pipelined_load_stores_every_event() {
        let fabric = Fabric::new(NetworkModel::instant());
        // Deep engine pipeline under a small put batch: many windowed
        // RPCs in flight toward each server, same end state as legacy.
        let mut cfg = tiny_config().with_pipeline_depth(16);
        cfg.batch_size = 4;
        cfg.async_window = 32;
        let dep = HepnosDeployment::launch(&fabric, &cfg);
        let mut client = HepnosClient::connect(&fabric, "hc-pipe", &dep.addrs(), &cfg);
        let keys: Vec<EventKey> = (0..100u32)
            .map(|e| EventKey {
                dataset: "nova".into(),
                run: 2,
                subrun: e / 10,
                event: e,
            })
            .collect();
        for (i, k) in keys.iter().enumerate() {
            client.store_event(k, vec![i as u8; 32]).unwrap();
        }
        assert_eq!(client.drain().unwrap(), 100);
        assert_eq!(dep.total_events_stored(), 100);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(client.load_event(k).unwrap(), Some(vec![i as u8; 32]));
        }
        client.finalize();
        dep.finalize();
    }

    #[test]
    fn batch_size_one_flushes_every_event() {
        let fabric = Fabric::new(NetworkModel::instant());
        let mut cfg = tiny_config();
        cfg.batch_size = 1;
        cfg.async_window = 4;
        let dep = HepnosDeployment::launch(&fabric, &cfg);
        let mut client = HepnosClient::connect(&fabric, "hc-b1", &dep.addrs(), &cfg);
        for e in 0..20u32 {
            client
                .store_event(
                    &EventKey {
                        dataset: "d".into(),
                        run: 0,
                        subrun: 0,
                        event: e,
                    },
                    vec![1],
                )
                .unwrap();
        }
        assert_eq!(client.drain().unwrap(), 20);
        assert_eq!(dep.total_events_stored(), 20);
        client.finalize();
        dep.finalize();
    }
}
