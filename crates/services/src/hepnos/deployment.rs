//! Launching a HEPnOS service deployment: `total_servers` Margo server
//! instances (thread groups standing in for the paper's provider
//! processes), each hosting one SDSKV provider with `databases` map
//! databases and one BAKE provider (paper Figure 8).

use super::HepnosConfig;
use crate::bake::{BakeProvider, BakeSpec};
use crate::kv::{BackendKind, BackendMode};
use crate::sdskv::{SdskvProvider, SdskvSpec};
use std::sync::Arc;
use symbi_core::{ProfileRow, TraceEvent};
use symbi_fabric::{Addr, Fabric};
use symbi_margo::{MargoConfig, MargoInstance};

/// A running HEPnOS deployment.
pub struct HepnosDeployment {
    servers: Vec<ServerNode>,
    databases_per_server: usize,
}

struct ServerNode {
    margo: MargoInstance,
    sdskv: Arc<SdskvProvider>,
    _bake: Arc<BakeProvider>,
}

impl HepnosDeployment {
    /// Launch all service providers per `config`.
    pub fn launch(fabric: &Fabric, config: &HepnosConfig) -> Self {
        let servers = (0..config.total_servers)
            .map(|s| {
                let mut margo_config =
                    MargoConfig::server(format!("hepnos-server-{s}"), config.threads)
                        .with_stage(config.stage)
                        .with_ofi_max_events(config.ofi_max_events);
                margo_config.telemetry = config.telemetry.clone();
                // Per-server disambiguation: offset explicit scrape ports
                // by the server index (ephemeral port 0 needs none) and
                // give each server its own flight-recorder subdirectory.
                if let Some(port) = margo_config.telemetry.prometheus_port {
                    if port != 0 {
                        margo_config.telemetry.prometheus_port = Some(port + s as u16);
                    }
                }
                if let Some(fr) = &mut margo_config.telemetry.flight_recorder {
                    fr.dir = fr.dir.join(format!("server-{s}"));
                }
                let margo = MargoInstance::new(fabric.clone(), margo_config);
                let sdskv = SdskvProvider::attach(
                    &margo,
                    SdskvSpec {
                        num_databases: config.databases,
                        backend: BackendKind::Map,
                        mode: BackendMode::Simulated(config.cost),
                        handler_cost: config.handler_cost,
                        handler_cost_per_key: config.handler_cost_per_key,
                    },
                );
                let bake = BakeProvider::attach(&margo, BakeSpec::default());
                ServerNode {
                    margo,
                    sdskv,
                    _bake: bake,
                }
            })
            .collect();
        HepnosDeployment {
            servers,
            databases_per_server: config.databases,
        }
    }

    /// Addresses of all service providers.
    pub fn addrs(&self) -> Vec<Addr> {
        self.servers.iter().map(|s| s.margo.addr()).collect()
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Databases hosted per server.
    pub fn databases_per_server(&self) -> usize {
        self.databases_per_server
    }

    /// Total events stored across all servers and databases.
    pub fn total_events_stored(&self) -> usize {
        self.servers.iter().map(|s| s.sdskv.total_len()).sum()
    }

    /// Server Margo instances (for sampling pools and instrumentation).
    pub fn margo_instances(&self) -> Vec<&MargoInstance> {
        self.servers.iter().map(|s| &s.margo).collect()
    }

    /// Bound Prometheus scrape addresses of all servers exposing one.
    pub fn prometheus_addrs(&self) -> Vec<std::net::SocketAddr> {
        self.servers
            .iter()
            .filter_map(|s| s.margo.prometheus_addr())
            .collect()
    }

    /// Harvest all server-side profile rows.
    pub fn server_profiles(&self) -> Vec<ProfileRow> {
        self.servers
            .iter()
            .flat_map(|s| s.margo.symbiosys().profiler().snapshot())
            .collect()
    }

    /// Harvest all server-side trace events.
    pub fn server_traces(&self) -> Vec<TraceEvent> {
        self.servers
            .iter()
            .flat_map(|s| s.margo.symbiosys().tracer().snapshot())
            .collect()
    }

    /// Reset server-side instrumentation between repetitions.
    pub fn reset_instrumentation(&self) {
        for s in &self.servers {
            s.margo.symbiosys().profiler().reset();
            s.margo.symbiosys().tracer().reset();
        }
    }

    /// Shut everything down.
    pub fn finalize(self) {
        for s in self.servers {
            s.margo.finalize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_fabric::NetworkModel;

    #[test]
    fn launch_matches_config_shape() {
        let fabric = Fabric::new(NetworkModel::instant());
        let mut cfg = HepnosConfig::c3();
        cfg.total_servers = 2;
        cfg.threads = 2;
        let dep = HepnosDeployment::launch(&fabric, &cfg);
        assert_eq!(dep.num_servers(), 2);
        assert_eq!(dep.databases_per_server(), 8);
        assert_eq!(dep.addrs().len(), 2);
        assert_eq!(dep.total_events_stored(), 0);
        dep.finalize();
    }
}
