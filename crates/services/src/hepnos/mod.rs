//! HEPnOS — the Mochi storage service for high-energy-physics events
//! (paper §V-C, Figure 8): data arranged in datasets / runs / subruns /
//! events, with each service provider node hosting a BAKE provider for
//! object data and an SDSKV provider for metadata. Clients contact the
//! providers directly; the data-loader workflow step writes event data
//! through batched `sdskv_put_packed` RPCs — "the only dominant RPC
//! callpath generated, regardless of scale".

mod client;
mod config;
mod dataloader;
mod deployment;

pub use client::{EventKey, HepnosClient};
pub use config::HepnosConfig;
pub use dataloader::{run_data_loader, DataLoaderReport};
pub use deployment::HepnosDeployment;
