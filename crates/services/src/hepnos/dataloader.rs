//! The HEPnOS data-loader (paper §V-C1): the workflow step that reads
//! physics-event files and writes the events into the HEPnOS service.
//! The paper's HDF5 inputs are replaced by a deterministic synthetic
//! event generator (the study only depends on key/value counts and
//! sizes); everything downstream — batching, db hashing, batched
//! `sdskv_put_packed` — follows the production data-loader.

use super::{EventKey, HepnosClient, HepnosConfig, HepnosDeployment};
use std::sync::Arc;
use std::time::Instant;
use symbi_core::{ProfileRow, TraceEvent};
use symbi_fabric::Fabric;
use symbi_tasking::AbtBarrier;

/// Results of one data-loader run.
#[derive(Debug)]
pub struct DataLoaderReport {
    /// Wall time of the load (seconds, slowest client).
    pub elapsed_seconds: f64,
    /// Total events acknowledged by the service.
    pub events: u64,
    /// Events issued but never acknowledged (puts that failed even after
    /// any configured retries).
    pub lost_events: u64,
    /// Events rejected at admission with `Overloaded` — the server shed
    /// them on purpose. Reported apart from `lost_events` so a run under
    /// the adaptive shed gate reads as backpressure, not data loss.
    pub shed_events: u64,
    /// Events never issued because their server had been declared dead.
    pub skipped_events: u64,
    /// Client-side profile rows from all clients.
    pub client_profiles: Vec<ProfileRow>,
    /// Client-side trace events from all clients.
    pub client_traces: Vec<TraceEvent>,
}

impl DataLoaderReport {
    /// Events per second over the whole run.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.events as f64 / self.elapsed_seconds
        } else {
            0.0
        }
    }

    /// Whether every generated event was acknowledged (shed events were
    /// not, so a shedding run is by definition incomplete).
    pub fn is_complete(&self) -> bool {
        self.lost_events == 0 && self.shed_events == 0 && self.skipped_events == 0
    }
}

/// Deterministic synthetic event payload (stands in for HDF5 content).
pub(crate) fn synthesize_value(client: usize, event: u32, size: usize) -> Vec<u8> {
    let mut state = ((client as u64) << 32)
        .wrapping_add(event as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        | 1;
    (0..size)
        .map(|_| {
            // xorshift64 keeps generation cheap and reproducible.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xFF) as u8
        })
        .collect()
}

/// Run the data-loader against a deployment: `total_clients` client
/// threads, each generating `events_per_client` events and storing them
/// with the configured batch size. Returns the slowest-client wall time
/// (the metric of the paper's §VI).
pub fn run_data_loader(
    fabric: &Fabric,
    deployment: &HepnosDeployment,
    config: &HepnosConfig,
) -> DataLoaderReport {
    let addrs = deployment.addrs();
    let barrier = Arc::new(AbtBarrier::new(config.total_clients + 1));
    let handles: Vec<_> = (0..config.total_clients)
        .map(|c| {
            let fabric = fabric.clone();
            let addrs = addrs.clone();
            let config = config.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client =
                    HepnosClient::connect(&fabric, &format!("dataloader-{c}"), &addrs, &config);
                barrier.wait();
                let start = Instant::now();
                // A store/drain error (possible only without dead-server
                // detection) abandons this client's remaining events and
                // reports a partial write instead of panicking the run.
                let mut store_error = false;
                for e in 0..config.events_per_client as u32 {
                    let key = EventKey {
                        dataset: "nova".into(),
                        run: c as u32,
                        subrun: e / 1024,
                        event: e,
                    };
                    if let Err(err) =
                        client.store_event(&key, synthesize_value(c, e, config.value_size))
                    {
                        eprintln!("[hepnos-dataloader] client {c}: store_event failed: {err}");
                        store_error = true;
                        break;
                    }
                }
                let acked = match client.drain() {
                    Ok(n) => n,
                    Err(err) => {
                        eprintln!("[hepnos-dataloader] client {c}: drain failed: {err}");
                        store_error = true;
                        client.acked()
                    }
                };
                let elapsed = start.elapsed().as_secs_f64();
                let generated = config.events_per_client as u64;
                let accounted =
                    acked + client.lost_events() + client.shed_events() + client.skipped_events();
                // Events neither issued nor skipped (abandoned by an
                // early error exit) still count as lost.
                let lost = client.lost_events()
                    + if store_error {
                        generated.saturating_sub(accounted)
                    } else {
                        0
                    };
                let shed = client.shed_events();
                let skipped = client.skipped_events();
                let profiles = client.margo().symbiosys().profiler().snapshot();
                let traces = client.margo().symbiosys().tracer().snapshot();
                client.finalize();
                (elapsed, acked, lost, shed, skipped, profiles, traces)
            })
        })
        .collect();
    barrier.wait();
    let mut elapsed_seconds: f64 = 0.0;
    let mut events = 0u64;
    let mut lost_events = 0u64;
    let mut shed_events = 0u64;
    let mut skipped_events = 0u64;
    let mut client_profiles = Vec::new();
    let mut client_traces = Vec::new();
    for h in handles {
        let (e, n, lost, shed, skipped, p, t) = h.join().expect("data-loader client panicked");
        elapsed_seconds = elapsed_seconds.max(e);
        events += n;
        lost_events += lost;
        shed_events += shed;
        skipped_events += skipped;
        client_profiles.extend(p);
        client_traces.extend(t);
    }
    DataLoaderReport {
        elapsed_seconds,
        events,
        lost_events,
        shed_events,
        skipped_events,
        client_profiles,
        client_traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::StorageCost;
    use symbi_fabric::NetworkModel;

    #[test]
    fn synthetic_values_are_deterministic() {
        assert_eq!(synthesize_value(1, 2, 16), synthesize_value(1, 2, 16));
        assert_ne!(synthesize_value(1, 2, 16), synthesize_value(1, 3, 16));
        assert_eq!(synthesize_value(0, 0, 64).len(), 64);
    }

    #[test]
    fn small_load_completes_and_counts_match() {
        let fabric = Fabric::new(NetworkModel::instant());
        let mut cfg = HepnosConfig::c3();
        cfg.total_clients = 2;
        cfg.total_servers = 2;
        cfg.threads = 2;
        cfg.databases = 4;
        cfg.events_per_client = 64;
        cfg.batch_size = 16;
        cfg.cost = StorageCost::free();
        let dep = HepnosDeployment::launch(&fabric, &cfg);
        let report = run_data_loader(&fabric, &dep, &cfg);
        assert_eq!(report.events, 128);
        assert!(report.is_complete());
        assert_eq!(dep.total_events_stored(), 128);
        assert!(report.elapsed_seconds > 0.0);
        assert!(report.throughput() > 0.0);
        // The dominant callpath must be sdskv_put_packed, as in §V-C1.
        let put_packed = symbi_core::Callpath::root("sdskv_put_packed");
        let total: u64 = report
            .client_profiles
            .iter()
            .filter(|r| r.callpath == put_packed)
            .map(|r| r.count)
            .sum();
        assert!(total > 0, "expected sdskv_put_packed profile rows");
        dep.finalize();
    }
}
