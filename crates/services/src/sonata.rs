//! Sonata — the Mochi JSON document microservice (paper §V-B):
//! "a microservice for remotely accessing and storing JSON objects ...
//! based on an UnQLite database \[with\] the ability to remotely run
//! analysis on the stored JSON objects through Jx9 scripts."
//!
//! The reproduction stores parsed [`crate::json::Value`] documents and
//! replaces Jx9 with a small filter-expression language ([`Query`]).
//! Crucially for the paper's Figure 7, documents are transferred **as RPC
//! metadata** (not bulk): a large `sonata_store_multi_json` batch
//! overflows Mercury's eager buffer, triggering the internal RDMA path
//! and a heavy input-deserialization step on the target.

use crate::json::{parse, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use symbi_fabric::Addr;
use symbi_margo::{MargoError, MargoInstance, RpcOptions};
use symbi_mercury::{CodecError, Decoder, Encoder, Wire};

// ---------------------------------------------------------------------
// Query language (Jx9 stand-in)
// ---------------------------------------------------------------------

/// Comparison operators of the filter language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A parsed filter query.
///
/// Grammar: `expr := and ('||' and)* ; and := term ('&&' term)* ;
/// term := '(' expr ')' | path op literal`, where `path` is a dotted
/// field path and `literal` is a JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Compare the value at a path against a literal.
    Cmp {
        /// Dotted field path.
        path: String,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        literal: Value,
    },
    /// Conjunction.
    And(Vec<Query>),
    /// Disjunction.
    Or(Vec<Query>),
}

impl Query {
    /// Parse a filter expression.
    pub fn parse(input: &str) -> Result<Query, String> {
        let mut p = QueryParser { src: input, pos: 0 };
        let q = p.or_expr()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(q)
    }

    /// Evaluate against a document.
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            Query::And(qs) => qs.iter().all(|q| q.matches(doc)),
            Query::Or(qs) => qs.iter().any(|q| q.matches(doc)),
            Query::Cmp { path, op, literal } => {
                let Some(v) = doc.get_path(path) else {
                    return false;
                };
                match (v, literal) {
                    (Value::Num(a), Value::Num(b)) => cmp_f64(*a, *b, *op),
                    (Value::Str(a), Value::Str(b)) => cmp_ord(a.cmp(b), *op),
                    (Value::Bool(a), Value::Bool(b)) => match op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        _ => false,
                    },
                    (Value::Null, Value::Null) => matches!(op, CmpOp::Eq),
                    _ => matches!(op, CmpOp::Ne),
                }
            }
        }
    }
}

fn cmp_f64(a: f64, b: f64, op: CmpOp) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn cmp_ord(ord: std::cmp::Ordering, op: CmpOp) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

struct QueryParser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> QueryParser<'a> {
    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(' ') {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<Query, String> {
        let mut terms = vec![self.and_expr()?];
        while self.eat("||") {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Query::Or(terms)
        })
    }

    fn and_expr(&mut self) -> Result<Query, String> {
        let mut terms = vec![self.term()?];
        while self.eat("&&") {
            terms.push(self.term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Query::And(terms)
        })
    }

    fn term(&mut self) -> Result<Query, String> {
        self.skip_ws();
        if self.eat("(") {
            let q = self.or_expr()?;
            if !self.eat(")") {
                return Err("expected ')'".to_string());
            }
            return Ok(q);
        }
        let path = self.path()?;
        let op = self.op()?;
        let literal = self.literal()?;
        Ok(Query::Cmp { path, op, literal })
    }

    fn path(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphanumeric()
                || bytes[self.pos] == b'_'
                || bytes[self.pos] == b'.')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected field path at byte {start}"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn op(&mut self) -> Result<CmpOp, String> {
        self.skip_ws();
        for (tok, op) in [
            ("==", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat(tok) {
                return Ok(op);
            }
        }
        Err(format!("expected comparison operator at byte {}", self.pos))
    }

    fn literal(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        // Delegate scalar parsing to the JSON parser by finding the token
        // end (string literals may contain spaces).
        if rest.starts_with('"') {
            // Find the closing quote, honoring escapes.
            let bytes = rest.as_bytes();
            let mut i = 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => break,
                    _ => i += 1,
                }
            }
            if i >= bytes.len() {
                return Err("unterminated string literal".to_string());
            }
            let tok = &rest[..=i];
            self.pos += tok.len();
            return parse(tok).map_err(|e| e.to_string());
        }
        let end = rest.find([' ', ')', '&', '|']).unwrap_or(rest.len());
        let tok = &rest[..end];
        if tok.is_empty() {
            return Err("expected literal".to_string());
        }
        self.pos += tok.len();
        parse(tok).map_err(|e| e.to_string())
    }
}

// ---------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------

/// Arguments carrying a database name plus one JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreArgs {
    /// Database (collection) name.
    pub db: String,
    /// The document as JSON text (RPC metadata, not bulk).
    pub json: String,
}

impl Wire for StoreArgs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.db);
        enc.put_str(&self.json);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(StoreArgs {
            db: dec.get_str()?,
            json: dec.get_str()?,
        })
    }
}

/// Arguments of `sonata_store_multi_json`: a batch of documents shipped
/// inline as request metadata (the Figure 7 workload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMultiArgs {
    /// Database name.
    pub db: String,
    /// Documents as JSON texts.
    pub docs: Vec<String>,
}

impl Wire for StoreMultiArgs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.db);
        enc.put_u32(self.docs.len() as u32);
        for d in &self.docs {
            enc.put_str(d);
        }
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let db = dec.get_str()?;
        let n = dec.get_u32()? as usize;
        if n > dec.remaining() {
            return Err(CodecError::Invalid("doc count"));
        }
        let mut docs = Vec::with_capacity(n);
        for _ in 0..n {
            docs.push(dec.get_str()?);
        }
        Ok(StoreMultiArgs { db, docs })
    }
}

/// Arguments addressing one stored record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchArgs {
    /// Database name.
    pub db: String,
    /// Record id.
    pub id: u64,
}

impl Wire for FetchArgs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.db);
        enc.put_u64(self.id);
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(FetchArgs {
            db: dec.get_str()?,
            id: dec.get_u64()?,
        })
    }
}

/// Server-side view of `sonata_store_multi_json` input: decoding *parses*
/// every document, the way Sonata's proc routine materializes documents
/// for UnQLite — so the cost shows up in the
/// `input_deserialization_time` PVAR, as in the paper's Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMultiParsed {
    /// Database name.
    pub db: String,
    /// Parsed documents.
    pub docs: Vec<Value>,
}

impl Wire for StoreMultiParsed {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.db);
        enc.put_u32(self.docs.len() as u32);
        for d in &self.docs {
            enc.put_str(&d.to_json());
        }
    }
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let db = dec.get_str()?;
        let n = dec.get_u32()? as usize;
        if n > dec.remaining() {
            return Err(CodecError::Invalid("doc count"));
        }
        let mut docs = Vec::with_capacity(n);
        for _ in 0..n {
            let text = dec.get_str()?;
            docs.push(parse(&text).map_err(|_| CodecError::Invalid("json document"))?);
        }
        Ok(StoreMultiParsed { db, docs })
    }
}

// ---------------------------------------------------------------------
// Provider
// ---------------------------------------------------------------------

/// Configuration of a Sonata provider.
#[derive(Debug, Clone, Copy, Default)]
pub struct SonataSpec {
    /// Simulated UnQLite insert cost per document.
    pub insert_cost_per_doc: std::time::Duration,
}

#[derive(Default)]
struct Collection {
    docs: Vec<Value>,
}

/// The server-side Sonata provider.
pub struct SonataProvider {
    dbs: Mutex<HashMap<String, Collection>>,
    spec: SonataSpec,
}

impl SonataProvider {
    /// Build the provider and register its RPCs on a Margo server.
    pub fn attach(margo: &MargoInstance) -> Arc<SonataProvider> {
        Self::attach_with(margo, SonataSpec::default())
    }

    /// Build the provider with an explicit spec.
    pub fn attach_with(margo: &MargoInstance, spec: SonataSpec) -> Arc<SonataProvider> {
        let provider = Arc::new(SonataProvider {
            dbs: Mutex::new(HashMap::new()),
            spec,
        });

        let p = provider.clone();
        margo.register_fn("sonata_create_db_rpc", move |_m, name: String| {
            p.dbs.lock().entry(name).or_default();
            Ok::<u32, String>(1)
        });

        let p = provider.clone();
        margo.register_fn("sonata_store_rpc", move |_m, args: StoreArgs| {
            let doc = parse(&args.json).map_err(|e| e.to_string())?;
            let mut dbs = p.dbs.lock();
            let coll = dbs
                .get_mut(&args.db)
                .ok_or_else(|| format!("no database {}", args.db))?;
            coll.docs.push(doc);
            Ok::<u64, String>(coll.docs.len() as u64 - 1)
        });

        let p = provider.clone();
        margo.register_fn(
            "sonata_store_multi_json",
            move |_m, args: StoreMultiParsed| {
                // Documents were materialized during input deserialization
                // (see StoreMultiParsed); the execution step is the
                // UnQLite-like insert, charged per document.
                let n = args.docs.len();
                let mut dbs = p.dbs.lock();
                let coll = dbs
                    .get_mut(&args.db)
                    .ok_or_else(|| format!("no database {}", args.db))?;
                let cost = p.spec.insert_cost_per_doc * n as u32;
                if !cost.is_zero() {
                    std::thread::sleep(cost);
                }
                let first = coll.docs.len() as u64;
                coll.docs.extend(args.docs);
                Ok::<(u64, u64), String>((first, n as u64))
            },
        );

        let p = provider.clone();
        margo.register_fn("sonata_fetch_rpc", move |_m, args: FetchArgs| {
            let dbs = p.dbs.lock();
            let coll = dbs
                .get(&args.db)
                .ok_or_else(|| format!("no database {}", args.db))?;
            coll.docs
                .get(args.id as usize)
                .map(|d| d.to_json())
                .ok_or_else(|| format!("no record {}", args.id))
        });

        let p = provider.clone();
        margo.register_fn("sonata_exec_query_rpc", move |_m, args: StoreArgs| {
            // `json` carries the filter text for this RPC.
            let query = Query::parse(&args.json)?;
            let dbs = p.dbs.lock();
            let coll = dbs
                .get(&args.db)
                .ok_or_else(|| format!("no database {}", args.db))?;
            Ok::<Vec<String>, String>(
                coll.docs
                    .iter()
                    .filter(|d| query.matches(d))
                    .map(|d| d.to_json())
                    .collect(),
            )
        });

        let p = provider.clone();
        margo.register_fn("sonata_count_rpc", move |_m, db: String| {
            let dbs = p.dbs.lock();
            Ok::<u64, String>(
                dbs.get(&db)
                    .ok_or_else(|| format!("no database {db}"))?
                    .docs
                    .len() as u64,
            )
        });

        provider
    }

    /// Number of documents in a collection (0 if missing).
    pub fn count(&self, db: &str) -> usize {
        self.dbs.lock().get(db).map(|c| c.docs.len()).unwrap_or(0)
    }
}

/// Client-side Sonata API.
#[derive(Clone)]
pub struct SonataClient {
    margo: MargoInstance,
    addr: Addr,
    options: RpcOptions,
}

impl SonataClient {
    /// Connect a client handle to a provider address.
    pub fn new(margo: MargoInstance, addr: Addr) -> Self {
        SonataClient {
            margo,
            addr,
            options: RpcOptions::default(),
        }
    }

    /// Apply an [`RpcOptions`] (deadline / retry policy) to every RPC
    /// this client issues.
    #[must_use]
    pub fn with_options(mut self, options: RpcOptions) -> Self {
        self.options = options;
        self
    }

    /// Create a collection (idempotent).
    pub fn create_db(&self, name: &str) -> Result<(), MargoError> {
        let _: u32 = self.margo.forward_with(
            self.addr,
            "sonata_create_db_rpc",
            &name.to_string(),
            self.options.clone(),
        )?;
        Ok(())
    }

    /// Store one document; returns its record id.
    pub fn store(&self, db: &str, doc: &Value) -> Result<u64, MargoError> {
        self.margo.forward_with(
            self.addr,
            "sonata_store_rpc",
            &StoreArgs {
                db: db.to_string(),
                json: doc.to_json(),
            },
            self.options.clone(),
        )
    }

    /// Store a batch of documents as one RPC whose metadata carries all
    /// the JSON text (the paper's `sonata_store_multi_json`).
    /// Returns `(first_id, count)`.
    pub fn store_multi_json(&self, db: &str, docs: &[String]) -> Result<(u64, u64), MargoError> {
        self.margo.forward_with(
            self.addr,
            "sonata_store_multi_json",
            &StoreMultiArgs {
                db: db.to_string(),
                docs: docs.to_vec(),
            },
            self.options.clone(),
        )
    }

    /// Fetch one document as JSON text.
    pub fn fetch(&self, db: &str, id: u64) -> Result<String, MargoError> {
        self.margo.forward_with(
            self.addr,
            "sonata_fetch_rpc",
            &FetchArgs {
                db: db.to_string(),
                id,
            },
            self.options.clone(),
        )
    }

    /// Run a filter query remotely; returns matching documents as JSON.
    pub fn exec_query(&self, db: &str, filter: &str) -> Result<Vec<String>, MargoError> {
        self.margo.forward_with(
            self.addr,
            "sonata_exec_query_rpc",
            &StoreArgs {
                db: db.to_string(),
                json: filter.to_string(),
            },
            self.options.clone(),
        )
    }

    /// Count documents in a collection.
    pub fn count(&self, db: &str) -> Result<u64, MargoError> {
        self.margo.forward_with(
            self.addr,
            "sonata_count_rpc",
            &db.to_string(),
            self.options.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbi_fabric::{Fabric, NetworkModel};
    use symbi_margo::MargoConfig;

    #[test]
    fn query_parse_and_match() {
        let doc = Value::obj([
            ("energy", Value::Num(42.5)),
            ("detector", Value::Str("cms".into())),
            ("good", Value::Bool(true)),
            ("run", Value::obj([("id", Value::Num(7.0))])),
        ]);
        for (expr, expected) in [
            ("energy > 40", true),
            ("energy <= 42.5", true),
            ("energy < 42.5", false),
            ("detector == \"cms\"", true),
            ("detector != \"atlas\"", true),
            ("good == true", true),
            ("run.id == 7", true),
            ("run.id >= 8", false),
            ("missing == 1", false),
            ("energy > 40 && detector == \"cms\"", true),
            ("energy > 100 || run.id == 7", true),
            ("(energy > 100 || run.id == 7) && good == true", true),
            ("energy > 100 && run.id == 7", false),
        ] {
            let q = Query::parse(expr).unwrap_or_else(|e| panic!("parse {expr}: {e}"));
            assert_eq!(q.matches(&doc), expected, "{expr}");
        }
    }

    #[test]
    fn query_parse_errors() {
        assert!(Query::parse("").is_err());
        assert!(Query::parse("a ==").is_err());
        assert!(Query::parse("a ~ 1").is_err());
        assert!(Query::parse("(a == 1").is_err());
        assert!(Query::parse("a == 1 garbage").is_err());
        assert!(Query::parse("a == \"unterminated").is_err());
    }

    #[test]
    fn string_literal_with_spaces() {
        let q = Query::parse("name == \"hello world\"").unwrap();
        let doc = Value::obj([("name", Value::Str("hello world".into()))]);
        assert!(q.matches(&doc));
    }

    fn setup() -> (
        MargoInstance,
        MargoInstance,
        Arc<SonataProvider>,
        SonataClient,
    ) {
        let f = Fabric::new(NetworkModel::instant());
        let server = MargoInstance::new(f.clone(), MargoConfig::server("sonata-server", 2));
        let provider = SonataProvider::attach(&server);
        let cm = MargoInstance::new(f, MargoConfig::client("sonata-client"));
        let client = SonataClient::new(cm.clone(), server.addr());
        (server, cm, provider, client)
    }

    #[test]
    fn store_fetch_roundtrip() {
        let (server, cm, _p, client) = setup();
        client.create_db("events").unwrap();
        let doc = Value::obj([("e", Value::Num(1.0))]);
        let id = client.store("events", &doc).unwrap();
        let text = client.fetch("events", id).unwrap();
        assert_eq!(parse(&text).unwrap(), doc);
        assert!(client.fetch("events", 999).is_err());
        assert!(client.store("nodb", &doc).is_err());
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn store_multi_and_query() {
        let (server, cm, provider, client) = setup();
        client.create_db("runs").unwrap();
        let docs: Vec<String> = (0..100)
            .map(|i| {
                Value::obj([
                    ("seq", Value::Num(i as f64)),
                    ("tag", Value::Str("x".into())),
                ])
                .to_json()
            })
            .collect();
        let (first, n) = client.store_multi_json("runs", &docs).unwrap();
        assert_eq!((first, n), (0, 100));
        assert_eq!(provider.count("runs"), 100);
        assert_eq!(client.count("runs").unwrap(), 100);
        let hits = client.exec_query("runs", "seq >= 90").unwrap();
        assert_eq!(hits.len(), 10);
        let none = client.exec_query("runs", "tag == \"y\"").unwrap();
        assert!(none.is_empty());
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn large_batch_overflows_eager_buffer() {
        let (server, cm, _p, client) = setup();
        client.create_db("big").unwrap();
        // ~100 docs × ~200 bytes ≫ 4 KiB eager buffer.
        let docs: Vec<String> = (0..100)
            .map(|i| {
                Value::obj([
                    ("id", Value::Num(i as f64)),
                    ("payload", Value::Str("z".repeat(180))),
                ])
                .to_json()
            })
            .collect();
        client.store_multi_json("big", &docs).unwrap();
        // The request metadata must have taken the internal RDMA path.
        let s = client.hg_stats_eager_overflows();
        assert!(s >= 1, "expected eager overflow, got {s}");
        cm.finalize();
        server.finalize();
    }

    impl SonataClient {
        fn hg_stats_eager_overflows(&self) -> u64 {
            let session = self.margo.hg().pvar_session();
            let h = session
                .alloc_handle(symbi_mercury::pvar::ids::NUM_EAGER_OVERFLOWS)
                .unwrap();
            session.sample(&h, None).unwrap()
        }
    }

    #[test]
    fn invalid_json_rejected_remotely() {
        let (server, cm, _p, client) = setup();
        client.create_db("bad").unwrap();
        let res = client.store_multi_json("bad", &["{not json".to_string()]);
        assert!(res.is_err());
        cm.finalize();
        server.finalize();
    }

    #[test]
    fn wire_roundtrips() {
        let a = StoreMultiArgs {
            db: "d".into(),
            docs: vec!["{}".into(), "[1]".into()],
        };
        assert_eq!(StoreMultiArgs::from_bytes(a.to_bytes()).unwrap(), a);
        let f = FetchArgs {
            db: "d".into(),
            id: 3,
        };
        assert_eq!(FetchArgs::from_bytes(f.to_bytes()).unwrap(), f);
    }
}
