//! Recursive-descent JSON parser (RFC 8259 subset sufficient for Sonata
//! documents: full value grammar, `\uXXXX` escapes, no BOM handling).

use super::Value;
use std::collections::BTreeMap;

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was expected / what went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(
            v.get_path("a").unwrap(),
            &Value::Arr(vec![
                Value::Num(1.0),
                Value::Obj([("b".to_string(), Value::Null)].into_iter().collect())
            ])
        );
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" {\n\t\"k\" :  [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(
            v.get("k").unwrap(),
            &Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)])
        );
    }

    #[test]
    fn escapes_decode() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndA\u{e9}");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
    }

    #[test]
    fn utf8_passthrough() {
        let v = parse("\"caf\u{e9} \u{1F680}\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "caf\u{e9} \u{1F680}");
    }

    #[test]
    fn errors_have_offsets() {
        let e = parse("{\"a\":}").unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(parse("[ ]").unwrap(), Value::Arr(vec![]));
    }

    #[test]
    fn deeply_nested_ok() {
        let mut s = String::new();
        for _ in 0..100 {
            s.push('[');
        }
        s.push('1');
        for _ in 0..100 {
            s.push(']');
        }
        assert!(parse(&s).is_ok());
    }
}
