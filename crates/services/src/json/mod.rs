//! A minimal JSON engine backing the Sonata document store.
//!
//! The real Sonata sits on UnQLite and runs Jx9 scripts over stored JSON
//! documents. This reproduction implements its own JSON value type,
//! parser, and serializer (no external JSON dependency is available in
//! the sanctioned crate set), plus a small filter-query engine in
//! [`crate::sonata`] standing in for Jx9.

mod parser;

pub use parser::{parse, ParseError};

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Shorthand object constructor from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Fetch a field of an object (returns `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Fetch a dotted path (`"a.b.c"`).
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => {
                out.push('"');
                symbi_core::zipkin::escape_into(out, s);
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    symbi_core::zipkin::escape_into(out, k);
                    out.push_str("\":");
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_all_variants() {
        let v = Value::obj([
            ("null", Value::Null),
            ("flag", Value::Bool(true)),
            ("n", Value::Num(3.0)),
            ("frac", Value::Num(1.5)),
            ("s", Value::Str("hi \"you\"".into())),
            ("arr", Value::Arr(vec![Value::Num(1.0), Value::Bool(false)])),
        ]);
        let json = v.to_json();
        assert!(json.contains("\"null\":null"));
        assert!(json.contains("\"flag\":true"));
        assert!(json.contains("\"n\":3"));
        assert!(json.contains("\"frac\":1.5"));
        assert!(json.contains("\"s\":\"hi \\\"you\\\"\""));
        assert!(json.contains("\"arr\":[1,false]"));
    }

    #[test]
    fn roundtrip_through_parser() {
        let v = Value::obj([
            ("a", Value::Num(42.0)),
            ("b", Value::Arr(vec![Value::Str("x".into()), Value::Null])),
            ("c", Value::obj([("nested", Value::Bool(false))])),
        ]);
        let back = parse(&v.to_json()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn get_and_get_path() {
        let v = Value::obj([("run", Value::obj([("subrun", Value::Num(7.0))]))]);
        assert_eq!(v.get_path("run.subrun").unwrap().as_f64(), Some(7.0));
        assert!(v.get_path("run.missing").is_none());
        assert!(v.get("nope").is_none());
        assert!(Value::Null.get("x").is_none());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Num(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Num(1.0).as_str(), None);
    }
}
