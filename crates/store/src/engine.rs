//! The `LogStore` engine: memtable + WAL on the write path, immutable
//! segments behind it, a background maintenance thread for freezes and
//! compaction, and recovery on open.
//!
//! ## Write path and the zero-acked-loss invariant
//!
//! A mutation is (1) applied to the memtable, then (2) committed to the WAL;
//! the call returns only after the commit's fsync. Acknowledgement therefore
//! implies durability. Applying *before* enqueueing is also what makes WAL
//! rotation safe: any record queued for the old log is already in the
//! memtable, so the freeze that follows a rotation captures it in the
//! segment before the old log is deleted.
//!
//! ## Recovery
//!
//! `open` loads segment files in ascending file-id order, then replays the
//! surviving WALs in ascending id order on top. File ids come from a single
//! monotonic counter shared by WALs and segments, so "ascending id" is also
//! "ascending creation time": a compacted segment always sorts after its
//! inputs, which makes the crash window between renaming the merged segment
//! and deleting its inputs harmless. Live WALs are always newer than the
//! last freeze; the only overlap is records written to a fresh WAL while the
//! previous memtable froze, and replaying those is an idempotent re-apply.
//!
//! `Drop` deliberately does **not** flush the memtable: a clean shutdown and
//! a SIGKILL leave the same on-disk state, so every reopen exercises the
//! recovery path rather than a snapshot fast path.

use std::collections::HashSet;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use crate::segment::{self, SegMap, Segment};
use crate::stats::{StatsSnapshot, StoreStats};
use crate::wal::{self, Op, RecordBuilder, Wal};
use crate::{SpanSink, StoreOp};

/// Configuration for [`LogStore::open`].
#[derive(Clone)]
pub struct StoreConfig {
    /// Directory holding WAL and segment files; created if missing.
    pub dir: PathBuf,
    /// Freeze the memtable into a segment once its payload exceeds this.
    pub memtable_flush_bytes: usize,
    /// Merge segments once more than this many accumulate.
    pub compact_segments: usize,
    /// `true` (default): group commit — one fsync amortizes a batch of
    /// concurrent writers. `false`: fsync per record (bench baseline).
    pub group_commit: bool,
    /// Straggler-pickup window for the group-commit leader: after a
    /// contended batch, wait up to this long for the followers it just
    /// woke to re-enqueue before the next fsync, converging group size
    /// toward the live writer count. The uncontended path never waits.
    /// Zero disables the window.
    pub group_window: Duration,
    /// Poll period of the background maintenance thread.
    pub maintenance_period: Duration,
    /// Optional span sink for durability-interval attribution.
    pub sink: Option<SpanSink>,
}

impl std::fmt::Debug for StoreConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreConfig")
            .field("dir", &self.dir)
            .field("memtable_flush_bytes", &self.memtable_flush_bytes)
            .field("compact_segments", &self.compact_segments)
            .field("group_commit", &self.group_commit)
            .field("group_window", &self.group_window)
            .field("maintenance_period", &self.maintenance_period)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl StoreConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            memtable_flush_bytes: 4 << 20,
            compact_segments: 4,
            group_commit: true,
            group_window: Duration::from_micros(200),
            maintenance_period: Duration::from_millis(20),
            sink: None,
        }
    }

    pub fn with_memtable_flush_bytes(mut self, bytes: usize) -> Self {
        self.memtable_flush_bytes = bytes;
        self
    }

    pub fn with_compact_segments(mut self, n: usize) -> Self {
        self.compact_segments = n;
        self
    }

    pub fn with_group_commit(mut self, on: bool) -> Self {
        self.group_commit = on;
        self
    }

    pub fn with_group_window(mut self, window: Duration) -> Self {
        self.group_window = window;
        self
    }

    pub fn with_maintenance_period(mut self, period: Duration) -> Self {
        self.maintenance_period = period;
        self
    }

    pub fn with_sink(mut self, sink: SpanSink) -> Self {
        self.sink = Some(sink);
        self
    }
}

struct Memtable {
    map: SegMap,
    bytes: usize,
}

impl Memtable {
    fn insert(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let klen = key.len();
        let vlen = value.as_ref().map_or(0, |v| v.len());
        match self.map.insert(key, value) {
            Some(old) => {
                // Key bytes were already accounted; swap the value bytes.
                let old_vlen = old.as_ref().map_or(0, |v| v.len());
                self.bytes = self.bytes.saturating_sub(old_vlen) + vlen;
            }
            None => self.bytes += klen + vlen,
        }
    }
}

struct Inner {
    dir: PathBuf,
    memtable_flush_bytes: usize,
    compact_segments: usize,
    wal: Wal,
    /// Lock-order rule: when holding both, take `mem` before `segments`.
    mem: Mutex<Memtable>,
    segments: RwLock<Vec<Arc<Segment>>>,
    /// Single id counter shared by WAL and segment files (see module docs).
    next_file_id: AtomicU64,
    /// Serializes freeze and compaction. Without it a freeze can publish a
    /// fresh segment while a compaction (which allocates its output id at
    /// the end of the merge) is running, leaving the stale merged output
    /// with a *larger* id than the fresh segment — and ascending-id
    /// newest-wins replay would then resurrect old values on reopen.
    maintenance_mutex: Mutex<()>,
    stats: Arc<StoreStats>,
    sink: Option<SpanSink>,
    stop: Mutex<bool>,
    stop_cv: Condvar,
}

/// A durable log-structured KV store rooted at one directory.
///
/// Concurrent-writer safe: the memtable is mutex-protected and the WAL
/// group-commits. Reads see their own un-fsynced writes (read-uncommitted
/// against the memtable), which matches the embedding RPC handlers — a
/// handler only *acknowledges* after `put` returns, i.e. after the fsync.
pub struct LogStore {
    inner: Arc<Inner>,
    maintenance: Mutex<Option<JoinHandle<()>>>,
}

impl LogStore {
    /// Open (or create) the store at `config.dir`, running recovery:
    /// load segments in id order, replay surviving WALs on top, truncate
    /// torn tails, and report the whole interval to the span sink.
    pub fn open(config: StoreConfig) -> std::io::Result<LogStore> {
        fs::create_dir_all(&config.dir)?;
        let stats = Arc::new(StoreStats::default());
        let t0 = Instant::now();

        let mut seg_ids = Vec::new();
        let mut wal_ids = Vec::new();
        for entry in fs::read_dir(&config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = segment::parse_seg_id(name) {
                seg_ids.push(id);
            } else if let Some(id) = wal::parse_wal_id(name) {
                wal_ids.push(id);
            } else if name.ends_with(".tmp") {
                // Crash artifact from an interrupted segment write.
                let _ = fs::remove_file(entry.path());
            }
        }
        seg_ids.sort_unstable();
        wal_ids.sort_unstable();

        let mut segments = Vec::with_capacity(seg_ids.len());
        for id in &seg_ids {
            segments.push(Arc::new(segment::load(
                &segment::seg_path(&config.dir, *id),
                *id,
            )?));
        }

        let mut mem = Memtable {
            map: SegMap::new(),
            bytes: 0,
        };
        let mut replayed = 0u64;
        for id in &wal_ids {
            replayed += wal::replay(&wal::wal_path(&config.dir, *id), &stats, |op| match op {
                Op::Put(k, v) => mem.insert(k, Some(v)),
                Op::Erase(k) => mem.insert(k, None),
            })?;
        }

        let max_id = seg_ids
            .iter()
            .chain(wal_ids.iter())
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        let next_file_id = AtomicU64::new(max_id);
        let active_wal = next_file_id.fetch_add(1, Ordering::SeqCst);
        let wal = Wal::open(
            &config.dir,
            active_wal,
            config.group_commit,
            config.group_window,
            stats.clone(),
            config.sink.clone(),
        )?;

        stats.recoveries.fetch_add(1, Ordering::Relaxed);
        stats
            .recovery_ms
            .store(t0.elapsed().as_millis() as u64, Ordering::Relaxed);
        stats
            .replayed_records
            .fetch_add(replayed, Ordering::Relaxed);
        if let Some(sink) = &config.sink {
            sink(StoreOp::Recovery, t0.elapsed());
        }

        let inner = Arc::new(Inner {
            dir: config.dir.clone(),
            memtable_flush_bytes: config.memtable_flush_bytes,
            compact_segments: config.compact_segments,
            wal,
            mem: Mutex::new(mem),
            segments: RwLock::new(segments),
            next_file_id,
            maintenance_mutex: Mutex::new(()),
            stats,
            sink: config.sink.clone(),
            stop: Mutex::new(false),
            stop_cv: Condvar::new(),
        });

        let worker = {
            let inner = inner.clone();
            let period = config.maintenance_period;
            std::thread::Builder::new()
                .name("symbi-store-maint".into())
                .spawn(move || loop {
                    {
                        let mut stop = inner.stop.lock();
                        if !*stop {
                            inner.stop_cv.wait_for(&mut stop, period);
                        }
                        if *stop {
                            return;
                        }
                    }
                    inner.tick();
                })
                .expect("spawn symbi-store maintenance thread")
        };

        Ok(LogStore {
            inner,
            maintenance: Mutex::new(Some(worker)),
        })
    }

    /// Insert or overwrite one key; durable when this returns.
    pub fn put(&self, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        let mut rb = RecordBuilder::new();
        rb.put(key, value);
        let payload = rb.finish();
        self.inner
            .mem
            .lock()
            .insert(key.to_vec(), Some(value.to_vec()));
        self.inner.wal.commit(payload)
    }

    /// Atomic multi-key batch: one WAL record, so replay applies all of it
    /// or none of it. This is what SDSKV `put_packed` maps to.
    pub fn put_batch(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> std::io::Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        let mut rb = RecordBuilder::new();
        for (k, v) in pairs {
            rb.put(k, v);
        }
        let payload = rb.finish();
        {
            let mut mem = self.inner.mem.lock();
            for (k, v) in pairs {
                mem.insert(k.clone(), Some(v.clone()));
            }
        }
        self.inner.wal.commit(payload)
    }

    /// Delete a key (tombstone). Returns whether the key was present.
    pub fn erase(&self, key: &[u8]) -> std::io::Result<bool> {
        let existed = self.get(key).is_some();
        let mut rb = RecordBuilder::new();
        rb.erase(key);
        let payload = rb.finish();
        self.inner.mem.lock().insert(key.to_vec(), None);
        self.inner.wal.commit(payload)?;
        Ok(existed)
    }

    /// Point lookup: memtable first, then segments newest-first.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        {
            let mem = self.inner.mem.lock();
            if let Some(entry) = mem.map.get(key) {
                return entry.clone();
            }
        }
        let segs = self.inner.segments.read();
        for seg in segs.iter().rev() {
            if let Some(entry) = seg.map.get(key) {
                return entry.clone();
            }
        }
        None
    }

    /// Number of live keys (full merge; O(total entries) — fine at the
    /// scenario scales this repo drives, revisit if key spaces grow).
    pub fn len(&self) -> usize {
        self.merged_from(&[])
            .into_iter()
            .filter(|(_, v)| v.is_some())
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Up to `max` live `(key, value)` pairs at or after `start`, in key
    /// order, newest version wins, tombstones skipped.
    pub fn list_keyvals(&self, start: &[u8], max: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.merged_from(start)
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .take(max)
            .collect()
    }

    /// Newest-wins merge of all sources for keys `>= start`.
    fn merged_from(&self, start: &[u8]) -> SegMap {
        let mut merged = SegMap::new();
        // Lock order: mem before segments (matches the freeze path).
        let mem = self.inner.mem.lock();
        let segs = self.inner.segments.read();
        for seg in segs.iter() {
            for (k, v) in seg.map.range(start.to_vec()..) {
                merged.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in mem.map.range(start.to_vec()..) {
            merged.insert(k.clone(), v.clone());
        }
        merged
    }

    /// Group-commit barrier: one fsync covering everything acknowledged.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.wal.barrier()
    }

    /// Freeze the memtable into a segment now (tests and benches; the
    /// maintenance thread does this automatically past the size threshold).
    pub fn checkpoint(&self) -> std::io::Result<()> {
        self.inner.freeze_memtable()
    }

    /// Merge all segments now, regardless of the count threshold.
    pub fn compact_now(&self) -> std::io::Result<()> {
        self.inner.compact()
    }

    /// Run one maintenance pass synchronously (deterministic tests).
    pub fn maintenance_tick(&self) {
        self.inner.tick();
    }

    /// Counters plus instantaneous memtable/segment gauges.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.inner.stats;
        let (memtable_keys, memtable_bytes) = {
            let mem = self.inner.mem.lock();
            (mem.map.len() as u64, mem.bytes as u64)
        };
        StatsSnapshot {
            wal_records: StoreStats::load(&s.wal_records),
            wal_bytes: StoreStats::load(&s.wal_bytes),
            fsyncs: StoreStats::load(&s.fsyncs),
            group_commits: StoreStats::load(&s.group_commits),
            group_committed_records: StoreStats::load(&s.group_committed_records),
            flush_barriers: StoreStats::load(&s.flush_barriers),
            memtable_flushes: StoreStats::load(&s.memtable_flushes),
            compactions: StoreStats::load(&s.compactions),
            compaction_ms: StoreStats::load(&s.compaction_ms),
            recoveries: StoreStats::load(&s.recoveries),
            recovery_ms: StoreStats::load(&s.recovery_ms),
            replayed_records: StoreStats::load(&s.replayed_records),
            torn_tail_truncations: StoreStats::load(&s.torn_tail_truncations),
            memtable_keys,
            memtable_bytes,
            segments: self.inner.segments.read().len() as u64,
        }
    }
}

impl Drop for LogStore {
    fn drop(&mut self) {
        *self.inner.stop.lock() = true;
        self.inner.stop_cv.notify_all();
        if let Some(h) = self.maintenance.lock().take() {
            let _ = h.join();
        }
        // Deliberately no memtable flush: crash == drop, so recovery runs
        // on every reopen (see module docs).
    }
}

impl Inner {
    fn tick(&self) {
        let bytes = self.mem.lock().bytes;
        if bytes >= self.memtable_flush_bytes {
            if let Err(e) = self.freeze_memtable() {
                eprintln!("symbi-store: memtable freeze failed: {e}");
            }
        }
        if self.segments.read().len() > self.compact_segments {
            if let Err(e) = self.compact() {
                eprintln!("symbi-store: compaction failed: {e}");
            }
        }
    }

    /// Rotate the WAL, freeze the memtable into an in-memory segment, write
    /// it to disk, then prune WALs older than the active one. See the
    /// module docs for why this ordering is crash-safe.
    fn freeze_memtable(&self) -> std::io::Result<()> {
        let _maint = self.maintenance_mutex.lock();
        if self.mem.lock().map.is_empty() {
            return Ok(());
        }
        let t0 = Instant::now();
        let new_wal_id = self.next_file_id.fetch_add(1, Ordering::SeqCst);
        self.wal.rotate(new_wal_id)?;
        let seg_id = self.next_file_id.fetch_add(1, Ordering::SeqCst);
        let frozen = {
            let mut mem = self.mem.lock();
            let mut segs = self.segments.write();
            let map = std::mem::take(&mut mem.map);
            mem.bytes = 0;
            let seg = Arc::new(Segment { id: seg_id, map });
            segs.push(seg.clone());
            seg
        };
        segment::write(&self.dir, seg_id, &frozen.map)?;
        wal::delete_logs_below(&self.dir, new_wal_id)?;
        self.stats.memtable_flushes.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = &self.sink {
            sink(StoreOp::Compaction, t0.elapsed());
        }
        Ok(())
    }

    /// Full newest-wins merge of all segments into one, tombstones retained.
    fn compact(&self) -> std::io::Result<()> {
        let _maint = self.maintenance_mutex.lock();
        let inputs: Vec<Arc<Segment>> = self.segments.read().clone();
        if inputs.len() < 2 {
            return Ok(());
        }
        let t0 = Instant::now();
        let mut merged = SegMap::new();
        for seg in &inputs {
            // Ascending id = oldest first, so later inserts win.
            for (k, v) in &seg.map {
                merged.insert(k.clone(), v.clone());
            }
        }
        let new_id = self.next_file_id.fetch_add(1, Ordering::SeqCst);
        segment::write(&self.dir, new_id, &merged)?;
        {
            let mut segs = self.segments.write();
            let input_ids: HashSet<u64> = inputs.iter().map(|s| s.id).collect();
            segs.retain(|s| !input_ids.contains(&s.id));
            segs.push(Arc::new(Segment {
                id: new_id,
                map: merged,
            }));
            segs.sort_by_key(|s| s.id);
        }
        for seg in &inputs {
            let _ = fs::remove_file(segment::seg_path(&self.dir, seg.id));
        }
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        self.stats
            .compaction_ms
            .fetch_add(t0.elapsed().as_millis() as u64, Ordering::Relaxed);
        if let Some(sink) = &self.sink {
            sink(StoreOp::Compaction, t0.elapsed());
        }
        Ok(())
    }
}
