//! # symbi-store — durable log-structured KV engine
//!
//! The storage engine behind the `ldb-disk` SDSKV backend. Until this crate
//! existed, every KV backend in the reproduction *simulated* storage latency
//! with a `StorageCost` nap; kill-mid-write drills therefore measured a
//! simulation. symbi-store replaces the nap with an engine we own, so the
//! fault drills become real recovery experiments:
//!
//! * **Write-ahead log** (`wal`): checksummed, length-prefixed records.
//!   Every mutation is applied to the memtable and then committed to the
//!   WAL; the call does not return until the record is fsynced, so an
//!   acknowledged write is a durable write by construction.
//! * **Group commit**: concurrent writers park on a commit batch; a single
//!   leader drains the queue and one `fdatasync` amortizes the whole group.
//!   `group_commit: false` degrades to fsync-per-record — kept as the
//!   baseline arm for the `group_commit` bench.
//! * **Memtable + immutable sorted segments** (`segment`): reads consult the
//!   memtable first, then segments newest-first. A background thread freezes
//!   the memtable into a segment file once it exceeds a size threshold and
//!   merges segments (newest-wins, tombstones retained) once they pile up.
//! * **Crash recovery**: reopening a directory loads segments in file-id
//!   order and replays surviving WALs on top — byte-identical state. A torn
//!   WAL tail (short header, bad length, checksum mismatch) is truncated,
//!   not fatal. `Drop` never flushes the memtable, so the recovery path is
//!   exercised on *every* reopen, not just after a SIGKILL.
//!
//! Durability-relevant intervals (WAL append, fsync, compaction, recovery)
//! are reported through an optional [`SpanSink`] so the embedding service can
//! attribute them as spans in the SYMBIOSYS trace; counters surface through
//! [`StatsSnapshot`] for the `symbi_store_*` telemetry families.

mod engine;
mod segment;
mod stats;
mod wal;

pub use engine::{LogStore, StoreConfig};
pub use stats::StatsSnapshot;

use std::sync::Arc;
use std::time::Duration;

/// The durability-relevant interval kinds a store reports to its [`SpanSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Writing a group-commit batch of WAL records to the log file.
    WalAppend,
    /// The `fdatasync` that makes a batch (or a flush barrier) durable.
    Fsync,
    /// Merging segment files (includes the memtable freeze that feeds them).
    Compaction,
    /// Segment load + WAL replay on open.
    Recovery,
}

impl StoreOp {
    /// Stable callpath frame name for this interval; the embedding service
    /// pushes it onto the current callpath when attributing the span, so
    /// `symbi-analyze` can group durability costs by operation.
    pub fn label(self) -> &'static str {
        match self {
            StoreOp::WalAppend => "store_wal_append",
            StoreOp::Fsync => "store_fsync",
            StoreOp::Compaction => "store_compaction",
            StoreOp::Recovery => "store_recovery",
        }
    }
}

/// Callback invoked at the *end* of a durability interval with its duration.
///
/// symbi-store sits below the measurement stack (it knows nothing about
/// tracers or span ids), so span attribution is delegated: the services layer
/// installs a sink that turns `(op, duration)` into a `TargetUltStart` /
/// `TargetRespond` event pair on the embedding process's tracer.
pub type SpanSink = Arc<dyn Fn(StoreOp, Duration) + Send + Sync>;
