//! Immutable sorted segment files — the on-disk product of a memtable freeze
//! or a compaction merge.
//!
//! ```text
//! [u32 magic "SSEG"][u32 count] count ops (same codec as WAL) [u32 crc]
//! ```
//!
//! The trailing CRC covers everything after the magic. Segments are written
//! to a `.tmp` sibling, fsynced, renamed into place, and the directory is
//! fsynced — a crash mid-write leaves only a `.tmp` that recovery deletes.
//!
//! Tombstones (`Erase` ops) are *retained* through compaction: if a merge
//! dropped them and the process crashed after renaming the merged segment
//! but before deleting its inputs, recovery would load the inputs first and
//! resurrect deleted keys when the merged segment no longer shadows them.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::wal::{crc32, decode_op, encode_op, Op};

const MAGIC: u32 = 0x5347_4553; // "SEGS" little-endian

/// Tombstone-aware sorted map: `None` means the key was erased.
pub(crate) type SegMap = BTreeMap<Vec<u8>, Option<Vec<u8>>>;

/// One immutable segment, fully resident in memory and serving reads.
pub(crate) struct Segment {
    pub id: u64,
    pub map: SegMap,
}

pub(crate) fn seg_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:012}.seg"))
}

pub(crate) fn parse_seg_id(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Write `map` as segment `id`: tmp file + fsync + rename + dir fsync.
pub(crate) fn write(dir: &Path, id: u64, map: &SegMap) -> io::Result<()> {
    let mut body = Vec::with_capacity(8 + map.len() * 16);
    body.extend_from_slice(&(map.len() as u32).to_le_bytes());
    for (k, v) in map {
        encode_op(&mut body, k, v.as_deref());
    }
    let crc = crc32(&body);

    let tmp = dir.join(format!("seg-{id:012}.tmp"));
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp)?;
    file.write_all(&MAGIC.to_le_bytes())?;
    file.write_all(&body)?;
    file.write_all(&crc.to_le_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, seg_path(dir, id))?;
    fsync_dir(dir)
}

/// Load a segment file, verifying magic and CRC. Unlike a torn WAL tail,
/// a corrupt segment is fatal: its contents were acknowledged long ago.
pub(crate) fn load(path: &Path, id: u64) -> io::Result<Segment> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let corrupt = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("segment {}: {what}", path.display()),
        )
    };
    if bytes.len() < 12 {
        return Err(corrupt("shorter than header + crc"));
    }
    if u32::from_le_bytes(bytes[..4].try_into().unwrap()) != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let body = &bytes[4..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != crc {
        return Err(corrupt("crc mismatch"));
    }
    let mut off = 0usize;
    let count = u32::from_le_bytes(
        body.get(..4)
            .ok_or_else(|| corrupt("missing count"))?
            .try_into()
            .unwrap(),
    );
    off += 4;
    let mut map = SegMap::new();
    for _ in 0..count {
        match decode_op(body, &mut off) {
            Some(Op::Put(k, v)) => {
                map.insert(k, Some(v));
            }
            Some(Op::Erase(k)) => {
                map.insert(k, None);
            }
            None => return Err(corrupt("truncated op list")),
        }
    }
    if off != body.len() {
        return Err(corrupt("trailing bytes after op list"));
    }
    Ok(Segment { id, map })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("symbi-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn segment_round_trips_including_tombstones() {
        let dir = scratch("roundtrip");
        let mut map = SegMap::new();
        map.insert(b"a".to_vec(), Some(b"1".to_vec()));
        map.insert(b"dead".to_vec(), None);
        map.insert(b"z".to_vec(), Some(vec![0u8; 300]));
        write(&dir, 7, &map).unwrap();
        let seg = load(&seg_path(&dir, 7), 7).unwrap();
        assert_eq!(seg.id, 7);
        assert_eq!(seg.map, map);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_is_fatal() {
        let dir = scratch("corrupt");
        let mut map = SegMap::new();
        map.insert(b"k".to_vec(), Some(b"v".to_vec()));
        write(&dir, 1, &map).unwrap();
        let path = seg_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&path, 1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seg_file_names_round_trip() {
        let p = seg_path(Path::new("/x"), 9);
        let name = p.file_name().unwrap().to_str().unwrap();
        assert_eq!(parse_seg_id(name), Some(9));
        assert_eq!(parse_seg_id("wal-000000000009.log"), None);
    }
}
