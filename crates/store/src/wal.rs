//! Checksummed, length-prefixed write-ahead log with group commit.
//!
//! ## Record format
//!
//! ```text
//! [u32 len][u32 crc32][payload: len bytes]      (all little-endian)
//! payload = [u32 count] then `count` ops:
//!   put:   [u8 = 1][u32 klen][key][u32 vlen][value]
//!   erase: [u8 = 2][u32 klen][key]
//! ```
//!
//! `crc32` (IEEE) covers the payload only. A multi-key batch is one record,
//! which is what makes `put_packed` atomic: replay decodes a record entirely
//! or not at all, so a torn batch never applies partially.
//!
//! ## Group commit
//!
//! Writers append their framed record to a pending queue under the state
//! lock. The first writer to find no leader becomes the leader: it drains the
//! queue in batches, writes each batch with one `write_all` + one
//! `fdatasync`, then publishes the batch's last sequence number and wakes the
//! parked followers. Writers return only once their sequence is durable —
//! an acknowledged write is a durable write by construction. With
//! `group_commit = false` every record is written and fsynced individually
//! under the lock (the bench baseline).
//!
//! ## Torn tails
//!
//! Replay walks records until the bytes run out. A short header, a length
//! past EOF, a checksum mismatch, or an undecodable payload ends the walk;
//! the file is truncated at the last good record. A torn record was never
//! fsync-acknowledged, so truncation loses no acked write.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::stats::StoreStats;
use crate::{SpanSink, StoreOp};

const TAG_PUT: u8 = 1;
const TAG_ERASE: u8 = 2;

/// A decoded WAL (or segment) operation.
pub(crate) enum Op {
    Put(Vec<u8>, Vec<u8>),
    Erase(Vec<u8>),
}

// ---------------------------------------------------------------- crc32

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32, table-driven; no external dependency.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------- op codec

/// Builds one record payload out of one or more operations.
pub(crate) struct RecordBuilder {
    buf: Vec<u8>,
    count: u32,
}

impl RecordBuilder {
    pub fn new() -> Self {
        Self {
            buf: vec![0; 4],
            count: 0,
        }
    }

    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.buf.push(TAG_PUT);
        self.buf
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(key);
        self.buf
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(value);
        self.count += 1;
    }

    pub fn erase(&mut self, key: &[u8]) {
        self.buf.push(TAG_ERASE);
        self.buf
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(key);
        self.count += 1;
    }

    pub fn finish(mut self) -> Vec<u8> {
        self.buf[..4].copy_from_slice(&self.count.to_le_bytes());
        self.buf
    }
}

fn read_u32(bytes: &[u8], off: &mut usize) -> Option<u32> {
    let end = off.checked_add(4)?;
    let v = u32::from_le_bytes(bytes.get(*off..end)?.try_into().ok()?);
    *off = end;
    Some(v)
}

fn read_slice<'a>(bytes: &'a [u8], off: &mut usize) -> Option<&'a [u8]> {
    let len = read_u32(bytes, off)? as usize;
    let end = off.checked_add(len)?;
    let s = bytes.get(*off..end)?;
    *off = end;
    Some(s)
}

/// Decode one op at `*off`; shared with the segment codec.
pub(crate) fn decode_op(bytes: &[u8], off: &mut usize) -> Option<Op> {
    let tag = *bytes.get(*off)?;
    *off += 1;
    match tag {
        TAG_PUT => {
            let k = read_slice(bytes, off)?.to_vec();
            let v = read_slice(bytes, off)?.to_vec();
            Some(Op::Put(k, v))
        }
        TAG_ERASE => Some(Op::Erase(read_slice(bytes, off)?.to_vec())),
        _ => None,
    }
}

/// Decode a full record payload; `None` means corrupt.
pub(crate) fn decode_payload(payload: &[u8]) -> Option<Vec<Op>> {
    let mut off = 0usize;
    let count = read_u32(payload, &mut off)?;
    let mut ops = Vec::with_capacity(count as usize);
    for _ in 0..count {
        ops.push(decode_op(payload, &mut off)?);
    }
    if off == payload.len() {
        Some(ops)
    } else {
        None
    }
}

/// Encode one op (same wire shape as `RecordBuilder`) for the segment codec.
pub(crate) fn encode_op(buf: &mut Vec<u8>, key: &[u8], value: Option<&[u8]>) {
    match value {
        Some(v) => {
            buf.push(TAG_PUT);
            buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
            buf.extend_from_slice(key);
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            buf.extend_from_slice(v);
        }
        None => {
            buf.push(TAG_ERASE);
            buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
            buf.extend_from_slice(key);
        }
    }
}

// ---------------------------------------------------------------- files

pub(crate) fn wal_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("wal-{id:012}.log"))
}

pub(crate) fn parse_wal_id(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Delete every WAL file with an id strictly below `keep_from` (they are
/// fully covered by segment files once a freeze completes).
pub(crate) fn delete_logs_below(dir: &Path, keep_from: u64) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(id) = entry.file_name().to_str().and_then(parse_wal_id) {
            if id < keep_from {
                std::fs::remove_file(entry.path())?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- replay

/// Replay every intact record of `path` through `apply`, truncating a torn
/// tail in place. Returns the number of records replayed.
pub(crate) fn replay(
    path: &Path,
    stats: &StoreStats,
    mut apply: impl FnMut(Op),
) -> io::Result<u64> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut off = 0usize;
    let mut records = 0u64;
    while off < bytes.len() {
        if bytes.len() - off < 8 {
            break; // torn header
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        let start = off + 8;
        let Some(end) = start.checked_add(len) else {
            break;
        };
        if end > bytes.len() {
            break; // torn body
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break; // checksum mismatch: treat as torn
        }
        let Some(ops) = decode_payload(payload) else {
            break;
        };
        for op in ops {
            apply(op);
        }
        records += 1;
        off = end;
    }
    if off < bytes.len() {
        stats.torn_tail_truncations.fetch_add(1, Ordering::Relaxed);
        OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(off as u64)?;
    }
    Ok(records)
}

// ---------------------------------------------------------------- group commit

pub(crate) struct Wal {
    dir: PathBuf,
    group_commit: bool,
    /// Straggler-pickup window (the commit-delay technique): after a
    /// contended batch, how long the leader waits for the followers it
    /// just woke to re-enqueue before the next write+fsync. Zero disables.
    group_window: Duration,
    state: Mutex<WalState>,
    cv: Condvar,
    /// Separate condvar for the leader's pickup window. Enqueuers wake
    /// only the waiting leader through it; signalling `cv` instead would
    /// thundering-herd every parked follower on each arrival.
    leader_cv: Condvar,
    stats: Arc<StoreStats>,
    sink: Option<SpanSink>,
}

struct WalState {
    file: Arc<File>,
    /// Framed records awaiting the leader, paired with their sequence.
    pending: Vec<(u64, Vec<u8>)>,
    next_seq: u64,
    durable_seq: u64,
    leader_active: bool,
    /// True while the leader sits in its pickup window; enqueuers then
    /// notify the condvar so the leader sees the queue grow immediately.
    leader_waiting: bool,
    /// Running estimate of live writer concurrency: the largest recent
    /// batch size, decaying by one per batch so it tracks writers
    /// leaving. Shared state (not leader-local) because leadership
    /// rotates — when a full batch drains the queue the leader retires,
    /// and whoever re-enqueues first leads the next stint; it must
    /// inherit the estimate or its first batch degenerates to size one.
    hwm: usize,
    /// Set on the first I/O error; all subsequent commits fail fast.
    broken: Option<io::ErrorKind>,
}

impl Wal {
    pub fn open(
        dir: &Path,
        id: u64,
        group_commit: bool,
        group_window: Duration,
        stats: Arc<StoreStats>,
        sink: Option<SpanSink>,
    ) -> io::Result<Wal> {
        let file = Self::create_log(dir, id)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            group_commit,
            group_window,
            state: Mutex::new(WalState {
                file: Arc::new(file),
                pending: Vec::new(),
                next_seq: 0,
                durable_seq: 0,
                leader_active: false,
                leader_waiting: false,
                hwm: 0,
                broken: None,
            }),
            cv: Condvar::new(),
            leader_cv: Condvar::new(),
            stats,
            sink,
        })
    }

    fn create_log(dir: &Path, id: u64) -> io::Result<File> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(wal_path(dir, id))?;
        // Make the directory entry durable: fdatasync on the file alone does
        // not guarantee a freshly created file survives a crash.
        fsync_dir(dir)?;
        Ok(file)
    }

    fn emit(&self, op: StoreOp, elapsed: std::time::Duration) {
        if let Some(sink) = &self.sink {
            sink(op, elapsed);
        }
    }

    /// Swap in a fresh log file. Records already queued are written to the
    /// new file by the leader (it re-reads `state.file` per batch); they are
    /// also present in the memtable being frozen, so replaying them from the
    /// new WAL on recovery is an idempotent re-apply.
    pub fn rotate(&self, new_id: u64) -> io::Result<()> {
        let file = Self::create_log(&self.dir, new_id)?;
        let mut s = self.state.lock();
        s.file = Arc::new(file);
        Ok(())
    }

    /// Group-commit barrier: fsync the active log. Any *acknowledged* write
    /// is already durable, so this only has to cover the current file.
    pub fn barrier(&self) -> io::Result<()> {
        self.stats.flush_barriers.fetch_add(1, Ordering::Relaxed);
        let file = {
            let s = self.state.lock();
            if let Some(kind) = s.broken {
                return Err(kind.into());
            }
            s.file.clone()
        };
        let t = Instant::now();
        let res = file.sync_data();
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.emit(StoreOp::Fsync, t.elapsed());
        res
    }

    /// Commit one record payload; returns once the record is fsync-durable.
    pub fn commit(&self, payload: Vec<u8>) -> io::Result<()> {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        if !self.group_commit {
            return self.commit_serial(frame);
        }

        let mut s = self.state.lock();
        if let Some(kind) = s.broken {
            return Err(kind.into());
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.pending.push((seq, frame));
        if s.leader_waiting {
            // The leader is holding its pickup window open for us.
            self.leader_cv.notify_one();
        }

        if s.leader_active {
            // Park until the leader makes our sequence durable (or breaks).
            while s.durable_seq < seq && s.broken.is_none() {
                self.cv.wait(&mut s);
            }
            return if s.durable_seq >= seq {
                Ok(())
            } else {
                Err(s.broken.unwrap_or(io::ErrorKind::Other).into())
            };
        }

        // Become the leader: drain batches until the queue is empty.
        s.leader_active = true;
        let mut my_result = Ok(());
        let mut prev_batch = 0usize;
        while !s.pending.is_empty() {
            // Straggler pickup: the notify_all that published the previous
            // batch has just woken followers who are about to re-enqueue,
            // but their wakeup latency would otherwise split the writers
            // into alternating part-size cohorts (those already queued
            // during the fsync vs those still waking). Collect arrivals —
            // bounded by the window — until the queue reaches the believed
            // live concurrency (immediate break, no residual latency), or
            // until a full quantum passes with no growth (the stragglers
            // are done). Applies to the first batch of a leadership stint
            // too: after a full batch retires the leader, the next leader
            // is just the fastest re-enqueuer and its peers are mid-wakeup.
            // Skipped entirely when concurrency is believed to be 1, so
            // the uncontended single-writer path pays zero added latency.
            if (prev_batch > 1 || s.hwm > 1) && !self.group_window.is_zero() {
                let target = s.hwm.max(prev_batch).max(2);
                let deadline = Instant::now() + self.group_window;
                let quantum = (self.group_window / 4).max(Duration::from_micros(10));
                s.leader_waiting = true;
                let mut waited = false;
                loop {
                    if s.broken.is_some() {
                        break;
                    }
                    let n = s.pending.len();
                    if waited && n >= target {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    self.leader_cv.wait_for(&mut s, quantum.min(deadline - now));
                    waited = true;
                    if s.pending.len() == n {
                        break; // a quiet quantum: nobody else is coming
                    }
                }
                s.leader_waiting = false;
            }
            let batch = std::mem::take(&mut s.pending);
            // Re-read the file each batch: a rotation may have swapped it.
            let file = s.file.clone();
            drop(s);

            let last_seq = batch.last().map(|(q, _)| *q).unwrap_or(0);
            prev_batch = batch.len();
            let nrecs = batch.len() as u64;
            let nbytes: usize = batch.iter().map(|(_, f)| f.len()).sum();
            let mut buf = Vec::with_capacity(nbytes);
            for (_, f) in &batch {
                buf.extend_from_slice(f);
            }

            let t_append = Instant::now();
            let res = (&*file).write_all(&buf).and_then(|()| {
                self.emit(StoreOp::WalAppend, t_append.elapsed());
                let t_sync = Instant::now();
                let r = file.sync_data();
                self.emit(StoreOp::Fsync, t_sync.elapsed());
                r
            });

            s = self.state.lock();
            s.hwm = prev_batch.max(s.hwm.saturating_sub(1));
            match res {
                Ok(()) => {
                    s.durable_seq = last_seq;
                    self.stats.wal_records.fetch_add(nrecs, Ordering::Relaxed);
                    self.stats
                        .wal_bytes
                        .fetch_add(nbytes as u64, Ordering::Relaxed);
                    self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                    self.stats.group_commits.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .group_committed_records
                        .fetch_add(nrecs, Ordering::Relaxed);
                }
                Err(ref e) => {
                    s.broken = Some(e.kind());
                    s.pending.clear();
                    if seq <= last_seq {
                        my_result = Err(e.kind().into());
                    }
                }
            }
            self.cv.notify_all();
            if s.broken.is_some() {
                break;
            }
        }
        s.leader_active = false;
        drop(s);
        my_result
    }

    /// fsync-per-record mode: one write + one sync per commit, serialized.
    fn commit_serial(&self, frame: Vec<u8>) -> io::Result<()> {
        let mut s = self.state.lock();
        if let Some(kind) = s.broken {
            return Err(kind.into());
        }
        let nbytes = frame.len() as u64;
        let t_append = Instant::now();
        let res = (&*s.file).write_all(&frame).and_then(|()| {
            self.emit(StoreOp::WalAppend, t_append.elapsed());
            let t_sync = Instant::now();
            let r = s.file.sync_data();
            self.emit(StoreOp::Fsync, t_sync.elapsed());
            r
        });
        match res {
            Ok(()) => {
                s.next_seq += 1;
                s.durable_seq = s.next_seq;
                self.stats.wal_records.fetch_add(1, Ordering::Relaxed);
                self.stats.wal_bytes.fetch_add(nbytes, Ordering::Relaxed);
                self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                self.stats.group_commits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .group_committed_records
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                s.broken = Some(e.kind());
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_payload_round_trips() {
        let mut rb = RecordBuilder::new();
        rb.put(b"alpha", b"1");
        rb.erase(b"beta");
        rb.put(b"", b"");
        let payload = rb.finish();
        let ops = decode_payload(&payload).expect("decodes");
        assert_eq!(ops.len(), 3);
        match &ops[0] {
            Op::Put(k, v) => {
                assert_eq!(k, b"alpha");
                assert_eq!(v, b"1");
            }
            _ => panic!("want put"),
        }
        match &ops[1] {
            Op::Erase(k) => assert_eq!(k, b"beta"),
            _ => panic!("want erase"),
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_bad_tags() {
        let mut rb = RecordBuilder::new();
        rb.put(b"k", b"v");
        let mut payload = rb.finish();
        payload.push(0xFF);
        assert!(decode_payload(&payload).is_none());
        let bad = vec![1, 0, 0, 0, /* tag */ 9];
        assert!(decode_payload(&bad).is_none());
    }

    #[test]
    fn wal_file_names_round_trip() {
        let p = wal_path(Path::new("/x"), 42);
        let name = p.file_name().unwrap().to_str().unwrap();
        assert_eq!(parse_wal_id(name), Some(42));
        assert_eq!(parse_wal_id("seg-000000000001.seg"), None);
    }
}
