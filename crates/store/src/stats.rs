//! Engine counters, exported as the `symbi_store_*` telemetry families.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared between the write path, the maintenance thread,
/// and recovery. All relaxed: these feed telemetry, not control flow.
#[derive(Debug, Default)]
pub(crate) struct StoreStats {
    pub wal_records: AtomicU64,
    pub wal_bytes: AtomicU64,
    pub fsyncs: AtomicU64,
    pub group_commits: AtomicU64,
    pub group_committed_records: AtomicU64,
    pub flush_barriers: AtomicU64,
    pub memtable_flushes: AtomicU64,
    pub compactions: AtomicU64,
    pub compaction_ms: AtomicU64,
    pub recoveries: AtomicU64,
    pub recovery_ms: AtomicU64,
    pub replayed_records: AtomicU64,
    pub torn_tail_truncations: AtomicU64,
}

impl StoreStats {
    pub(crate) fn load(field: &AtomicU64) -> u64 {
        field.load(Ordering::Relaxed)
    }
}

/// Point-in-time view of a [`crate::LogStore`]'s counters and gauges.
///
/// Counter fields are monotonic since `open`; `memtable_*` and `segments` are
/// instantaneous gauges sampled at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// WAL records committed (a multi-key batch is one record).
    pub wal_records: u64,
    /// Bytes appended to WAL files, framing included.
    pub wal_bytes: u64,
    /// `fdatasync` calls issued (group commits + flush barriers).
    pub fsyncs: u64,
    /// Leader rounds: each wrote one batch and issued one fsync.
    pub group_commits: u64,
    /// Records acknowledged across all leader rounds; divide by
    /// `group_commits` for the mean group size.
    pub group_committed_records: u64,
    /// Explicit `flush()` barriers requested by callers.
    pub flush_barriers: u64,
    /// Memtable freezes (each produced one segment file and pruned WALs).
    pub memtable_flushes: u64,
    /// Segment merge passes.
    pub compactions: u64,
    /// Total wall time spent merging segments, in milliseconds.
    pub compaction_ms: u64,
    /// Recovery passes (1 after a normal open; counts reopens).
    pub recoveries: u64,
    /// Wall time of the last recovery (segment load + WAL replay), in ms.
    pub recovery_ms: u64,
    /// WAL records replayed into the memtable during recovery.
    pub replayed_records: u64,
    /// Torn WAL tails truncated during recovery (crash artifacts, not data
    /// loss: a torn record was never acknowledged).
    pub torn_tail_truncations: u64,
    /// Live keys (including tombstones) in the memtable right now.
    pub memtable_keys: u64,
    /// Approximate memtable payload bytes right now.
    pub memtable_bytes: u64,
    /// Immutable segments currently serving reads.
    pub segments: u64,
}

impl StatsSnapshot {
    /// Mean records per group commit; 0.0 before the first commit.
    pub fn mean_group_size(&self) -> f64 {
        if self.group_commits == 0 {
            0.0
        } else {
            self.group_committed_records as f64 / self.group_commits as f64
        }
    }

    /// Fold another snapshot into this one (telemetry aggregates across the
    /// databases of one provider). Counters add; gauges add; `recovery_ms`
    /// takes the max since recoveries of sibling databases overlap.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.wal_records += other.wal_records;
        self.wal_bytes += other.wal_bytes;
        self.fsyncs += other.fsyncs;
        self.group_commits += other.group_commits;
        self.group_committed_records += other.group_committed_records;
        self.flush_barriers += other.flush_barriers;
        self.memtable_flushes += other.memtable_flushes;
        self.compactions += other.compactions;
        self.compaction_ms += other.compaction_ms;
        self.recoveries += other.recoveries;
        self.recovery_ms = self.recovery_ms.max(other.recovery_ms);
        self.replayed_records += other.replayed_records;
        self.torn_tail_truncations += other.torn_tail_truncations;
        self.memtable_keys += other.memtable_keys;
        self.memtable_bytes += other.memtable_bytes;
        self.segments += other.segments;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_group_size_handles_zero() {
        let s = StatsSnapshot::default();
        assert_eq!(s.mean_group_size(), 0.0);
        let s = StatsSnapshot {
            group_commits: 4,
            group_committed_records: 10,
            ..Default::default()
        };
        assert!((s.mean_group_size() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters_and_maxes_recovery() {
        let mut a = StatsSnapshot {
            wal_records: 3,
            recovery_ms: 5,
            segments: 1,
            ..Default::default()
        };
        let b = StatsSnapshot {
            wal_records: 4,
            recovery_ms: 2,
            segments: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.wal_records, 7);
        assert_eq!(a.recovery_ms, 5);
        assert_eq!(a.segments, 3);
    }
}
