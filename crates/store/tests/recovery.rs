//! Crash-recovery and durability tests for the symbi-store engine.
//!
//! `LogStore::drop` never flushes the memtable, so every `drop` + `open`
//! below is a faithful stand-in for a crash at that point: the on-disk state
//! is identical to what a SIGKILL would have left.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use symbi_store::{LogStore, StoreConfig, StoreOp};

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "symbi-store-{tag}-{}-{}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic splitmix64 so property-style tests need no external PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn cfg(dir: &Path) -> StoreConfig {
    StoreConfig::new(dir).with_maintenance_period(Duration::from_millis(5))
}

fn full_state(store: &LogStore) -> Vec<(Vec<u8>, Vec<u8>)> {
    store.list_keyvals(&[], usize::MAX)
}

fn newest_wal(dir: &Path) -> PathBuf {
    let mut wals: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name()?.to_str()?.to_string();
            name.starts_with("wal-").then_some(p)
        })
        .collect();
    wals.sort();
    wals.pop().expect("at least one wal file")
}

#[test]
fn put_get_erase_len_list() {
    let s = Scratch::new("basic");
    let store = LogStore::open(cfg(s.path())).unwrap();
    assert!(store.is_empty());
    store.put(b"b", b"2").unwrap();
    store.put(b"a", b"1").unwrap();
    store.put(b"c", b"3").unwrap();
    assert_eq!(store.get(b"a").as_deref(), Some(&b"1"[..]));
    assert_eq!(store.get(b"missing"), None);
    assert_eq!(store.len(), 3);
    assert!(store.erase(b"b").unwrap());
    assert!(!store.erase(b"b").unwrap());
    assert_eq!(store.get(b"b"), None);
    let listed = store.list_keyvals(b"a", 10);
    assert_eq!(
        listed,
        vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"c".to_vec(), b"3".to_vec())
        ]
    );
    assert_eq!(
        store.list_keyvals(b"b", 1),
        vec![(b"c".to_vec(), b"3".to_vec())]
    );
}

#[test]
fn reopen_replays_wal_to_byte_identical_state() {
    let s = Scratch::new("replay");
    let mut expect = Vec::new();
    {
        let store = LogStore::open(cfg(s.path())).unwrap();
        for i in 0..200u32 {
            let k = format!("key-{i:04}").into_bytes();
            let v = i.to_le_bytes().repeat(9);
            store.put(&k, &v).unwrap();
            expect.push((k, v));
        }
        store.erase(b"key-0100").unwrap();
        expect.retain(|(k, _)| k != b"key-0100");
    }
    let store = LogStore::open(cfg(s.path())).unwrap();
    assert_eq!(full_state(&store), expect);
    let st = store.stats();
    assert_eq!(st.recoveries, 1);
    assert_eq!(st.replayed_records, 201);
    assert_eq!(st.torn_tail_truncations, 0);
}

#[test]
fn torn_garbage_tail_is_truncated_not_fatal() {
    let s = Scratch::new("torn-garbage");
    {
        let store = LogStore::open(cfg(s.path())).unwrap();
        for i in 0..50u32 {
            store.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
    }
    let wal = newest_wal(s.path());
    let mut bytes = std::fs::read(&wal).unwrap();
    let good_len = bytes.len();
    bytes.extend_from_slice(&[0xAB; 13]); // torn header + garbage
    std::fs::write(&wal, &bytes).unwrap();

    let store = LogStore::open(cfg(s.path())).unwrap();
    assert_eq!(store.len(), 50);
    assert!(store.stats().torn_tail_truncations >= 1);
    drop(store);
    // A second reopen sees the truncated (clean) file.
    assert!(std::fs::metadata(&wal).unwrap().len() <= good_len as u64);
}

#[test]
fn torn_mid_record_tail_loses_only_the_torn_record() {
    let s = Scratch::new("torn-record");
    {
        let store = LogStore::open(cfg(s.path())).unwrap();
        for i in 0..20u32 {
            store
                .put(format!("k{i:02}").as_bytes(), &[i as u8; 64])
                .unwrap();
        }
    }
    let wal = newest_wal(s.path());
    let bytes = std::fs::read(&wal).unwrap();
    // Cut into the last record's body: simulates the crash landing mid-write.
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

    let store = LogStore::open(cfg(s.path())).unwrap();
    assert_eq!(store.len(), 19, "only the torn final record is lost");
    assert_eq!(store.get(b"k19"), None);
    assert_eq!(store.get(b"k18").as_deref(), Some(&[18u8; 64][..]));
    assert!(store.stats().torn_tail_truncations >= 1);
}

#[test]
fn torn_batch_applies_nothing() {
    let s = Scratch::new("torn-batch");
    {
        let store = LogStore::open(cfg(s.path())).unwrap();
        store.put(b"before", b"1").unwrap();
        let batch: Vec<_> = (0..32u32)
            .map(|i| (format!("batch-{i:02}").into_bytes(), vec![i as u8; 48]))
            .collect();
        store.put_batch(&batch).unwrap();
    }
    let wal = newest_wal(s.path());
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let store = LogStore::open(cfg(s.path())).unwrap();
    assert_eq!(store.get(b"before").as_deref(), Some(&b"1"[..]));
    for i in 0..32u32 {
        assert_eq!(
            store.get(format!("batch-{i:02}").as_bytes()),
            None,
            "a torn batch record must apply atomically: all or nothing"
        );
    }
}

#[test]
fn checkpoint_prunes_wal_and_reopen_is_byte_identical() {
    let s = Scratch::new("checkpoint");
    let expect;
    {
        let store = LogStore::open(cfg(s.path())).unwrap();
        for i in 0..100u32 {
            store
                .put(format!("k{i:03}").as_bytes(), &[1u8; 32])
                .unwrap();
        }
        store.erase(b"k050").unwrap();
        store.checkpoint().unwrap();
        // Post-freeze writes land in the fresh WAL.
        store.put(b"k050", b"resurrected").unwrap();
        store.put(b"zzz", b"tail").unwrap();
        expect = full_state(&store);
        let st = store.stats();
        assert_eq!(st.memtable_flushes, 1);
        assert_eq!(st.segments, 1);
    }
    let store = LogStore::open(cfg(s.path())).unwrap();
    assert_eq!(full_state(&store), expect);
    let st = store.stats();
    // Only the two post-freeze records replay; the rest came from the segment.
    assert_eq!(st.replayed_records, 2);
    assert_eq!(store.get(b"k050").as_deref(), Some(&b"resurrected"[..]));
}

#[test]
fn compaction_merges_newest_wins_and_keeps_tombstones() {
    let s = Scratch::new("compact");
    let expect;
    {
        let store = LogStore::open(cfg(s.path())).unwrap();
        for round in 0..4u32 {
            for i in 0..30u32 {
                let v = format!("round-{round}-{i}");
                store
                    .put(format!("k{i:02}").as_bytes(), v.as_bytes())
                    .unwrap();
            }
            store
                .erase(format!("k{:02}", round * 7).as_bytes())
                .unwrap();
            store.checkpoint().unwrap();
        }
        assert_eq!(store.stats().segments, 4);
        store.compact_now().unwrap();
        let st = store.stats();
        assert_eq!(st.segments, 1);
        assert_eq!(st.compactions, 1);
        expect = full_state(&store);
        // Erased-in-last-round key must stay dead through the merge.
        assert_eq!(store.get(b"k21"), None);
        assert_eq!(
            store.get(b"k01").as_deref(),
            Some(&b"round-3-1"[..]),
            "newest round wins"
        );
    }
    let store = LogStore::open(cfg(s.path())).unwrap();
    assert_eq!(full_state(&store), expect);
}

#[test]
fn concurrent_group_commit_loses_nothing_and_amortizes_fsyncs() {
    let s = Scratch::new("group");
    const WRITERS: usize = 8;
    const PER: usize = 50;
    {
        let store = Arc::new(LogStore::open(cfg(s.path())).unwrap());
        let threads: Vec<_> = (0..WRITERS)
            .map(|w| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        let k = format!("w{w}-{i:03}");
                        store.put(k.as_bytes(), k.as_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let st = store.stats();
        assert_eq!(st.wal_records, (WRITERS * PER) as u64);
        assert_eq!(st.group_committed_records, (WRITERS * PER) as u64);
        assert!(
            st.fsyncs <= st.wal_records,
            "group commit must never fsync more than once per record"
        );
        assert!(st.mean_group_size() >= 1.0);
    }
    let store = LogStore::open(cfg(s.path())).unwrap();
    assert_eq!(store.len(), WRITERS * PER);
    for w in 0..WRITERS {
        for i in 0..PER {
            let k = format!("w{w}-{i:03}");
            assert_eq!(store.get(k.as_bytes()).as_deref(), Some(k.as_bytes()));
        }
    }
}

#[test]
fn fsync_per_op_mode_syncs_every_record() {
    let s = Scratch::new("serial");
    let store = LogStore::open(cfg(s.path()).with_group_commit(false)).unwrap();
    for i in 0..10u32 {
        store.put(format!("k{i}").as_bytes(), b"v").unwrap();
    }
    let st = store.stats();
    assert_eq!(st.wal_records, 10);
    assert_eq!(st.fsyncs, 10);
    assert!((st.mean_group_size() - 1.0).abs() < 1e-9);
}

#[test]
fn flush_is_a_group_commit_barrier() {
    let s = Scratch::new("flush");
    let store = LogStore::open(cfg(s.path())).unwrap();
    store.put(b"k", b"v").unwrap();
    let before = store.stats();
    store.flush().unwrap();
    let after = store.stats();
    assert_eq!(after.flush_barriers, before.flush_barriers + 1);
    assert_eq!(after.fsyncs, before.fsyncs + 1);
}

#[test]
fn span_sink_sees_all_durability_interval_kinds() {
    let s = Scratch::new("sink");
    let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let sink = {
        let seen = seen.clone();
        Arc::new(move |op: StoreOp, d: Duration| seen.lock().push((op, d)))
    };
    {
        let store = LogStore::open(cfg(s.path()).with_sink(sink.clone())).unwrap();
        store.put(b"k", b"v").unwrap();
        store.checkpoint().unwrap();
        store.put(b"k2", b"v2").unwrap();
        store.checkpoint().unwrap();
        store.compact_now().unwrap();
    }
    // Reopen emits a Recovery interval through the sink as well.
    let _store = LogStore::open(cfg(s.path()).with_sink(sink)).unwrap();
    let ops: Vec<StoreOp> = seen.lock().iter().map(|(op, _)| *op).collect();
    for want in [
        StoreOp::WalAppend,
        StoreOp::Fsync,
        StoreOp::Compaction,
        StoreOp::Recovery,
    ] {
        assert!(ops.contains(&want), "sink never saw {want:?}: {ops:?}");
    }
    assert_eq!(StoreOp::Recovery.label(), "store_recovery");
}

/// Property-style: a random op sequence against the engine matches a model
/// BTreeMap, survives reopen byte-identically, and a reopen after truncating
/// the WAL at an arbitrary byte equals the model of some op-sequence prefix.
#[test]
fn randomized_ops_match_model_across_crashes() {
    for seed in [7u64, 42, 1337] {
        let s = Scratch::new(&format!("model-{seed}"));
        let mut rng = Rng(seed);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        // Small thresholds so freezes + compactions happen organically.
        let config = || {
            cfg(s.path())
                .with_memtable_flush_bytes(1024)
                .with_compact_segments(2)
        };
        {
            let store = LogStore::open(config()).unwrap();
            for _ in 0..400 {
                let r = rng.next();
                let key = format!("k{:02}", r % 64).into_bytes();
                match r % 10 {
                    0..=5 => {
                        let val = vec![(r >> 8) as u8; (r % 40) as usize + 1];
                        store.put(&key, &val).unwrap();
                        model.insert(key, val);
                    }
                    6..=7 => {
                        let existed = store.erase(&key).unwrap();
                        assert_eq!(existed, model.remove(&key).is_some());
                    }
                    8 => {
                        let pairs: Vec<_> = (0..(r % 5 + 1))
                            .map(|j| {
                                let k = format!("b{:02}", (r + j) % 64).into_bytes();
                                (k, vec![j as u8; 8])
                            })
                            .collect();
                        store.put_batch(&pairs).unwrap();
                        for (k, v) in pairs {
                            model.insert(k, v);
                        }
                    }
                    _ => store.maintenance_tick(),
                }
            }
            let got: BTreeMap<_, _> = full_state(&store).into_iter().collect();
            assert_eq!(got, model, "seed {seed}: live state diverged");
        }
        let store = LogStore::open(config()).unwrap();
        let got: BTreeMap<_, _> = full_state(&store).into_iter().collect();
        assert_eq!(got, model, "seed {seed}: reopen diverged");
        drop(store);

        // Crash mid-WAL-write: truncating at an arbitrary byte must yield
        // the state after some prefix of the surviving records — never a
        // partial record, never corruption.
        let wal = newest_wal(s.path());
        let bytes = std::fs::read(&wal).unwrap();
        if !bytes.is_empty() {
            let cut = (rng.next() as usize) % bytes.len();
            std::fs::write(&wal, &bytes[..cut]).unwrap();
            let store = LogStore::open(config()).unwrap();
            // No assertion on *which* prefix (the torn record was unacked);
            // the recovery itself must be clean and reads must work.
            let st = store.stats();
            assert_eq!(st.recoveries, 1);
            for (k, v) in full_state(&store) {
                assert!(!k.is_empty() || !v.is_empty());
            }
        }
    }
}
