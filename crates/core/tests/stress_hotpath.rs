//! Concurrency stress test for the measurement hot path: 8 threads hammer
//! one `Profiler` and one `Tracer` with overlapping callpaths, and the
//! accumulated profile must match a single-threaded replay of the exact
//! same workload bit-for-bit. This is the correctness contract the striped
//! profiler and the per-thread trace segments must uphold: striping may
//! change *where* rows live, never *what* they accumulate.

use symbi_core::{
    register_entity, Callpath, EntityId, EventSamples, Interval, ProfileRow, Profiler, Side,
    TraceEvent, TraceEventKind, Tracer,
};

const THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 2000;

/// Deterministic op `i` of thread `t`: every thread cycles through the
/// same small set of callpaths and peers, so stripes see heavy overlap
/// (the contended case the striped design must keep exact).
fn op(t: u64, i: u64, paths: &[Callpath], peers: &[EntityId]) -> (Callpath, EntityId, Side, u64) {
    let cp = paths[((t + i) % paths.len() as u64) as usize];
    let peer = peers[((t * 3 + i) % peers.len() as u64) as usize];
    let side = if (t + i).is_multiple_of(2) {
        Side::Origin
    } else {
        Side::Target
    };
    let ns = (t + 1) * 10 + (i % 7);
    (cp, peer, side, ns)
}

fn apply(p: &Profiler, me: EntityId, t: u64, i: u64, paths: &[Callpath], peers: &[EntityId]) {
    let (cp, peer, side, ns) = op(t, i, paths, peers);
    p.record(
        me,
        peer,
        side,
        cp,
        &[
            (Interval::OriginExecution, ns),
            (Interval::TargetUltHandler, ns / 2),
        ],
    );
}

/// Key rows for order-insensitive comparison.
fn sorted_rows(p: &Profiler) -> Vec<ProfileRow> {
    let mut rows = p.snapshot();
    rows.sort_by_key(|r| {
        (
            r.callpath.0,
            r.peer.0,
            match r.side {
                Side::Origin => 0u8,
                Side::Target => 1u8,
            },
        )
    });
    rows
}

#[test]
fn concurrent_record_matches_serial_replay_exactly() {
    let me = register_entity("stress-entity");
    let peers: Vec<EntityId> = (0..5)
        .map(|i| register_entity(&format!("stress-peer-{i}")))
        .collect();
    let paths: Vec<Callpath> = (0..16)
        .map(|i| Callpath::root(&format!("stress_rpc_{i}")).push("stress_leaf"))
        .collect();

    // Concurrent run: 8 threads over one striped profiler + one tracer.
    let profiler = std::sync::Arc::new(Profiler::new());
    let tracer = std::sync::Arc::new(Tracer::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let profiler = profiler.clone();
            let tracer = tracer.clone();
            let paths = paths.clone();
            let peers = peers.clone();
            std::thread::spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    apply(&profiler, me, t, i, &paths, &peers);
                    let (cp, peer, _side, ns) = op(t, i, &paths, &peers);
                    tracer.record(TraceEvent {
                        request_id: t * OPS_PER_THREAD + i,
                        order: 0,
                        span: 0,
                        parent_span: 0,
                        hop: 0,
                        lamport: ns,
                        wall_ns: symbi_core::now_ns(),
                        kind: TraceEventKind::TargetUltStart,
                        entity: peer,
                        callpath: cp,
                        samples: EventSamples::default(),
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Serial replay of the identical workload into a fresh profiler.
    let replay = Profiler::new();
    for t in 0..THREADS {
        for i in 0..OPS_PER_THREAD {
            apply(&replay, me, t, i, &paths, &peers);
        }
    }

    let concurrent = sorted_rows(&profiler);
    let serial = sorted_rows(&replay);
    assert_eq!(concurrent.len(), serial.len(), "row sets differ");
    for (c, s) in concurrent.iter().zip(serial.iter()) {
        assert_eq!(
            (c.callpath, c.peer, c.side),
            (s.callpath, s.peer, s.side),
            "row keys diverged"
        );
        assert_eq!(c.count, s.count, "count mismatch on {:?}", c.callpath);
        assert_eq!(
            c.cumulative_ns, s.cumulative_ns,
            "cumulative ns mismatch on {:?}",
            c.callpath
        );
    }

    // Tracer: every event recorded by every thread must survive the merge,
    // once, and drain in (wall_ns, order) order.
    let events = tracer.drain();
    assert_eq!(events.len(), (THREADS * OPS_PER_THREAD) as usize);
    let mut ids: Vec<u64> = events.iter().map(|e| e.request_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        (THREADS * OPS_PER_THREAD) as usize,
        "trace merge lost or duplicated events"
    );
    assert!(
        events
            .windows(2)
            .all(|w| (w[0].wall_ns, w[0].order) <= (w[1].wall_ns, w[1].order)),
        "drained events out of order"
    );
    assert!(tracer.is_empty());
}
