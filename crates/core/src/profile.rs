//! Distributed callpath profiles (paper §IV-A1).
//!
//! Each entity accumulates, per `(callpath, peer)` pair, the call count
//! and the cumulative time of each Table III interval it can observe from
//! its side of the RPC. Origin entities record origin-side intervals;
//! target entities record target-side intervals. The analysis stage merges
//! snapshots from all entities into per-callpath aggregates (the global
//! analysis the paper's "profile summary script" performs).
//!
//! ## Concurrency
//!
//! `record()` sits on the RPC completion path of every handler ULT, so the
//! accumulator is **striped**: rows are spread over N (power-of-two,
//! CPU-count-derived) independently-locked shards keyed by a mix of the
//! callpath hash, peer, and side. Concurrent recorders touching different
//! callpaths land on different stripes and never contend; recorders of the
//! *same* row share one stripe lock, which is the minimum serialization the
//! `count`/`cumulative_ns` accumulation semantics require.

use crate::callpath::Callpath;
use crate::entity::EntityId;
use crate::intervals::Interval;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Which side of the RPC a row was measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Measured by the calling entity.
    Origin,
    /// Measured by the servicing entity.
    Target,
}

/// Accumulated statistics for one `(callpath, peer, side)` combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// The callpath ancestry value.
    pub callpath: Callpath,
    /// The entity that recorded this row.
    pub entity: EntityId,
    /// The peer on the other side of the RPC.
    pub peer: EntityId,
    /// Which side `entity` was on.
    pub side: Side,
    /// Number of completed RPCs.
    pub count: u64,
    /// Cumulative nanoseconds per interval (indexed by
    /// [`Interval::index`]); intervals not observable from this side
    /// remain zero.
    pub cumulative_ns: [u64; Interval::COUNT],
}

impl ProfileRow {
    fn new(callpath: Callpath, entity: EntityId, peer: EntityId, side: Side) -> Self {
        ProfileRow {
            callpath,
            entity,
            peer,
            side,
            count: 0,
            cumulative_ns: [0; Interval::COUNT],
        }
    }

    /// Cumulative time of one interval.
    pub fn interval_ns(&self, i: Interval) -> u64 {
        self.cumulative_ns[i.index()]
    }
}

/// Number of profiler stripes: the CPU count rounded up to a power of two,
/// floored at 8 so the striped path is exercised (and collision-resistant)
/// even on small hosts, capped at 64 to bound snapshot/reset fan-out.
pub(crate) fn stripe_count() -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cpus.next_power_of_two().clamp(8, 64)
}

/// Finalization step of splitmix64: a cheap, high-quality 64-bit mixer.
#[inline]
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

type RowMap = HashMap<(u64, EntityId, Side), ProfileRow>;

/// Per-entity profile accumulator. Cheap to record into from many ULTs:
/// see the module docs for the striping scheme.
#[derive(Debug)]
pub struct Profiler {
    stripes: Box<[Mutex<RowMap>]>,
    mask: u64,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// New empty profiler with a CPU-count-derived stripe count.
    pub fn new() -> Self {
        Self::with_stripes(stripe_count())
    }

    /// New empty profiler with an explicit stripe count (rounded up to a
    /// power of two; benchmarks use this to pin the shape).
    pub fn with_stripes(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        Profiler {
            stripes: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// The number of stripes (power of two).
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    #[inline]
    fn stripe_for(&self, callpath: u64, peer: EntityId, side: Side) -> &Mutex<RowMap> {
        let side_bit = match side {
            Side::Origin => 0u64,
            Side::Target => 1u64,
        };
        let h = mix64(callpath ^ peer.0.rotate_left(17) ^ (side_bit << 63));
        &self.stripes[(h & self.mask) as usize]
    }

    /// Record one completed RPC observation.
    ///
    /// `measurements` lists the intervals observed with their durations in
    /// nanoseconds; missing intervals simply don't accumulate.
    pub fn record(
        &self,
        entity: EntityId,
        peer: EntityId,
        side: Side,
        callpath: Callpath,
        measurements: &[(Interval, u64)],
    ) {
        let mut rows = self.stripe_for(callpath.0, peer, side).lock();
        let row = rows
            .entry((callpath.0, peer, side))
            .or_insert_with(|| ProfileRow::new(callpath, entity, peer, side));
        row.count += 1;
        for (interval, ns) in measurements {
            row.cumulative_ns[interval.index()] += ns;
        }
    }

    /// Number of distinct rows recorded.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.lock().is_empty())
    }

    /// Snapshot all rows (for merging into a global analysis). Stripes are
    /// locked one at a time, so rows recorded concurrently with the
    /// snapshot may or may not be included — same per-row atomicity as the
    /// seed's single-lock design, which also never froze the whole table
    /// relative to in-flight recorders on other rows.
    pub fn snapshot(&self) -> Vec<ProfileRow> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            out.extend(stripe.lock().values().cloned());
        }
        out
    }

    /// Discard all rows (between experiment repetitions).
    pub fn reset(&self) {
        for stripe in self.stripes.iter() {
            stripe.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::register_entity;

    #[test]
    fn record_accumulates_counts_and_times() {
        let p = Profiler::new();
        let me = register_entity("origin-0");
        let peer = register_entity("target-0");
        let cp = Callpath::root("rpc_a");
        p.record(
            me,
            peer,
            Side::Origin,
            cp,
            &[
                (Interval::OriginExecution, 100),
                (Interval::InputSerialization, 10),
            ],
        );
        p.record(
            me,
            peer,
            Side::Origin,
            cp,
            &[(Interval::OriginExecution, 50)],
        );
        let rows = p.snapshot();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.count, 2);
        assert_eq!(row.interval_ns(Interval::OriginExecution), 150);
        assert_eq!(row.interval_ns(Interval::InputSerialization), 10);
        assert_eq!(row.interval_ns(Interval::TargetUltHandler), 0);
    }

    #[test]
    fn distinct_callpaths_get_distinct_rows() {
        let p = Profiler::new();
        let me = register_entity("o");
        let peer = register_entity("t");
        p.record(me, peer, Side::Origin, Callpath::root("a"), &[]);
        p.record(me, peer, Side::Origin, Callpath::root("b"), &[]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn distinct_peers_get_distinct_rows() {
        let p = Profiler::new();
        let me = register_entity("o");
        let t1 = register_entity("t1");
        let t2 = register_entity("t2");
        let cp = Callpath::root("x");
        p.record(me, t1, Side::Origin, cp, &[]);
        p.record(me, t2, Side::Origin, cp, &[]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn origin_and_target_sides_are_separate_rows() {
        let p = Profiler::new();
        let me = register_entity("both");
        let peer = register_entity("peer");
        let cp = Callpath::root("y");
        p.record(me, peer, Side::Origin, cp, &[]);
        p.record(me, peer, Side::Target, cp, &[]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn reset_clears_rows() {
        let p = Profiler::new();
        let me = register_entity("o");
        let peer = register_entity("t");
        p.record(me, peer, Side::Origin, Callpath::root("z"), &[]);
        assert!(!p.is_empty());
        p.reset();
        assert!(p.is_empty());
    }

    #[test]
    fn stripe_count_is_power_of_two() {
        let p = Profiler::new();
        assert!(p.stripes().is_power_of_two());
        let p2 = Profiler::with_stripes(5);
        assert_eq!(p2.stripes(), 8);
    }

    #[test]
    fn single_stripe_profiler_still_correct() {
        let p = Profiler::with_stripes(1);
        let me = register_entity("one");
        let peer = register_entity("two");
        p.record(me, peer, Side::Origin, Callpath::root("a1"), &[]);
        p.record(me, peer, Side::Origin, Callpath::root("b1"), &[]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn rows_spread_across_stripes() {
        // With many distinct callpaths, at least two stripes must be
        // populated (probabilistically certain with 64 paths ≥ 8 stripes).
        let p = Profiler::new();
        let me = register_entity("spread-o");
        let peer = register_entity("spread-t");
        for i in 0..64 {
            p.record(
                me,
                peer,
                Side::Origin,
                Callpath::root(&format!("spread_{i}")),
                &[],
            );
        }
        let populated = p.stripes.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(populated >= 2, "rows all landed on one stripe");
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let p = std::sync::Arc::new(Profiler::new());
        let me = register_entity("o");
        let peer = register_entity("t");
        let cp = Callpath::root("hot");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        p.record(
                            me,
                            peer,
                            Side::Origin,
                            cp,
                            &[(Interval::OriginExecution, 1)],
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rows = p.snapshot();
        assert_eq!(rows[0].count, 4000);
        assert_eq!(rows[0].interval_ns(Interval::OriginExecution), 4000);
    }
}
