//! Distributed callpath profiles (paper §IV-A1).
//!
//! Each entity accumulates, per `(callpath, peer)` pair, the call count
//! and the cumulative time of each Table III interval it can observe from
//! its side of the RPC. Origin entities record origin-side intervals;
//! target entities record target-side intervals. The analysis stage merges
//! snapshots from all entities into per-callpath aggregates (the global
//! analysis the paper's "profile summary script" performs).

use crate::entity::EntityId;
use crate::intervals::Interval;
use crate::callpath::Callpath;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Which side of the RPC a row was measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Measured by the calling entity.
    Origin,
    /// Measured by the servicing entity.
    Target,
}

/// Accumulated statistics for one `(callpath, peer, side)` combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// The callpath ancestry value.
    pub callpath: Callpath,
    /// The entity that recorded this row.
    pub entity: EntityId,
    /// The peer on the other side of the RPC.
    pub peer: EntityId,
    /// Which side `entity` was on.
    pub side: Side,
    /// Number of completed RPCs.
    pub count: u64,
    /// Cumulative nanoseconds per interval (indexed by
    /// [`Interval::index`]); intervals not observable from this side
    /// remain zero.
    pub cumulative_ns: [u64; Interval::COUNT],
}

impl ProfileRow {
    fn new(callpath: Callpath, entity: EntityId, peer: EntityId, side: Side) -> Self {
        ProfileRow {
            callpath,
            entity,
            peer,
            side,
            count: 0,
            cumulative_ns: [0; Interval::COUNT],
        }
    }

    /// Cumulative time of one interval.
    pub fn interval_ns(&self, i: Interval) -> u64 {
        self.cumulative_ns[i.index()]
    }
}

/// Per-entity profile accumulator. Cheap to record into from many ULTs.
#[derive(Debug, Default)]
pub struct Profiler {
    rows: Mutex<HashMap<(u64, EntityId, Side), ProfileRow>>,
}

impl Profiler {
    /// New empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed RPC observation.
    ///
    /// `measurements` lists the intervals observed with their durations in
    /// nanoseconds; missing intervals simply don't accumulate.
    pub fn record(
        &self,
        entity: EntityId,
        peer: EntityId,
        side: Side,
        callpath: Callpath,
        measurements: &[(Interval, u64)],
    ) {
        let mut rows = self.rows.lock();
        let row = rows
            .entry((callpath.0, peer, side))
            .or_insert_with(|| ProfileRow::new(callpath, entity, peer, side));
        row.count += 1;
        for (interval, ns) in measurements {
            row.cumulative_ns[interval.index()] += ns;
        }
    }

    /// Number of distinct rows recorded.
    pub fn len(&self) -> usize {
        self.rows.lock().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.lock().is_empty()
    }

    /// Snapshot all rows (for merging into a global analysis).
    pub fn snapshot(&self) -> Vec<ProfileRow> {
        self.rows.lock().values().cloned().collect()
    }

    /// Discard all rows (between experiment repetitions).
    pub fn reset(&self) {
        self.rows.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::register_entity;

    #[test]
    fn record_accumulates_counts_and_times() {
        let p = Profiler::new();
        let me = register_entity("origin-0");
        let peer = register_entity("target-0");
        let cp = Callpath::root("rpc_a");
        p.record(
            me,
            peer,
            Side::Origin,
            cp,
            &[(Interval::OriginExecution, 100), (Interval::InputSerialization, 10)],
        );
        p.record(me, peer, Side::Origin, cp, &[(Interval::OriginExecution, 50)]);
        let rows = p.snapshot();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.count, 2);
        assert_eq!(row.interval_ns(Interval::OriginExecution), 150);
        assert_eq!(row.interval_ns(Interval::InputSerialization), 10);
        assert_eq!(row.interval_ns(Interval::TargetUltHandler), 0);
    }

    #[test]
    fn distinct_callpaths_get_distinct_rows() {
        let p = Profiler::new();
        let me = register_entity("o");
        let peer = register_entity("t");
        p.record(me, peer, Side::Origin, Callpath::root("a"), &[]);
        p.record(me, peer, Side::Origin, Callpath::root("b"), &[]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn distinct_peers_get_distinct_rows() {
        let p = Profiler::new();
        let me = register_entity("o");
        let t1 = register_entity("t1");
        let t2 = register_entity("t2");
        let cp = Callpath::root("x");
        p.record(me, t1, Side::Origin, cp, &[]);
        p.record(me, t2, Side::Origin, cp, &[]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn origin_and_target_sides_are_separate_rows() {
        let p = Profiler::new();
        let me = register_entity("both");
        let peer = register_entity("peer");
        let cp = Callpath::root("y");
        p.record(me, peer, Side::Origin, cp, &[]);
        p.record(me, peer, Side::Target, cp, &[]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn reset_clears_rows() {
        let p = Profiler::new();
        let me = register_entity("o");
        let peer = register_entity("t");
        p.record(me, peer, Side::Origin, Callpath::root("z"), &[]);
        assert!(!p.is_empty());
        p.reset();
        assert!(p.is_empty());
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let p = std::sync::Arc::new(Profiler::new());
        let me = register_entity("o");
        let peer = register_entity("t");
        let cp = Callpath::root("hot");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        p.record(me, peer, Side::Origin, cp, &[(Interval::OriginExecution, 1)]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rows = p.snapshot();
        assert_eq!(rows[0].count, 4000);
        assert_eq!(rows[0].interval_ns(Interval::OriginExecution), 4000);
    }
}
