//! Lamport logical clocks (paper §IV-A2: "We implement Lamport's algorithm
//! to mitigate clock skew in the system").
//!
//! Each Margo instance owns one clock. Local trace events tick it; a
//! received RPC merges the sender's clock so that causally-ordered events
//! always carry increasing values even if wall clocks drift between
//! "nodes".

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing logical clock.
#[derive(Debug, Default)]
pub struct LamportClock {
    counter: AtomicU64,
}

impl LamportClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance for a local event; returns the event's timestamp.
    pub fn tick(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Merge a timestamp received from a peer (on message receipt):
    /// the clock jumps past `received` if it was behind, then ticks.
    /// Returns the receive event's timestamp.
    pub fn merge(&self, received: u64) -> u64 {
        let mut cur = self.counter.load(Ordering::Acquire);
        loop {
            let next = cur.max(received) + 1;
            match self
                .counter
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return next,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value without advancing.
    pub fn now(&self) -> u64 {
        self.counter.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tick_is_strictly_increasing() {
        let c = LamportClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn merge_jumps_past_received() {
        let c = LamportClock::new();
        c.tick(); // 1
        let t = c.merge(100);
        assert_eq!(t, 101);
        assert!(c.tick() > 101);
    }

    #[test]
    fn merge_with_stale_value_still_ticks() {
        let c = LamportClock::new();
        for _ in 0..10 {
            c.tick();
        }
        let t = c.merge(3);
        assert_eq!(t, 11);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let c = Arc::new(LamportClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || (0..1000).map(|_| c.tick()).collect::<Vec<u64>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        assert_eq!(all.len(), before, "duplicate lamport timestamps");
    }

    #[test]
    fn causal_ordering_across_two_clocks() {
        // Simulate A sending to B: B's receive must order after A's send.
        let a = LamportClock::new();
        let b = LamportClock::new();
        for _ in 0..50 {
            a.tick();
        }
        let send_ts = a.tick();
        let recv_ts = b.merge(send_ts);
        assert!(recv_ts > send_ts);
    }
}
