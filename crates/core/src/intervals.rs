//! The nine RPC intervals of the paper's Table III and how each one is
//! measured.
//!
//! | Interval | Start | End | Strategy |
//! |---|---|---|---|
//! | Origin Execution Time | t1 | t14 | ULT-local key |
//! | Input Serialization Time | t2 | t3 | Mercury PVAR |
//! | Target Internal RDMA Transfer Time | t3 | t4 | Mercury PVAR |
//! | Target ULT Handler Time | t4 | t5 | ULT-local key |
//! | Input Deserialization Time | t6 | t7 | Mercury PVAR |
//! | Target ULT Execution Time (exclusive) | t5 | t8 | ULT-local key |
//! | Output Serialization Time | t9 | t10 | Mercury PVAR |
//! | Target ULT Completion Callback Time | t8 | t13 | ULT-local key |
//! | Origin Completion Callback Time | t12 | t14 | Mercury PVAR |

/// How an interval is measured (the paper's two instrumentation
/// strategies, combined in Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Timestamps stored in ULT-local keys by Margo.
    UltLocalKey,
    /// Sampled from a HANDLE-bound Mercury PVAR.
    MercuryPvar,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Strategy::UltLocalKey => "ULT-local key",
            Strategy::MercuryPvar => "Mercury PVAR",
        })
    }
}

/// One of the nine instrumented intervals of an RPC's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Interval {
    /// t1→t14 on the origin: full request latency as seen by the caller.
    OriginExecution = 0,
    /// t2→t3 on the origin: input serialization.
    InputSerialization = 1,
    /// t3→t4 on the target: internal RDMA pull of overflowed metadata.
    TargetInternalRdma = 2,
    /// t4→t5 on the target: time the handler ULT waits in the pool.
    TargetUltHandler = 3,
    /// t6→t7 on the target: input deserialization.
    InputDeserialization = 4,
    /// t5→t8 on the target: handler execution (exclusive of nested RPCs'
    /// own accounting, which appears under deeper callpaths).
    TargetUltExecution = 5,
    /// t9→t10 on the target: output serialization.
    OutputSerialization = 6,
    /// t8→t13 on the target: delay until the response-sent callback runs.
    TargetCompletionCallback = 7,
    /// t12→t14 on the origin: delay between the response entering the
    /// completion queue and its callback being triggered.
    OriginCompletionCallback = 8,
}

impl Interval {
    /// Number of intervals.
    pub const COUNT: usize = 9;

    /// All intervals in Table III order.
    pub const ALL: [Interval; Interval::COUNT] = [
        Interval::OriginExecution,
        Interval::InputSerialization,
        Interval::TargetInternalRdma,
        Interval::TargetUltHandler,
        Interval::InputDeserialization,
        Interval::TargetUltExecution,
        Interval::OutputSerialization,
        Interval::TargetCompletionCallback,
        Interval::OriginCompletionCallback,
    ];

    /// The interval's name as printed in Table III.
    pub fn label(self) -> &'static str {
        match self {
            Interval::OriginExecution => "Origin Execution Time",
            Interval::InputSerialization => "Input Serialization Time",
            Interval::TargetInternalRdma => "Target Internal RDMA Transfer Time",
            Interval::TargetUltHandler => "Target ULT Handler Time",
            Interval::InputDeserialization => "Input Deserialization Time",
            Interval::TargetUltExecution => "Target ULT Execution Time (exclusive)",
            Interval::OutputSerialization => "Output Serialization Time",
            Interval::TargetCompletionCallback => "Target ULT Completion Callback Time",
            Interval::OriginCompletionCallback => "Origin Completion Callback Time",
        }
    }

    /// The `(start, end)` instrumentation points in Figure 2's timeline.
    pub fn endpoints(self) -> (&'static str, &'static str) {
        match self {
            Interval::OriginExecution => ("t1", "t14"),
            Interval::InputSerialization => ("t2", "t3"),
            Interval::TargetInternalRdma => ("t3", "t4"),
            Interval::TargetUltHandler => ("t4", "t5"),
            Interval::InputDeserialization => ("t6", "t7"),
            Interval::TargetUltExecution => ("t5", "t8"),
            Interval::OutputSerialization => ("t9", "t10"),
            Interval::TargetCompletionCallback => ("t8", "t13"),
            Interval::OriginCompletionCallback => ("t12", "t14"),
        }
    }

    /// How this interval is measured (Table III, last column).
    pub fn strategy(self) -> Strategy {
        match self {
            Interval::OriginExecution
            | Interval::TargetUltHandler
            | Interval::TargetUltExecution
            | Interval::TargetCompletionCallback => Strategy::UltLocalKey,
            Interval::InputSerialization
            | Interval::TargetInternalRdma
            | Interval::InputDeserialization
            | Interval::OutputSerialization
            | Interval::OriginCompletionCallback => Strategy::MercuryPvar,
        }
    }

    /// Whether the interval is measured on the origin entity.
    pub fn measured_at_origin(self) -> bool {
        matches!(
            self,
            Interval::OriginExecution
                | Interval::InputSerialization
                | Interval::OriginCompletionCallback
        )
    }

    /// Index into per-callpath accumulation arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Interval::index`].
    pub fn from_index(i: usize) -> Option<Interval> {
        Interval::ALL.get(i).copied()
    }

    /// The intervals that *account for* parts of the origin execution
    /// time: everything except [`Interval::OriginExecution`] itself. The
    /// remainder is the paper's "unaccounted" component (Figure 11).
    pub fn accounted() -> impl Iterator<Item = Interval> {
        Interval::ALL
            .into_iter()
            .filter(|i| *i != Interval::OriginExecution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_intervals_with_unique_indices() {
        let mut idx: Vec<usize> = Interval::ALL.iter().map(|i| i.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..Interval::COUNT).collect::<Vec<_>>());
    }

    #[test]
    fn strategies_match_table_three() {
        assert_eq!(Interval::OriginExecution.strategy(), Strategy::UltLocalKey);
        assert_eq!(
            Interval::InputSerialization.strategy(),
            Strategy::MercuryPvar
        );
        assert_eq!(
            Interval::TargetInternalRdma.strategy(),
            Strategy::MercuryPvar
        );
        assert_eq!(Interval::TargetUltHandler.strategy(), Strategy::UltLocalKey);
        assert_eq!(
            Interval::InputDeserialization.strategy(),
            Strategy::MercuryPvar
        );
        assert_eq!(
            Interval::TargetUltExecution.strategy(),
            Strategy::UltLocalKey
        );
        assert_eq!(
            Interval::OutputSerialization.strategy(),
            Strategy::MercuryPvar
        );
        assert_eq!(
            Interval::TargetCompletionCallback.strategy(),
            Strategy::UltLocalKey
        );
        assert_eq!(
            Interval::OriginCompletionCallback.strategy(),
            Strategy::MercuryPvar
        );
    }

    #[test]
    fn endpoints_match_figure_two() {
        assert_eq!(Interval::OriginExecution.endpoints(), ("t1", "t14"));
        assert_eq!(Interval::TargetUltHandler.endpoints(), ("t4", "t5"));
        assert_eq!(
            Interval::TargetCompletionCallback.endpoints(),
            ("t8", "t13")
        );
    }

    #[test]
    fn accounted_excludes_origin_execution() {
        let accounted: Vec<_> = Interval::accounted().collect();
        assert_eq!(accounted.len(), Interval::COUNT - 1);
        assert!(!accounted.contains(&Interval::OriginExecution));
    }

    #[test]
    fn from_index_roundtrip() {
        for i in Interval::ALL {
            assert_eq!(Interval::from_index(i.index()), Some(i));
        }
        assert_eq!(Interval::from_index(99), None);
    }

    #[test]
    fn origin_side_classification() {
        assert!(Interval::OriginExecution.measured_at_origin());
        assert!(Interval::InputSerialization.measured_at_origin());
        assert!(!Interval::TargetUltExecution.measured_at_origin());
    }
}
