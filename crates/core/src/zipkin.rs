//! Trace stitching and OpenZipkin JSON export.
//!
//! The paper (§V-A3) stitches events sharing a `requestID` from different
//! processes into a Zipkin JSON trace file for Gantt-chart visualization
//! (Figure 5). This module does the same: it groups [`TraceEvent`]s by
//! request id, pairs origin t1/t14 and target t5/t8 events per callpath
//! into spans, links parent/child spans via callpath ancestry, and emits
//! Zipkin v2 JSON. The JSON writer is hand-rolled (no external JSON
//! dependency) with full string escaping.

use crate::callpath::Callpath;
use crate::entity::entity_name;
use crate::trace::{TraceEvent, TraceEventKind};
use std::collections::HashMap;

/// One stitched span: either the origin's view (t1→t14) or the target's
/// view (t5→t8) of a single RPC invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace (request) id.
    pub trace_id: u64,
    /// Unique span id within the trace.
    pub span_id: u64,
    /// Parent span id, if this span has an ancestor in the trace.
    pub parent_id: Option<u64>,
    /// Span name (the callpath's leaf RPC name).
    pub name: String,
    /// Full callpath for tagging.
    pub callpath: Callpath,
    /// Service (entity) name that produced the span.
    pub service: String,
    /// Start timestamp in microseconds since the trace epoch.
    pub timestamp_us: u64,
    /// Duration in microseconds.
    pub duration_us: u64,
    /// Which side of the RPC this span shows.
    pub side: SpanSide,
    /// Wire-propagated span id of the RPC attempt (0 when the events
    /// predate span propagation — parenting then falls back to the
    /// callpath heuristic).
    pub wire_span: u64,
    /// Wire-propagated parent span id (0 at the composition root).
    pub wire_parent: u64,
    /// Annotations carried into Zipkin `tags`: the populated
    /// [`crate::trace::EventSamples`] fields of the paired events (so
    /// `retry_attempt` and `timed_out` mark retried/expired calls) plus
    /// the hop depth.
    pub tags: Vec<(String, String)>,
}

/// Which end of the RPC produced the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanSide {
    /// Origin view: t1→t14.
    Origin,
    /// Target view: t5→t8.
    Target,
}

/// Stitch raw trace events (merged from all entities) into spans.
///
/// Events are grouped by `(request_id, callpath, entity, side)`; a span is
/// produced for every start/end pair found. Orphan events (start without
/// end, e.g. from a crashed handler) are dropped, matching the behaviour
/// of post-mortem trace tooling.
pub fn stitch(events: &[TraceEvent]) -> Vec<Span> {
    // Key: (request_id, callpath, entity, is_origin_side). A handler may
    // invoke the same downstream RPC several times within one request
    // (e.g. the five sdskv_put_rpc calls inside one mobject_write_op), so
    // starts queue up FIFO per key and each end event closes the oldest
    // open start — sequential same-callpath calls pair correctly.
    type Key = (u64, u64, u64, bool);
    let mut ordered: Vec<&TraceEvent> = events.iter().collect();
    ordered.sort_by_key(|e| (e.wall_ns, e.order));

    let mut starts: HashMap<Key, std::collections::VecDeque<&TraceEvent>> = HashMap::new();
    let mut spans = Vec::new();
    let mut next_span_id: u64 = 1;

    for ev in ordered {
        let (side_origin, end_side) = match ev.kind {
            TraceEventKind::OriginForward | TraceEventKind::TargetUltStart => {
                let side_origin = ev.kind == TraceEventKind::OriginForward;
                let key: Key = (ev.request_id, ev.callpath.0, ev.entity.0, side_origin);
                starts.entry(key).or_default().push_back(ev);
                continue;
            }
            TraceEventKind::OriginComplete => (true, SpanSide::Origin),
            TraceEventKind::TargetRespond => (false, SpanSide::Target),
        };
        let key: Key = (ev.request_id, ev.callpath.0, ev.entity.0, side_origin);
        let Some(start) = starts.get_mut(&key).and_then(|q| q.pop_front()) else {
            continue;
        };
        let ts = start.wall_ns / 1_000;
        let dur = ev.wall_ns.saturating_sub(start.wall_ns) / 1_000;
        let mut tags = Vec::new();
        let hop = start.hop.max(ev.hop);
        if hop != 0 {
            tags.push(("hop".to_string(), hop.to_string()));
        }
        // Start-event samples first, end-event samples override: the end
        // event carries the authoritative completion-time measurements.
        for samples in [&start.samples, &ev.samples] {
            samples.for_each_set(|name, v| match tags.iter_mut().find(|(k, _)| k == name) {
                Some(tag) => tag.1 = v.to_string(),
                None => tags.push((name.to_string(), v.to_string())),
            });
        }
        spans.push(Span {
            trace_id: ev.request_id,
            span_id: next_span_id,
            parent_id: None,
            name: leaf_name(ev.callpath),
            callpath: ev.callpath,
            service: entity_name(ev.entity),
            timestamp_us: ts,
            duration_us: dur.max(1),
            side: end_side,
            wire_span: if start.span != 0 { start.span } else { ev.span },
            wire_parent: if start.parent_span != 0 {
                start.parent_span
            } else {
                ev.parent_span
            },
            tags,
        });
        next_span_id += 1;
    }

    link_parents(&mut spans);
    spans.sort_by_key(|s| (s.trace_id, s.timestamp_us));
    spans
}

fn leaf_name(cp: Callpath) -> String {
    crate::callpath::resolve_name(cp.leaf()).unwrap_or_else(|| format!("#{:04x}", cp.leaf()))
}

/// Link spans into a parent/child hierarchy.
///
/// Spans whose events carried a wire-propagated span id are linked by the
/// *real* causal context:
/// * a target span's parent is the origin span sharing its wire span id
///   (the forward that reached it), falling back to the origin span of
///   its wire *parent* id when the attempt's own origin span was never
///   stitched (a retry attempt whose t1 paired into the logical span);
/// * an origin span's parent is the target span of its wire parent id
///   (the handler ULT that issued the sub-RPC), falling back to that
///   wire parent's origin span (a retry attempt under the logical call);
///   a zero wire parent marks the composition root.
///
/// Spans without wire ids (`wire_span == 0`, events recorded before span
/// propagation or with ids disabled) use the callpath heuristic:
/// * a target span's parent is the origin span of the same callpath,
/// * an origin span's parent is the target span of the parent callpath
///   (the handler that issued the downstream RPC), if present.
///
/// When a callpath occurs several times within one trace (repeated
/// downstream calls), the heuristic parent chosen is the latest candidate
/// that started at or before the child — correct for the sequential
/// invocation pattern these traces have, and exactly the ambiguity the
/// wire ids were introduced to remove.
fn link_parents(spans: &mut [Span]) {
    // Wire span id → zipkin span id, per (trace, wire span, side).
    let mut by_wire: HashMap<(u64, u64, bool), u64> = HashMap::new();
    for s in spans.iter() {
        if s.wire_span != 0 {
            by_wire
                .entry((s.trace_id, s.wire_span, s.side == SpanSide::Origin))
                .or_insert(s.span_id);
        }
    }
    // (trace, callpath, is_origin) -> [(timestamp, span_id)] sorted.
    let mut index: HashMap<(u64, u64, bool), Vec<(u64, u64)>> = HashMap::new();
    for s in spans.iter() {
        index
            .entry((s.trace_id, s.callpath.0, s.side == SpanSide::Origin))
            .or_default()
            .push((s.timestamp_us, s.span_id));
    }
    for list in index.values_mut() {
        list.sort_unstable();
    }
    let latest_at_or_before = |list: Option<&Vec<(u64, u64)>>, ts: u64| -> Option<u64> {
        let list = list?;
        let pos = list.partition_point(|(t, _)| *t <= ts);
        if pos == 0 {
            // Clock granularity can order a child a hair before its
            // parent; fall back to the earliest candidate.
            list.first().map(|(_, id)| *id)
        } else {
            Some(list[pos - 1].1)
        }
    };
    for s in spans.iter_mut() {
        if s.wire_span != 0 {
            s.parent_id = match s.side {
                SpanSide::Target => by_wire
                    .get(&(s.trace_id, s.wire_span, true))
                    .or_else(|| by_wire.get(&(s.trace_id, s.wire_parent, true)))
                    .copied()
                    .filter(|&p| p != s.span_id),
                SpanSide::Origin => {
                    if s.wire_parent == 0 {
                        None
                    } else {
                        by_wire
                            .get(&(s.trace_id, s.wire_parent, false))
                            .or_else(|| by_wire.get(&(s.trace_id, s.wire_parent, true)))
                            .copied()
                            .filter(|&p| p != s.span_id)
                    }
                }
            };
            continue;
        }
        match s.side {
            SpanSide::Target => {
                s.parent_id = latest_at_or_before(
                    index.get(&(s.trace_id, s.callpath.0, true)),
                    s.timestamp_us,
                );
            }
            SpanSide::Origin => {
                let parent_cp = s.callpath.parent();
                if !parent_cp.is_empty() {
                    s.parent_id = latest_at_or_before(
                        index.get(&(s.trace_id, parent_cp.0, false)),
                        s.timestamp_us,
                    );
                }
            }
        }
    }
}

/// Render spans as a Zipkin v2 JSON array.
pub fn to_zipkin_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(spans.len() * 256 + 2);
    out.push('[');
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        field(&mut out, "traceId", &format!("{:016x}", s.trace_id), true);
        out.push(',');
        field(&mut out, "id", &format!("{:016x}", s.span_id), true);
        if let Some(p) = s.parent_id {
            out.push(',');
            field(&mut out, "parentId", &format!("{p:016x}"), true);
        }
        out.push(',');
        field(&mut out, "name", &s.name, true);
        out.push(',');
        field(&mut out, "timestamp", &s.timestamp_us.to_string(), false);
        out.push(',');
        field(&mut out, "duration", &s.duration_us.to_string(), false);
        out.push(',');
        out.push_str("\"kind\":");
        out.push_str(match s.side {
            SpanSide::Origin => "\"CLIENT\"",
            SpanSide::Target => "\"SERVER\"",
        });
        out.push(',');
        out.push_str("\"localEndpoint\":{");
        field(&mut out, "serviceName", &s.service, true);
        out.push_str("},");
        out.push_str("\"tags\":{");
        field(&mut out, "callpath", &s.callpath.display(), true);
        for (k, v) in &s.tags {
            out.push(',');
            field(&mut out, k, v, true);
        }
        out.push('}');
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

fn field(out: &mut String, key: &str, value: &str, quote: bool) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    if quote {
        out.push('"');
        escape_into(out, value);
        out.push('"');
    } else {
        out.push_str(value);
    }
}

/// JSON string escaping per RFC 8259.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::register_entity;
    use crate::trace::EventSamples;

    fn ev(
        request_id: u64,
        order: u32,
        wall_ns: u64,
        kind: TraceEventKind,
        entity: crate::EntityId,
        callpath: Callpath,
    ) -> TraceEvent {
        TraceEvent {
            request_id,
            order,
            span: 0,
            parent_span: 0,
            hop: 0,
            lamport: order as u64,
            wall_ns,
            kind,
            entity,
            callpath,
            samples: EventSamples::default(),
        }
    }

    #[test]
    fn stitch_pairs_origin_and_target_spans() {
        let client = register_entity("client");
        let server = register_entity("server");
        let cp = Callpath::root("rpc_x");
        let events = vec![
            ev(1, 0, 1_000, TraceEventKind::OriginForward, client, cp),
            ev(1, 1, 2_000, TraceEventKind::TargetUltStart, server, cp),
            ev(1, 2, 5_000, TraceEventKind::TargetRespond, server, cp),
            ev(1, 3, 7_000, TraceEventKind::OriginComplete, client, cp),
        ];
        let spans = stitch(&events);
        assert_eq!(spans.len(), 2);
        let origin = spans.iter().find(|s| s.side == SpanSide::Origin).unwrap();
        let target = spans.iter().find(|s| s.side == SpanSide::Target).unwrap();
        assert_eq!(origin.duration_us, 6); // 7000-1000 ns = 6 us
        assert_eq!(target.duration_us, 3);
        assert_eq!(target.parent_id, Some(origin.span_id));
        assert_eq!(origin.parent_id, None);
    }

    #[test]
    fn nested_callpath_links_origin_to_parent_target() {
        let client = register_entity("cl2");
        let svc_a = register_entity("svcA");
        let svc_b = register_entity("svcB");
        let top = Callpath::root("top_rpc");
        let nested = top.push("nested_rpc");
        let events = vec![
            // client calls svcA
            ev(9, 0, 0, TraceEventKind::OriginForward, client, top),
            ev(9, 1, 100, TraceEventKind::TargetUltStart, svc_a, top),
            // svcA calls svcB
            ev(9, 2, 200, TraceEventKind::OriginForward, svc_a, nested),
            ev(9, 3, 300, TraceEventKind::TargetUltStart, svc_b, nested),
            ev(9, 4, 400, TraceEventKind::TargetRespond, svc_b, nested),
            ev(9, 5, 500, TraceEventKind::OriginComplete, svc_a, nested),
            ev(9, 6, 600, TraceEventKind::TargetRespond, svc_a, top),
            ev(9, 7, 700, TraceEventKind::OriginComplete, client, top),
        ];
        let spans = stitch(&events);
        assert_eq!(spans.len(), 4);
        let nested_origin = spans
            .iter()
            .find(|s| s.callpath == nested && s.side == SpanSide::Origin)
            .unwrap();
        let top_target = spans
            .iter()
            .find(|s| s.callpath == top && s.side == SpanSide::Target)
            .unwrap();
        // The nested RPC was issued by the handler of the top RPC.
        assert_eq!(nested_origin.parent_id, Some(top_target.span_id));
    }

    #[test]
    fn repeated_same_callpath_calls_produce_separate_spans() {
        // One handler invoking the same downstream RPC three times must
        // yield three distinct origin spans (the Figure 5 situation with
        // the five sdskv_put_rpc calls).
        let svc = register_entity("repeat-svc");
        let cp = Callpath::root("again_rpc");
        let mut events = Vec::new();
        for i in 0..3u64 {
            events.push(ev(
                5,
                (i * 2) as u32,
                1_000 * i + 100,
                TraceEventKind::OriginForward,
                svc,
                cp,
            ));
            events.push(ev(
                5,
                (i * 2 + 1) as u32,
                1_000 * i + 600,
                TraceEventKind::OriginComplete,
                svc,
                cp,
            ));
        }
        let spans = stitch(&events);
        assert_eq!(spans.len(), 3);
        // FIFO pairing: each span lasts 500ns (i.e. 1µs after rounding).
        for s in &spans {
            assert_eq!(s.duration_us, 1);
        }
        let mut ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn orphan_start_events_are_dropped() {
        let client = register_entity("orphan");
        let cp = Callpath::root("lost");
        let events = vec![ev(2, 0, 0, TraceEventKind::OriginForward, client, cp)];
        assert!(stitch(&events).is_empty());
    }

    #[test]
    fn distinct_requests_do_not_cross_stitch() {
        let client = register_entity("cx");
        let cp = Callpath::root("r");
        let events = vec![
            ev(1, 0, 0, TraceEventKind::OriginForward, client, cp),
            ev(2, 1, 10, TraceEventKind::OriginComplete, client, cp),
        ];
        assert!(stitch(&events).is_empty());
    }

    #[test]
    fn zipkin_json_shape() {
        let client = register_entity("jsonsvc");
        let cp = Callpath::root("json_rpc");
        let events = vec![
            ev(3, 0, 1_000, TraceEventKind::OriginForward, client, cp),
            ev(3, 1, 9_000, TraceEventKind::OriginComplete, client, cp),
        ];
        let json = to_zipkin_json(&stitch(&events));
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"traceId\":\"0000000000000003\""));
        assert!(json.contains("\"name\":\"json_rpc\""));
        assert!(json.contains("\"kind\":\"CLIENT\""));
        assert!(json.contains("jsonsvc"));
    }

    #[test]
    fn escape_handles_special_chars() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn empty_input_produces_empty_array() {
        assert_eq!(to_zipkin_json(&[]), "[\n]\n");
    }

    #[test]
    fn span_duration_never_zero() {
        let client = register_entity("zerodur");
        let cp = Callpath::root("fast");
        let events = vec![
            ev(4, 0, 500, TraceEventKind::OriginForward, client, cp),
            ev(4, 1, 500, TraceEventKind::OriginComplete, client, cp),
        ];
        let spans = stitch(&events);
        assert_eq!(spans[0].duration_us, 1);
    }

    #[test]
    fn orphan_t1_among_complete_pairs_does_not_corrupt_stitching() {
        // A client that timed out (t1 recorded, t14 never happens) while
        // other requests on the same callpath completed normally: the
        // orphan must be dropped without pairing someone else's t14 and
        // without producing zero-duration spans.
        let client = register_entity("orphan-mix");
        let cp = Callpath::root("mixed_rpc");
        let events = vec![
            // Completed request 10.
            ev(10, 0, 1_000, TraceEventKind::OriginForward, client, cp),
            ev(10, 1, 8_000, TraceEventKind::OriginComplete, client, cp),
            // Request 11: t1 only, no t14 (e.g. timeout).
            ev(11, 0, 2_000, TraceEventKind::OriginForward, client, cp),
            // Completed request 12.
            ev(12, 0, 3_000, TraceEventKind::OriginForward, client, cp),
            ev(12, 1, 4_000, TraceEventKind::OriginComplete, client, cp),
        ];
        let spans = stitch(&events);
        assert_eq!(spans.len(), 2, "orphan t1 must not become a span");
        assert!(spans.iter().all(|s| s.trace_id != 11));
        assert!(spans.iter().all(|s| s.duration_us > 0));
        // The surviving spans kept their own start times (the orphan did
        // not steal a completion).
        let d10 = spans.iter().find(|s| s.trace_id == 10).unwrap();
        let d12 = spans.iter().find(|s| s.trace_id == 12).unwrap();
        assert_eq!(d10.duration_us, 7);
        assert_eq!(d12.duration_us, 1);
    }

    #[test]
    fn zipkin_json_escapes_round_trip_through_a_parser() {
        // Control characters and non-ASCII service names must survive a
        // serialize → parse round trip (consumers are real JSON parsers).
        let svc = register_entity("svc-ßå\t\u{3}中");
        let cp = Callpath::root("esc_rpc");
        let events = vec![
            ev(6, 0, 1_000, TraceEventKind::OriginForward, svc, cp),
            ev(6, 1, 2_000, TraceEventKind::OriginComplete, svc, cp),
        ];
        let json = to_zipkin_json(&stitch(&events));
        let parsed = crate::telemetry::jsonl::parse_json(&json).expect("valid JSON");
        let arr = parsed.as_arr().expect("top-level array");
        assert_eq!(arr.len(), 1);
        let name = arr[0]
            .get("localEndpoint")
            .and_then(|e| e.get("serviceName"))
            .and_then(|n| n.as_str())
            .expect("serviceName");
        assert_eq!(name, "svc-ßå\t\u{3}中");
    }

    #[allow(clippy::too_many_arguments)]
    fn sev(
        request_id: u64,
        order: u32,
        wall_ns: u64,
        kind: TraceEventKind,
        entity: crate::EntityId,
        callpath: Callpath,
        span: u64,
        parent_span: u64,
        hop: u32,
    ) -> TraceEvent {
        TraceEvent {
            span,
            parent_span,
            hop,
            ..ev(request_id, order, wall_ns, kind, entity, callpath)
        }
    }

    #[test]
    fn wire_span_ids_link_sub_rpc_to_issuing_handler() {
        let client = register_entity("wp-client");
        let svc_a = register_entity("wp-a");
        let svc_b = register_entity("wp-b");
        let top = Callpath::root("wp_top");
        let nested = top.push("wp_sub");
        let t = TraceEventKind::OriginForward;
        let s = TraceEventKind::TargetUltStart;
        let r = TraceEventKind::TargetRespond;
        let c = TraceEventKind::OriginComplete;
        let events = vec![
            sev(9, 0, 0, t, client, top, 10, 0, 1),
            sev(9, 1, 100, s, svc_a, top, 10, 0, 1),
            sev(9, 2, 200, t, svc_a, nested, 11, 10, 2),
            sev(9, 3, 300, s, svc_b, nested, 11, 10, 2),
            sev(9, 4, 400, r, svc_b, nested, 11, 10, 2),
            sev(9, 5, 500, c, svc_a, nested, 11, 10, 2),
            sev(9, 6, 600, r, svc_a, top, 10, 0, 1),
            sev(9, 7, 700, c, client, top, 10, 0, 1),
        ];
        let spans = stitch(&events);
        assert_eq!(spans.len(), 4);
        let find = |cp: Callpath, side| spans.iter().find(|s| s.callpath == cp && s.side == side);
        let top_origin = find(top, SpanSide::Origin).unwrap();
        let top_target = find(top, SpanSide::Target).unwrap();
        let sub_origin = find(nested, SpanSide::Origin).unwrap();
        let sub_target = find(nested, SpanSide::Target).unwrap();
        assert_eq!(top_origin.parent_id, None, "wire parent 0 is the root");
        assert_eq!(top_target.parent_id, Some(top_origin.span_id));
        assert_eq!(
            sub_origin.parent_id,
            Some(top_target.span_id),
            "sub-RPC origin must parent to the handler ULT's target span"
        );
        assert_eq!(sub_target.parent_id, Some(sub_origin.span_id));
        assert_eq!(sub_origin.wire_span, 11);
        assert_eq!(sub_origin.wire_parent, 10);
    }

    #[test]
    fn retry_attempt_target_span_falls_back_to_logical_origin() {
        // Attempt 0 (wire span 20) never reached the target; the retry
        // (wire span 21, parent 20) did. The origin stitches one span
        // t1(20)→t14 and the retry's target span must still find it via
        // its wire *parent*.
        let client = register_entity("rt-client");
        let server = register_entity("rt-server");
        let cp = Callpath::root("rt_rpc");
        let retry_end = TraceEvent {
            samples: EventSamples {
                retry_attempt: Some(1),
                ..Default::default()
            },
            ..sev(
                7,
                5,
                900,
                TraceEventKind::OriginComplete,
                client,
                cp,
                21,
                20,
                1,
            )
        };
        let events = vec![
            sev(7, 0, 0, TraceEventKind::OriginForward, client, cp, 20, 0, 1),
            sev(
                7,
                1,
                300,
                TraceEventKind::OriginForward,
                client,
                cp,
                21,
                20,
                1,
            ),
            sev(
                7,
                2,
                400,
                TraceEventKind::TargetUltStart,
                server,
                cp,
                21,
                20,
                1,
            ),
            sev(
                7,
                3,
                600,
                TraceEventKind::TargetRespond,
                server,
                cp,
                21,
                20,
                1,
            ),
            retry_end,
        ];
        let spans = stitch(&events);
        assert_eq!(spans.len(), 2, "orphan retry t1 must not become a span");
        let origin = spans.iter().find(|s| s.side == SpanSide::Origin).unwrap();
        let target = spans.iter().find(|s| s.side == SpanSide::Target).unwrap();
        assert_eq!(origin.wire_span, 20);
        assert_eq!(target.wire_span, 21);
        assert_eq!(
            target.parent_id,
            Some(origin.span_id),
            "retry target must fall back to the logical call's origin span"
        );
        assert!(origin
            .tags
            .iter()
            .any(|(k, v)| k == "retry_attempt" && v == "1"));
    }

    #[test]
    fn tags_carry_hop_and_event_samples() {
        let client = register_entity("tag-client");
        let cp = Callpath::root("tag_rpc");
        let start = sev(8, 0, 0, TraceEventKind::OriginForward, client, cp, 30, 0, 2);
        let end = TraceEvent {
            samples: EventSamples {
                origin_execution_ns: Some(123),
                timed_out: Some(1),
                ..Default::default()
            },
            ..sev(
                8,
                1,
                500,
                TraceEventKind::OriginComplete,
                client,
                cp,
                30,
                0,
                2,
            )
        };
        let spans = stitch(&[start, end]);
        assert_eq!(spans.len(), 1);
        let tags = &spans[0].tags;
        let get = |k: &str| tags.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str());
        assert_eq!(get("hop"), Some("2"));
        assert_eq!(get("origin_execution_ns"), Some("123"));
        assert_eq!(get("timed_out"), Some("1"));
        let json = to_zipkin_json(&spans);
        assert!(json.contains("\"timed_out\":\"1\""));
        assert!(json.contains("\"hop\":\"2\""));
        let parsed = crate::telemetry::jsonl::parse_json(&json).expect("valid JSON");
        assert_eq!(
            parsed.as_arr().unwrap()[0]
                .get("tags")
                .and_then(|t| t.get("origin_execution_ns"))
                .and_then(|v| v.as_str()),
            Some("123")
        );
    }

    #[test]
    fn span_zero_events_still_use_the_callpath_heuristic() {
        // Legacy events (no wire ids) must keep linking exactly as before.
        let client = register_entity("lg-client");
        let server = register_entity("lg-server");
        let cp = Callpath::root("lg_rpc");
        let events = vec![
            ev(5, 0, 1_000, TraceEventKind::OriginForward, client, cp),
            ev(5, 1, 2_000, TraceEventKind::TargetUltStart, server, cp),
            ev(5, 2, 5_000, TraceEventKind::TargetRespond, server, cp),
            ev(5, 3, 7_000, TraceEventKind::OriginComplete, client, cp),
        ];
        let spans = stitch(&events);
        let origin = spans.iter().find(|s| s.side == SpanSide::Origin).unwrap();
        let target = spans.iter().find(|s| s.side == SpanSide::Target).unwrap();
        assert_eq!(origin.wire_span, 0);
        assert_eq!(target.parent_id, Some(origin.span_id));
    }

    #[test]
    fn escape_round_trips_for_arbitrary_strings() {
        for s in [
            "plain",
            "quotes \" and \\ backslashes",
            "control \u{0}\u{1}\u{1f} chars",
            "newline\nreturn\rtab\t",
            "non-ascii é中😀",
            "",
        ] {
            let mut escaped = String::new();
            escape_into(&mut escaped, s);
            let parsed = crate::telemetry::jsonl::parse_json(&format!("\"{escaped}\""))
                .unwrap_or_else(|e| panic!("escaping {s:?} produced invalid JSON: {e}"));
            assert_eq!(parsed.as_str(), Some(s), "round trip failed for {s:?}");
        }
    }
}
