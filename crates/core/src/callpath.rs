//! Distributed RPC callpath ancestry (paper §IV-A1).
//!
//! Every RPC carries a 64-bit *callpath ancestry* value. At the root, the
//! RPC name is hashed and becomes the lowest 16 bits. When a handler ULT
//! issues a downstream RPC, it left-shifts the ancestry by 16 bits and ORs
//! in the 16-bit hash of the downstream RPC name, so the chain
//! `A → B → C` is encoded as `hash(A) << 32 | hash(B) << 16 | hash(C)`.
//! Four frames fit in 64 bits, the depth limit the paper states.
//!
//! Hashes are decoded back to names through a process-wide registry,
//! populated as RPC names are registered.

use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Bits per callpath frame.
pub const FRAME_BITS: u32 = 16;
/// Maximum number of frames a callpath can hold.
pub const MAX_DEPTH: usize = 4;

/// Fold a 64-bit name hash into a 16-bit frame value. Zero is reserved for
/// "no frame", so a hash that folds to zero is nudged to one (a benign,
/// deterministic collision — the paper's scheme has the same property of
/// tolerating rare hash collisions).
fn fold16(h: u64) -> u16 {
    let folded = (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) as u16;
    if folded == 0 {
        1
    } else {
        folded
    }
}

/// Hash an RPC name into a 16-bit frame value (see `fold16` for the
/// zero-reservation rule).
pub fn hash16(name: &str) -> u16 {
    fold16(symbi_mercury::hash_rpc_name(name))
}

/// The process-wide frame → name registry.
///
/// This is on the translate path of every event (`Callpath::root`/`push`
/// register the name; reports resolve it back), so lookups are
/// **read-mostly**: registration takes the write lock only the first time
/// a name is seen, and both directions are fronted by thread-local
/// interned caches — registry entries are immutable once inserted
/// (`entry().or_insert`), so the caches never need invalidation.
fn registry() -> &'static RwLock<HashMap<u16, Arc<str>>> {
    static REG: OnceLock<RwLock<HashMap<u16, Arc<str>>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(HashMap::new()))
}

thread_local! {
    /// name-hash → frame: hit means this name was already registered, so
    /// `register_name` can skip the registry locks entirely.
    static REGISTERED: RefCell<HashMap<u64, u16>> = RefCell::new(HashMap::new());
    /// frame → interned name for lock-free repeat resolution.
    static RESOLVED: RefCell<HashMap<u16, Arc<str>>> = RefCell::new(HashMap::new());
}

/// Register an RPC name so profile reports can decode its frame hash.
/// Returns the frame value. Idempotent; lock-free on repeat names.
pub fn register_name(name: &str) -> u16 {
    let h = symbi_mercury::hash_rpc_name(name);
    if let Some(frame) = REGISTERED.with(|c| c.borrow().get(&h).copied()) {
        return frame;
    }
    let frame = fold16(h);
    // Read-mostly slow path: a read lock suffices unless the frame is new.
    let present = registry().read().contains_key(&frame);
    if !present {
        registry()
            .write()
            .entry(frame)
            .or_insert_with(|| Arc::from(name));
    }
    REGISTERED.with(|c| c.borrow_mut().insert(h, frame));
    frame
}

/// Resolve a frame hash back to its registered name. Lock-free on repeat
/// frames (entries are immutable once registered, so the thread-local
/// cache is always valid).
pub fn resolve_name(frame: u16) -> Option<String> {
    if let Some(name) = RESOLVED.with(|c| c.borrow().get(&frame).cloned()) {
        return Some(name.to_string());
    }
    let name = registry().read().get(&frame).cloned()?;
    RESOLVED.with(|c| c.borrow_mut().insert(frame, name.clone()));
    Some(name.to_string())
}

/// A 64-bit callpath ancestry value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Callpath(pub u64);

impl Callpath {
    /// The empty callpath (no frames).
    pub const EMPTY: Callpath = Callpath(0);

    /// Start a new callpath at a root RPC. Registers the name.
    pub fn root(name: &str) -> Self {
        Callpath(register_name(name) as u64)
    }

    /// Extend the callpath with a downstream RPC: 16-bit left shift, then
    /// OR the new frame into the lowest 16 bits (the paper's §IV-A1
    /// procedure). Registers the name. If the path is already at
    /// [`MAX_DEPTH`], the oldest frame falls off the top — matching the
    /// natural behaviour of the shift.
    pub fn push(self, name: &str) -> Self {
        Callpath((self.0 << FRAME_BITS) | register_name(name) as u64)
    }

    /// Number of frames (0–4).
    pub fn depth(self) -> usize {
        if self.0 == 0 {
            return 0;
        }
        // Frames above the leaf may legitimately be zero only if the path
        // was never that deep, because hash16 never produces zero.
        let mut d = 0;
        let mut v = self.0;
        while v != 0 {
            d += 1;
            v >>= FRAME_BITS;
        }
        d
    }

    /// The leaf (most recent) frame.
    pub fn leaf(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// Frames from root to leaf.
    pub fn frames(self) -> Vec<u16> {
        let d = self.depth();
        (0..d)
            .rev()
            .map(|i| ((self.0 >> (i as u32 * FRAME_BITS)) & 0xFFFF) as u16)
            .collect()
    }

    /// The parent callpath (all frames except the leaf).
    pub fn parent(self) -> Callpath {
        Callpath(self.0 >> FRAME_BITS)
    }

    /// Whether this path is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Render as `a→b→c`, using registered names where known and `#hhhh`
    /// for unregistered frames.
    pub fn display(self) -> String {
        if self.is_empty() {
            return "<root>".to_string();
        }
        self.frames()
            .iter()
            .map(|f| resolve_name(*f).unwrap_or_else(|| format!("#{f:04x}")))
            .collect::<Vec<_>>()
            .join(" \u{2192} ")
    }
}

impl std::fmt::Display for Callpath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_depth_one() {
        let cp = Callpath::root("mobject_write_op");
        assert_eq!(cp.depth(), 1);
        assert_eq!(cp.leaf(), hash16("mobject_write_op"));
    }

    #[test]
    fn push_encodes_shift_or() {
        let a = Callpath::root("a_rpc");
        let ab = a.push("b_rpc");
        assert_eq!(
            ab.0,
            ((hash16("a_rpc") as u64) << 16) | hash16("b_rpc") as u64
        );
        assert_eq!(ab.depth(), 2);
        assert_eq!(ab.parent(), a);
    }

    #[test]
    fn frames_order_is_root_to_leaf() {
        let cp = Callpath::root("r1").push("r2").push("r3");
        assert_eq!(cp.frames(), vec![hash16("r1"), hash16("r2"), hash16("r3")]);
    }

    #[test]
    fn depth_caps_at_four_by_shifting_out_root() {
        let cp = Callpath::root("f1")
            .push("f2")
            .push("f3")
            .push("f4")
            .push("f5");
        assert!(cp.depth() <= MAX_DEPTH);
        // The leaf is always the most recent call.
        assert_eq!(cp.leaf(), hash16("f5"));
        // The root frame f1 has been shifted out.
        assert_eq!(cp.frames()[0], hash16("f2"));
    }

    #[test]
    fn display_uses_registered_names() {
        let cp = Callpath::root("sdskv_put_packed").push("bake_persist_rpc");
        let s = cp.display();
        assert!(s.contains("sdskv_put_packed"));
        assert!(s.contains("bake_persist_rpc"));
        assert!(s.contains("\u{2192}"));
    }

    #[test]
    fn empty_path_properties() {
        let cp = Callpath::EMPTY;
        assert!(cp.is_empty());
        assert_eq!(cp.depth(), 0);
        assert_eq!(cp.frames(), Vec::<u16>::new());
        assert_eq!(cp.display(), "<root>");
    }

    #[test]
    fn hash16_never_zero() {
        // Exhaustively probing is impossible; spot-check a pile of names
        // including ones crafted to be unusual.
        for name in ["", "a", "zz", "\0", "sdskv_put_packed", "x.y.z"] {
            assert_ne!(hash16(name), 0, "hash16({name:?}) must not be 0");
        }
    }

    #[test]
    fn unregistered_frame_renders_hex() {
        let cp = Callpath(0x0007); // frame 7 unlikely to be registered
        let s = cp.display();
        assert!(s == "#0007" || !s.is_empty());
    }

    #[test]
    fn register_is_idempotent() {
        let a = register_name("same_rpc");
        let b = register_name("same_rpc");
        assert_eq!(a, b);
        assert_eq!(resolve_name(a).unwrap(), "same_rpc");
    }
}
