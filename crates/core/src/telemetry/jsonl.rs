//! Zero-dependency JSONL encoding of metric snapshots, plus the minimal
//! JSON parser the flight-recorder replay path needs.
//!
//! One snapshot is one line. Counters round-trip exactly (u64 is emitted
//! as an integer token and parsed back without a float detour); gauge and
//! histogram floats use Rust's shortest-roundtrip `Display`.

use super::{HistogramValue, MetricPoint, MetricSnapshot, MetricValue, SnapshotPoint};
use crate::analysis::online::ActionRecord;
use crate::callpath::{register_name, resolve_name};
use crate::entity::{entity_name, register_entity, EntityId};
use crate::trace::{EventSamples, TraceEvent, TraceEventKind};
use crate::zipkin::escape_into;
use crate::Callpath;
use std::collections::HashMap;
use std::fmt::Write as _;

// ----------------------------------------------------------------------
// Serializer
// ----------------------------------------------------------------------

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        // JSON has no NaN/Inf; clamp to null (never produced by our
        // sources, but the format must stay parseable regardless).
        out.push_str("null");
    }
}

fn push_point(out: &mut String, sp: &SnapshotPoint) {
    let p = &sp.point;
    out.push_str("{\"name\":");
    push_str(out, &p.name);
    if !p.labels.is_empty() {
        out.push_str(",\"labels\":{");
        for (i, (k, v)) in p.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(out, k);
            out.push(':');
            push_str(out, v);
        }
        out.push('}');
    }
    match &p.value {
        MetricValue::Gauge(v) => {
            out.push_str(",\"kind\":\"gauge\",\"value\":");
            push_f64(out, *v);
        }
        MetricValue::Counter(v) => {
            out.push_str(",\"kind\":\"counter\",\"value\":");
            out.push_str(&v.to_string());
            if let Some(d) = sp.delta {
                out.push_str(",\"delta\":");
                out.push_str(&d.to_string());
            }
        }
        MetricValue::Histogram(h) => {
            out.push_str(",\"kind\":\"histogram\",\"bounds\":[");
            for (i, b) in h.bounds.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_f64(out, *b);
            }
            out.push_str("],\"counts\":[");
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("],\"sum\":");
            push_f64(out, h.sum);
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
        }
    }
    out.push('}');
}

/// Encode one snapshot as a single JSON line (no trailing newline).
pub fn snapshot_to_json(snap: &MetricSnapshot) -> String {
    let mut out = String::with_capacity(256 + snap.points.len() * 96);
    out.push_str("{\"seq\":");
    out.push_str(&snap.seq.to_string());
    out.push_str(",\"wall_ns\":");
    out.push_str(&snap.wall_ns.to_string());
    if let Some(entity) = &snap.entity {
        out.push_str(",\"entity\":");
        push_str(&mut out, entity);
    }
    out.push_str(",\"points\":[");
    for (i, sp) in snap.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_point(&mut out, sp);
    }
    out.push_str("]}");
    out
}

// ----------------------------------------------------------------------
// Trace-event records
// ----------------------------------------------------------------------

fn push_samples(out: &mut String, s: &EventSamples) {
    out.push_str(",\"samples\":{");
    let mut first = true;
    s.for_each_set(|name, v| {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{name}\":{v}");
    });
    out.push('}');
}

fn samples_from_json(v: Option<&JsonValue>) -> Result<EventSamples, String> {
    let mut s = EventSamples::default();
    let Some(JsonValue::Obj(members)) = v else {
        return Ok(s);
    };
    for (k, x) in members {
        let v = x.as_u64().ok_or_else(|| format!("bad sample {k}"))?;
        // Unknown names are skipped: a newer writer may know more fields.
        s.set_field(k, v);
    }
    Ok(s)
}

/// Encode one trace event as a single JSON line tagged `"kind":"trace"`,
/// so trace records and metric snapshots can share one flight-recorder
/// ring. The entity is serialized by *name* (ids are process-local); the
/// callpath is serialized as its exact packed `u64` plus the frame names,
/// so the decoding process can resolve frames it never registered itself.
/// Only populated sample fields are emitted, and every numeric field is
/// an integer token — the record round-trips `u64`-exactly.
pub fn trace_event_to_json(e: &TraceEvent) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"kind\":\"trace\",\"point\":\"");
    out.push_str(e.kind.timeline_point());
    let _ = write!(
        out,
        "\",\"request_id\":{},\"order\":{},\"span\":{},\"parent_span\":{},\"hop\":{},\"lamport\":{},\"wall_ns\":{}",
        e.request_id, e.order, e.span, e.parent_span, e.hop, e.lamport, e.wall_ns
    );
    out.push_str(",\"entity\":");
    push_str(&mut out, &entity_name(e.entity));
    let _ = write!(out, ",\"callpath\":{}", e.callpath.0);
    out.push_str(",\"frames\":[");
    for (i, f) in e.callpath.frames().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match resolve_name(*f) {
            Some(name) => push_str(&mut out, &name),
            None => out.push_str("null"),
        }
    }
    out.push(']');
    push_samples(&mut out, &e.samples);
    out.push('}');
    out
}

/// Streaming decoder for `"kind":"trace"` JSON lines.
///
/// Entities travel by name, and [`register_entity`] mints a *fresh* id on
/// every call — so the decoder keeps its own name → id memo, giving every
/// event of one replay session a consistent entity mapping even across
/// multiple flight-recorder directories (one decoder per analysis run,
/// fed all of them). Frame names are re-registered on decode so
/// `Callpath::display` resolves them in the analyzing process.
#[derive(Debug, Default)]
pub struct TraceEventDecoder {
    entities: HashMap<String, EntityId>,
}

impl TraceEventDecoder {
    /// New decoder with an empty entity memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cheap pre-filter: whether a JSON line is a trace record rather
    /// than a metric snapshot. [`TraceEventDecoder::decode`] still
    /// validates fully.
    pub fn is_trace_line(line: &str) -> bool {
        line.contains("\"kind\":\"trace\"")
    }

    /// The session-consistent [`EntityId`] for an entity name, registered
    /// on first sight — the memo the line decoder uses, exposed for
    /// codecs (like the binary obs push form) that carry names out of
    /// band.
    pub fn entity_id(&mut self, name: &str) -> EntityId {
        *self
            .entities
            .entry(name.to_string())
            .or_insert_with(|| register_entity(name))
    }

    /// Decode one trace record line.
    pub fn decode(&mut self, line: &str) -> Result<TraceEvent, String> {
        let v = parse_json(line)?;
        if v.get("kind").and_then(JsonValue::as_str) != Some("trace") {
            return Err("not a trace record".into());
        }
        let point = v
            .get("point")
            .and_then(JsonValue::as_str)
            .ok_or("trace missing point")?;
        let kind = match point {
            "t1" => TraceEventKind::OriginForward,
            "t5" => TraceEventKind::TargetUltStart,
            "t8" => TraceEventKind::TargetRespond,
            "t14" => TraceEventKind::OriginComplete,
            other => return Err(format!("unknown timeline point '{other}'")),
        };
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("trace missing {key}"))
        };
        let name = v
            .get("entity")
            .and_then(JsonValue::as_str)
            .ok_or("trace missing entity")?;
        let entity = self.entity_id(name);
        if let Some(frames) = v.get("frames").and_then(JsonValue::as_arr) {
            for f in frames {
                if let Some(n) = f.as_str() {
                    register_name(n);
                }
            }
        }
        Ok(TraceEvent {
            request_id: u("request_id")?,
            order: u("order")? as u32,
            span: u("span")?,
            parent_span: u("parent_span")?,
            hop: u("hop")? as u32,
            lamport: u("lamport")?,
            wall_ns: u("wall_ns")?,
            kind,
            entity,
            callpath: Callpath(u("callpath")?),
            samples: samples_from_json(v.get("samples"))?,
        })
    }
}

// ----------------------------------------------------------------------
// Control-action records
// ----------------------------------------------------------------------

/// Encode one control action as a single JSON line tagged
/// `"kind":"action"`, sharing the flight ring with snapshots and trace
/// records. Member order is fixed and every numeric field is a `u64`
/// integer token, so encode→decode→encode is byte-identical (the same
/// contract the trace codec keeps).
pub fn action_to_json(a: &ActionRecord) -> String {
    let mut out = String::with_capacity(192);
    let _ = write!(
        out,
        "{{\"kind\":\"action\",\"seq\":{},\"wall_ns\":{}",
        a.seq, a.wall_ns
    );
    out.push_str(",\"entity\":");
    push_str(&mut out, &a.entity);
    out.push_str(",\"detector\":");
    push_str(&mut out, &a.detector);
    out.push_str(",\"subject\":");
    push_str(&mut out, &a.subject);
    out.push_str(",\"action\":");
    push_str(&mut out, &a.action);
    let _ = write!(
        out,
        ",\"from\":{},\"to\":{},\"value\":{},\"threshold\":{}}}",
        a.from, a.to, a.value, a.threshold
    );
    out
}

/// Cheap pre-filter: whether a JSON line is a control-action record.
/// [`action_from_json`] still validates fully.
pub fn is_action_line(line: &str) -> bool {
    line.contains("\"kind\":\"action\"")
}

/// Decode one `"kind":"action"` record line.
pub fn action_from_json(line: &str) -> Result<ActionRecord, String> {
    let v = parse_json(line)?;
    if v.get("kind").and_then(JsonValue::as_str) != Some("action") {
        return Err("not an action record".into());
    }
    let u = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("action missing {key}"))
    };
    let s = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("action missing {key}"))
    };
    Ok(ActionRecord {
        seq: u("seq")?,
        wall_ns: u("wall_ns")?,
        entity: s("entity")?,
        detector: s("detector")?,
        subject: s("subject")?,
        action: s("action")?,
        from: u("from")?,
        to: u("to")?,
        value: u("value")?,
        threshold: u("threshold")?,
    })
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

/// A parsed JSON value. Integer tokens that fit a `u64` are kept exact in
/// [`JsonValue::Int`]; everything else numeric becomes [`JsonValue::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer token within `u64` range.
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, preserving member order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an exact integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if !float {
            if let Ok(v) = token.parse::<u64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        token
            .parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err(&format!("bad number '{token}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp).ok_or_else(|| self.err("bad \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

// ----------------------------------------------------------------------
// Snapshot decoding
// ----------------------------------------------------------------------

fn point_from_json(v: &JsonValue) -> Result<SnapshotPoint, String> {
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("point missing name")?
        .to_string();
    let mut labels = Vec::new();
    if let Some(JsonValue::Obj(members)) = v.get("labels") {
        for (k, lv) in members {
            labels.push((
                k.clone(),
                lv.as_str()
                    .ok_or("label value must be a string")?
                    .to_string(),
            ));
        }
    }
    let kind = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("point missing kind")?;
    let value = match kind {
        "gauge" => MetricValue::Gauge(
            v.get("value")
                .and_then(JsonValue::as_f64)
                .ok_or("gauge missing value")?,
        ),
        "counter" => MetricValue::Counter(
            v.get("value")
                .and_then(JsonValue::as_u64)
                .ok_or("counter missing integer value")?,
        ),
        "histogram" => {
            let bounds = v
                .get("bounds")
                .and_then(JsonValue::as_arr)
                .ok_or("histogram missing bounds")?
                .iter()
                .map(|b| b.as_f64().ok_or("bad bound"))
                .collect::<Result<Vec<_>, _>>()?;
            let counts = v
                .get("counts")
                .and_then(JsonValue::as_arr)
                .ok_or("histogram missing counts")?
                .iter()
                .map(|c| c.as_u64().ok_or("bad count"))
                .collect::<Result<Vec<_>, _>>()?;
            MetricValue::Histogram(HistogramValue {
                bounds,
                counts,
                sum: v
                    .get("sum")
                    .and_then(JsonValue::as_f64)
                    .ok_or("histogram missing sum")?,
                count: v
                    .get("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or("histogram missing count")?,
            })
        }
        other => return Err(format!("unknown point kind '{other}'")),
    };
    let delta = v.get("delta").and_then(JsonValue::as_u64);
    Ok(SnapshotPoint {
        point: MetricPoint {
            name,
            labels,
            value,
        },
        delta,
    })
}

/// Decode one snapshot from its JSON line.
pub fn snapshot_from_json(line: &str) -> Result<MetricSnapshot, String> {
    let v = parse_json(line)?;
    let seq = v
        .get("seq")
        .and_then(JsonValue::as_u64)
        .ok_or("snapshot missing seq")?;
    let wall_ns = v
        .get("wall_ns")
        .and_then(JsonValue::as_u64)
        .ok_or("snapshot missing wall_ns")?;
    let entity = match v.get("entity") {
        Some(e) => Some(e.as_str().ok_or("entity must be a string")?.to_string()),
        None => None,
    };
    let points = v
        .get("points")
        .and_then(JsonValue::as_arr)
        .ok_or("snapshot missing points")?
        .iter()
        .map(point_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MetricSnapshot {
        seq,
        wall_ns,
        entity,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricSnapshot {
        let mut hist = HistogramValue::new(&[1.5, 10.0]);
        hist.observe(0.5);
        hist.observe(99.0);
        MetricSnapshot {
            seq: 42,
            wall_ns: 123_456_789_012,
            entity: Some("svc-β \"quoted\"\n".to_string()),
            points: vec![
                SnapshotPoint {
                    point: MetricPoint::gauge("symbi_g", 2.75),
                    delta: None,
                },
                SnapshotPoint {
                    point: MetricPoint::counter("symbi_c_total", u64::MAX)
                        .with_label("pool", "svc-handlers")
                        .with_label("lane", "3"),
                    delta: Some(17),
                },
                SnapshotPoint {
                    point: MetricPoint::histogram("symbi_h", hist),
                    delta: None,
                },
            ],
        }
    }

    #[test]
    fn snapshot_roundtrips_through_jsonl() {
        let snap = sample_snapshot();
        let line = snapshot_to_json(&snap);
        assert!(!line.contains('\n'), "one snapshot must be one line");
        let back = snapshot_from_json(&line).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn u64_max_counter_is_exact() {
        let snap = sample_snapshot();
        let back = snapshot_from_json(&snapshot_to_json(&snap)).unwrap();
        assert_eq!(
            back.points[1].point.value,
            MetricValue::Counter(u64::MAX),
            "counters must not round-trip through f64"
        );
    }

    #[test]
    fn parser_handles_nested_structures() {
        let v = parse_json(r#"{"a":[1,2.5,{"b":"x"},null,true,false],"c":{}}"#).unwrap();
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0], JsonValue::Int(1));
        assert_eq!(arr[1], JsonValue::Float(2.5));
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(arr[3], JsonValue::Null);
        assert_eq!(v.get("c"), Some(&JsonValue::Obj(Vec::new())));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a":}"#).is_err());
        assert!(parse_json("[1,2] tail").is_err());
        assert!(parse_json(r#""unterminated"#).is_err());
    }

    #[test]
    fn parser_decodes_unicode_escapes() {
        // \u escapes, including a surrogate pair, decode to the real chars.
        let v = parse_json(r#""\u00e9\u0001\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("é\u{1}😀"));
        // Raw multi-byte UTF-8 passes through untouched.
        assert_eq!(parse_json("\"é😀\"").unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn negative_numbers_parse_as_floats() {
        let v = parse_json("[-3, -2.5]").unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr[0], JsonValue::Float(-3.0));
        assert_eq!(arr[1], JsonValue::Float(-2.5));
    }

    fn full_trace_event() -> TraceEvent {
        let samples = EventSamples {
            blocked_ults: Some(1),
            runnable_ults: Some(2),
            memory_kb: Some(3),
            cpu_time_ms: Some(4),
            num_ofi_events_read: Some(5),
            completion_queue_size: Some(6),
            input_serialization_ns: Some(7),
            input_deserialization_ns: Some(8),
            output_serialization_ns: Some(9),
            internal_rdma_ns: Some(10),
            origin_cct_ns: Some(11),
            origin_execution_ns: Some(12),
            target_handler_ns: Some(13),
            target_execution_ns: Some(14),
            target_cct_ns: Some(15),
            retry_attempt: Some(2),
            timed_out: Some(1),
        };
        TraceEvent {
            request_id: u64::MAX,
            order: 7,
            span: u64::MAX - 1,
            parent_span: 0x1234_5678_9ABC_DEF0,
            hop: 3,
            lamport: u64::MAX - 2,
            wall_ns: u64::MAX - 3,
            kind: TraceEventKind::TargetRespond,
            entity: register_entity("jsonl-svc \"q\""),
            callpath: Callpath::root("jl_top").push("jl_sub"),
            samples,
        }
    }

    #[test]
    fn trace_event_roundtrips_exactly() {
        let e = full_trace_event();
        let line = trace_event_to_json(&e);
        assert!(!line.contains('\n'), "one event must be one line");
        let mut dec = TraceEventDecoder::new();
        let back = dec.decode(&line).expect("decode");
        // Entity ids are process-local: the decoder re-registers by name,
        // so everything except the numeric id must round-trip exactly.
        assert_eq!(entity_name(back.entity), entity_name(e.entity));
        let expect = TraceEvent {
            entity: back.entity,
            ..e
        };
        assert_eq!(back, expect, "u64-exact round trip");
    }

    #[test]
    fn decoder_memo_keeps_entity_ids_consistent() {
        let e = full_trace_event();
        let line = trace_event_to_json(&e);
        let mut dec = TraceEventDecoder::new();
        let a = dec.decode(&line).unwrap();
        let b = dec.decode(&line).unwrap();
        assert_eq!(
            a.entity, b.entity,
            "same name must map to the same id within one decoder"
        );
        // A fresh decoder mints a different id (register_entity is not
        // idempotent) but the same name.
        let c = TraceEventDecoder::new().decode(&line).unwrap();
        assert_ne!(a.entity, c.entity);
        assert_eq!(entity_name(a.entity), entity_name(c.entity));
    }

    #[test]
    fn decoded_callpath_frames_resolve_by_name() {
        let e = full_trace_event();
        let line = trace_event_to_json(&e);
        let back = TraceEventDecoder::new().decode(&line).unwrap();
        assert_eq!(back.callpath, e.callpath);
        assert_eq!(back.callpath.display(), "jl_top \u{2192} jl_sub");
    }

    #[test]
    fn unset_samples_are_omitted_and_decode_to_none() {
        let e = TraceEvent {
            samples: EventSamples {
                target_handler_ns: Some(42),
                ..Default::default()
            },
            ..full_trace_event()
        };
        let line = trace_event_to_json(&e);
        assert!(line.contains("\"samples\":{\"target_handler_ns\":42}"));
        let back = TraceEventDecoder::new().decode(&line).unwrap();
        assert_eq!(back.samples, e.samples);
    }

    #[test]
    fn decoder_rejects_non_trace_lines() {
        let mut dec = TraceEventDecoder::new();
        assert!(dec
            .decode("{\"seq\":1,\"wall_ns\":2,\"points\":[]}")
            .is_err());
        assert!(dec.decode("{\"kind\":\"trace\"}").is_err());
        assert!(dec.decode("not json").is_err());
        let snap_line = snapshot_to_json(&sample_snapshot());
        assert!(!TraceEventDecoder::is_trace_line(&snap_line));
        assert!(TraceEventDecoder::is_trace_line(&trace_event_to_json(
            &full_trace_event()
        )));
    }

    fn full_action_record() -> ActionRecord {
        ActionRecord {
            seq: 7,
            wall_ns: u64::MAX,
            entity: "svc-\"quoted\"\\name".to_string(),
            detector: "pool_backlog".to_string(),
            subject: "primary".to_string(),
            action: "resize_lanes".to_string(),
            from: 2,
            to: 8,
            value: 37,
            threshold: 16,
        }
    }

    #[test]
    fn action_record_round_trips_byte_identically() {
        let a = full_action_record();
        let line = action_to_json(&a);
        assert!(is_action_line(&line));
        let back = action_from_json(&line).expect("decodes");
        assert_eq!(back, a);
        // encode → decode → encode must be byte-identical.
        assert_eq!(action_to_json(&back), line);
    }

    #[test]
    fn action_lines_are_distinct_from_other_record_kinds() {
        let line = action_to_json(&full_action_record());
        assert!(!TraceEventDecoder::is_trace_line(&line));
        assert!(snapshot_from_json(&line).is_err(), "not a snapshot");
        assert!(!is_action_line(&snapshot_to_json(&sample_snapshot())));
        assert!(!is_action_line(&trace_event_to_json(&full_trace_event())));
    }

    #[test]
    fn action_decode_rejects_malformed_lines() {
        assert!(action_from_json("not json").is_err());
        assert!(action_from_json("{\"kind\":\"trace\"}").is_err());
        assert!(action_from_json("{\"kind\":\"action\",\"seq\":1}").is_err());
    }
}
