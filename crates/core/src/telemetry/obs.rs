//! The observability-push wire protocol shared by monitor ULTs (the
//! pushers) and the cluster collector (the sink).
//!
//! One push is one obs datagram:
//!
//! ```text
//! {"obs":"push","entity":"kv-server",...}     <- header (always line 1)
//! {"seq":12,"wall_ns":...,"points":[...]}     <- metric snapshot (optional)
//! #evb1                                       <- binary event section marker
//! <count><string table><records...>           <- 0..=PUSH_EVENT_CAP events
//! ```
//!
//! The header and snapshot lines reuse the flight-recorder JSONL codec
//! ([`super::jsonl`]) — low-volume, debuggable, and identical to what
//! the local ring records. The trace-event batch is the *hot* part of
//! the payload (up to [`PUSH_EVENT_CAP`] events per monitor period on
//! every process), so it travels in a compact little-endian binary form
//! instead: names (entities, callpath frames) are interned once per
//! push in a string table, each record is fixed-width fields plus a
//! presence-bitmask-packed [`EventSamples`]. Encoding one event this
//! way costs ~10× less CPU than the JSONL line it replaces, and the
//! collector's decode side saves more — both sides matter, because the
//! data plane hosts the pusher and (on the in-process fabric) sinks run
//! inline on the sender. Advisories travel the other way (collector →
//! process) as a one-line JSON document.
//!
//! Pushes are fire-and-forget datagrams over [`Transport::send_obs`]
//! (silent loss tolerated); nothing here retries or acknowledges.
//!
//! [`Transport::send_obs`]: ../../../symbi_fabric/trait.Transport.html#method.send_obs

use super::jsonl::{
    parse_json, snapshot_from_json, snapshot_to_json, JsonValue, TraceEventDecoder,
};
use super::MetricSnapshot;
use crate::callpath::{register_name, resolve_name};
use crate::entity::entity_name;
use crate::trace::{EventSamples, TraceEvent, TraceEventKind};
use crate::zipkin::escape_into;
use crate::Callpath;
use std::collections::HashMap;

/// Obs datagram kind: a telemetry push (process → collector).
pub const OBS_KIND_PUSH: u8 = 1;
/// Obs datagram kind: a control advisory (collector → process).
pub const OBS_KIND_ADVISORY: u8 = 2;

/// Most trace events one push carries. A monitor sample that drained more
/// sends the newest `PUSH_EVENT_CAP` and counts the rest in
/// [`PushHeader::dropped`] — the push path must stay bounded per sample
/// no matter how hot the tracer ran.
pub const PUSH_EVENT_CAP: usize = 1024;

/// Line 1 of every push payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushHeader {
    /// The pushing process's entity name (its telemetry identity).
    pub entity: String,
    /// Push sequence number, monotonically increasing per pusher; the
    /// collector detects lost pushes from gaps.
    pub seq: u64,
    /// Wall-clock nanoseconds at push time.
    pub wall_ns: u64,
    /// Anomalies the pusher's local detector bank raised on this sample
    /// (a nonzero count tail-flags the spans in this batch).
    pub anomalies: u64,
    /// Trace events drained this sample but not included (over
    /// [`PUSH_EVENT_CAP`]).
    pub dropped: u64,
    /// Whether the pusher's admission gate is currently shedding.
    pub shedding: bool,
}

fn header_to_json(h: &PushHeader) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"obs\":\"push\",\"entity\":\"");
    escape_into(&mut out, &h.entity);
    out.push_str(&format!(
        "\",\"seq\":{},\"wall_ns\":{},\"anomalies\":{},\"dropped\":{},\"shedding\":{}}}",
        h.seq, h.wall_ns, h.anomalies, h.dropped, h.shedding
    ));
    out
}

fn header_from_json(line: &str) -> Result<PushHeader, String> {
    let v = parse_json(line)?;
    if v.get("obs").and_then(JsonValue::as_str) != Some("push") {
        return Err("not a push header".into());
    }
    let u = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("push header missing {key}"))
    };
    Ok(PushHeader {
        entity: v
            .get("entity")
            .and_then(JsonValue::as_str)
            .ok_or("push header missing entity")?
            .to_string(),
        seq: u("seq")?,
        wall_ns: u("wall_ns")?,
        anomalies: u("anomalies")?,
        dropped: u("dropped")?,
        shedding: matches!(v.get("shedding"), Some(JsonValue::Bool(true))),
    })
}

/// Marker line introducing the binary event section of a push payload.
const EVENT_SECTION_MARKER: &[u8] = b"#evb1";

/// Timeline-point byte for the binary record form.
fn kind_to_byte(k: TraceEventKind) -> u8 {
    match k {
        TraceEventKind::OriginForward => 1,
        TraceEventKind::TargetUltStart => 5,
        TraceEventKind::TargetRespond => 8,
        TraceEventKind::OriginComplete => 14,
    }
}

fn kind_from_byte(b: u8) -> Result<TraceEventKind, String> {
    Ok(match b {
        1 => TraceEventKind::OriginForward,
        5 => TraceEventKind::TargetUltStart,
        8 => TraceEventKind::TargetRespond,
        14 => TraceEventKind::OriginComplete,
        other => return Err(format!("unknown timeline-point byte {other}")),
    })
}

/// Per-push name interner backing the string table. Index `0xFFFF` is
/// reserved as "no name" (an unresolvable callpath frame).
#[derive(Default)]
struct StringTable {
    names: Vec<String>,
    index: HashMap<String, u16>,
}

const NO_NAME: u16 = u16::MAX;

impl StringTable {
    fn intern(&mut self, name: &str) -> u16 {
        if let Some(i) = self.index.get(name) {
            return *i;
        }
        let i = self.names.len();
        if i >= NO_NAME as usize {
            return NO_NAME;
        }
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i as u16);
        i as u16
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode one push payload. `events` must already be capped to
/// [`PUSH_EVENT_CAP`] (the overflow counted in `header.dropped`).
pub fn encode_push(
    header: &PushHeader,
    snapshot: Option<&MetricSnapshot>,
    events: &[TraceEvent],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(512 + events.len() * 80);
    out.extend_from_slice(header_to_json(header).as_bytes());
    if let Some(snap) = snapshot {
        out.push(b'\n');
        out.extend_from_slice(snapshot_to_json(snap).as_bytes());
    }
    if events.is_empty() {
        return out;
    }
    out.push(b'\n');
    out.extend_from_slice(EVENT_SECTION_MARKER);
    out.push(b'\n');

    // Records are laid down into a side buffer while the string table
    // grows, then both are emitted (table first, so decode is one pass).
    // Name resolution goes through per-push id caches: `entity_name` /
    // `resolve_name` hit the global registries and allocate, so they
    // must run once per distinct id, not once per event.
    let mut table = StringTable::default();
    let mut entity_cache: HashMap<crate::entity::EntityId, u16> = HashMap::new();
    let mut frame_cache: HashMap<u16, u16> = HashMap::new();
    let mut records = Vec::with_capacity(events.len() * 80);
    for e in events {
        put_u64(&mut records, e.request_id);
        put_u64(&mut records, e.span);
        put_u64(&mut records, e.parent_span);
        put_u64(&mut records, e.lamport);
        put_u64(&mut records, e.wall_ns);
        put_u64(&mut records, e.callpath.0);
        put_u32(&mut records, e.order);
        put_u32(&mut records, e.hop);
        records.push(kind_to_byte(e.kind));
        records.push(0); // reserved
        let entity_idx = *entity_cache
            .entry(e.entity)
            .or_insert_with(|| table.intern(&entity_name(e.entity)));
        put_u16(&mut records, entity_idx);
        let nframes_at = records.len();
        records.push(0);
        let mut nframes = 0u8;
        for f in e.callpath.frames() {
            let idx = *frame_cache
                .entry(f)
                .or_insert_with(|| match resolve_name(f) {
                    Some(name) => table.intern(&name),
                    None => NO_NAME,
                });
            put_u16(&mut records, idx);
            nframes += 1;
        }
        records[nframes_at] = nframes;
        let mask_at = records.len();
        put_u32(&mut records, 0);
        let mask = e.samples.pack(|v| put_u64(&mut records, v));
        records[mask_at..mask_at + 4].copy_from_slice(&mask.to_le_bytes());
    }

    put_u32(&mut out, events.len() as u32);
    put_u16(&mut out, table.names.len() as u16);
    for name in &table.names {
        let bytes = name.as_bytes();
        put_u16(&mut out, bytes.len().min(u16::MAX as usize) as u16);
        out.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
    }
    out.extend_from_slice(&records);
    out
}

/// Byte cursor over the binary event section.
struct Cursor<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .off
            .checked_add(n)
            .filter(|e| *e <= self.b.len())
            .ok_or("truncated event section")?;
        let s = &self.b[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_event_section(
    bytes: &[u8],
    dec: &mut TraceEventDecoder,
) -> Result<Vec<TraceEvent>, String> {
    let mut cur = Cursor { b: bytes, off: 0 };
    let count = cur.u32()? as usize;
    if count > PUSH_EVENT_CAP {
        return Err(format!("event count {count} exceeds push cap"));
    }
    let nstrings = cur.u16()? as usize;
    let mut names = Vec::with_capacity(nstrings);
    for _ in 0..nstrings {
        let len = cur.u16()? as usize;
        let s = std::str::from_utf8(cur.take(len)?).map_err(|_| "non-utf8 table entry")?;
        names.push(s);
    }
    let name_at = |idx: u16| -> Result<&str, String> {
        names
            .get(idx as usize)
            .copied()
            .ok_or_else(|| format!("string index {idx} out of table"))
    };

    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let request_id = cur.u64()?;
        let span = cur.u64()?;
        let parent_span = cur.u64()?;
        let lamport = cur.u64()?;
        let wall_ns = cur.u64()?;
        let callpath = Callpath(cur.u64()?);
        let order = cur.u32()?;
        let hop = cur.u32()?;
        let kind = kind_from_byte(cur.u8()?)?;
        let _reserved = cur.u8()?;
        let entity = dec.entity_id(name_at(cur.u16()?)?);
        let nframes = cur.u8()? as usize;
        for _ in 0..nframes {
            let idx = cur.u16()?;
            if idx != NO_NAME {
                // Side effect only: make `Callpath::display` resolve in
                // this process (the packed path travels in `callpath`).
                register_name(name_at(idx)?);
            }
        }
        let mask = cur.u32()?;
        let samples = EventSamples::unpack(mask, || cur.u64().ok())
            .ok_or("sample values truncated against their presence mask")?;
        events.push(TraceEvent {
            request_id,
            order,
            span,
            parent_span,
            hop,
            lamport,
            wall_ns,
            kind,
            entity,
            callpath,
            samples,
        });
    }
    Ok(events)
}

/// One decoded push.
#[derive(Debug)]
pub struct DecodedPush {
    /// The header line.
    pub header: PushHeader,
    /// The metric snapshot, if the push carried one.
    pub snapshot: Option<MetricSnapshot>,
    /// The trace-event batch (possibly empty).
    pub events: Vec<TraceEvent>,
}

/// Split the next `\n`-terminated line off `rest`, returning
/// `(line, after)`; the final unterminated chunk counts as a line.
fn next_line(rest: &[u8]) -> (&[u8], &[u8]) {
    match rest.iter().position(|b| *b == b'\n') {
        Some(i) => (&rest[..i], &rest[i + 1..]),
        None => (rest, &[]),
    }
}

/// Decode one push payload. The caller owns the [`TraceEventDecoder`] —
/// one per pushing process — so entity ids stay consistent across that
/// process's pushes (the decoder memoizes name → id).
pub fn decode_push(payload: &[u8], dec: &mut TraceEventDecoder) -> Result<DecodedPush, String> {
    let (first, mut rest) = next_line(payload);
    if first.is_empty() {
        return Err("empty push payload".into());
    }
    let header = header_from_json(std::str::from_utf8(first).map_err(|_| "non-utf8 push header")?)?;
    let mut snapshot = None;
    let mut events = Vec::new();
    while !rest.is_empty() {
        let (line, after) = next_line(rest);
        if line == EVENT_SECTION_MARKER {
            events = decode_event_section(after, dec)?;
            break;
        }
        rest = after;
        if line.is_empty() {
            continue;
        }
        let line = std::str::from_utf8(line).map_err(|_| "non-utf8 push line")?;
        if snapshot.is_none() {
            snapshot = Some(snapshot_from_json(line)?);
        } else {
            return Err("push payload has more than one snapshot line".into());
        }
    }
    Ok(DecodedPush {
        header,
        snapshot,
        events,
    })
}

/// Encode a collector → process advisory. `shed = true` asks the process
/// to close its admission gate (the collector saw cluster-wide backlog
/// the process itself cannot see); `false` releases it.
pub fn advisory_to_json(shed: bool) -> String {
    format!("{{\"obs\":\"advisory\",\"shed\":{shed}}}")
}

/// Decode an advisory payload to its shed flag.
pub fn advisory_from_json(payload: &str) -> Result<bool, String> {
    let v = parse_json(payload.trim())?;
    if v.get("obs").and_then(JsonValue::as_str) != Some("advisory") {
        return Err("not an advisory".into());
    }
    match v.get("shed") {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err("advisory missing shed flag".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::register_entity;
    use crate::telemetry::{MetricPoint, SnapshotPoint};
    use crate::trace::{EventSamples, TraceEventKind};
    use crate::Callpath;

    fn header() -> PushHeader {
        PushHeader {
            entity: "kv \"quoted\"".to_string(),
            seq: 42,
            wall_ns: 123_456,
            anomalies: 2,
            dropped: 7,
            shedding: true,
        }
    }

    fn event(span: u64) -> TraceEvent {
        TraceEvent {
            request_id: span,
            order: 0,
            span,
            parent_span: 0,
            hop: 1,
            lamport: 3,
            wall_ns: 9_000,
            kind: TraceEventKind::OriginForward,
            entity: register_entity("obs-push-test"),
            callpath: Callpath::root("obs_rpc"),
            samples: EventSamples {
                retry_attempt: Some(1),
                ..Default::default()
            },
        }
    }

    fn snapshot() -> MetricSnapshot {
        MetricSnapshot {
            seq: 5,
            wall_ns: 100,
            entity: Some("kv".to_string()),
            points: vec![SnapshotPoint {
                point: MetricPoint::counter("symbi_rpc_total", 9),
                delta: Some(3),
            }],
        }
    }

    #[test]
    fn push_roundtrips_header_snapshot_and_events() {
        let payload = encode_push(&header(), Some(&snapshot()), &[event(1), event(2)]);
        let mut dec = TraceEventDecoder::new();
        let back = decode_push(&payload, &mut dec).expect("decode");
        assert_eq!(back.header, header());
        let snap = back.snapshot.expect("snapshot present");
        assert_eq!(snap.seq, 5);
        assert_eq!(snap.points.len(), 1);
        assert_eq!(back.events.len(), 2);
        assert_eq!(back.events[0].span, 1);
        assert_eq!(back.events[1].samples.retry_attempt, Some(1));
    }

    #[test]
    fn push_without_snapshot_or_events_is_valid() {
        let h = PushHeader {
            shedding: false,
            ..header()
        };
        let payload = encode_push(&h, None, &[]);
        let back = decode_push(&payload, &mut TraceEventDecoder::new()).unwrap();
        assert_eq!(back.header, h);
        assert!(back.snapshot.is_none());
        assert!(back.events.is_empty());
    }

    #[test]
    fn decode_rejects_garbage_and_double_snapshots() {
        let mut dec = TraceEventDecoder::new();
        assert!(decode_push(b"", &mut dec).is_err());
        assert!(decode_push(b"not json", &mut dec).is_err());
        assert!(decode_push(b"{\"obs\":\"advisory\",\"shed\":true}", &mut dec).is_err());
        let two_snaps = format!(
            "{}\n{}\n{}",
            super::header_to_json(&header()),
            crate::telemetry::jsonl::snapshot_to_json(&snapshot()),
            crate::telemetry::jsonl::snapshot_to_json(&snapshot()),
        );
        assert!(decode_push(two_snaps.as_bytes(), &mut dec).is_err());
    }

    #[test]
    fn binary_event_section_roundtrips_every_field() {
        let mut e = event(7);
        e.order = 3;
        e.parent_span = 99;
        e.hop = 2;
        e.kind = TraceEventKind::TargetRespond;
        e.samples = EventSamples {
            blocked_ults: Some(4),
            target_handler_ns: Some(1_234_567),
            timed_out: Some(1),
            ..Default::default()
        };
        let payload = encode_push(&header(), None, &[e, event(8)]);
        let mut dec = TraceEventDecoder::new();
        let back = decode_push(&payload, &mut dec).expect("decode");
        assert_eq!(back.events.len(), 2);
        let d = &back.events[0];
        assert_eq!(
            (d.request_id, d.order, d.span, d.parent_span, d.hop),
            (e.request_id, e.order, e.span, e.parent_span, e.hop)
        );
        assert_eq!((d.lamport, d.wall_ns), (e.lamport, e.wall_ns));
        assert_eq!(d.kind, TraceEventKind::TargetRespond);
        assert_eq!(d.callpath, e.callpath);
        assert_eq!(d.samples, e.samples);
        assert_eq!(crate::entity::entity_name(d.entity), "obs-push-test");
        // One decoder session keeps the entity id stable across pushes.
        let again = decode_push(&payload, &mut dec).expect("second decode");
        assert_eq!(again.events[0].entity, d.entity);
    }

    #[test]
    fn truncated_event_sections_error_instead_of_panicking() {
        let payload = encode_push(&header(), None, &[event(1), event(2)]);
        let mut dec = TraceEventDecoder::new();
        for cut in 1..payload.len() {
            // Any truncation either decodes fewer bytes cleanly (cuts
            // inside the JSON lines) or errors — never panics.
            let _ = decode_push(&payload[..cut], &mut dec);
        }
    }

    #[test]
    fn advisory_roundtrips() {
        assert_eq!(advisory_from_json(&advisory_to_json(true)), Ok(true));
        assert_eq!(advisory_from_json(&advisory_to_json(false)), Ok(false));
        assert!(advisory_from_json("{}").is_err());
        assert!(advisory_from_json("{\"obs\":\"push\"}").is_err());
    }
}
