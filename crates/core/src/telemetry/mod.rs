//! The live telemetry plane: continuous sampling of every measurement
//! layer into unified metric snapshots.
//!
//! The paper's PVAR interface (§IV-B) and performance-data exchange
//! (§IV-C) are pull-on-demand APIs consumed by offline analysis. This
//! module adds the *online* counterpart — the continuous monitoring that
//! production operation of a composable data service demands:
//!
//! * named **sources** register closures contributing gauge / counter /
//!   histogram [`MetricPoint`]s ([`TelemetryRegistry::register_source`]);
//! * a **snapshot engine** ([`TelemetryRegistry::sample`]) collects all
//!   sources, computes per-interval deltas for counters against the
//!   previous snapshot, and retains a bounded ring of recent
//!   [`MetricSnapshot`]s;
//! * two zero-dependency exporters: a Prometheus text-exposition endpoint
//!   ([`prometheus`]) and an on-disk JSONL flight recorder ([`recorder`]).
//!
//! The Margo layer (`symbi-margo`) owns the sampling cadence: it registers
//! sources for the profiler, tracer, pools, fabric, and Mercury PVAR
//! sessions of each instance and drives `sample()` from a background
//! monitoring ULT.

pub mod jsonl;
pub mod obs;
pub mod prometheus;
pub mod recorder;

use crate::profile::{Profiler, Side};
use crate::sampling::{Stopwatch, SysStats};
use crate::trace::{now_ns, Tracer};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use symbi_mercury::{HgClass, PvarBind, PvarClass, PvarSession, PVAR_TABLE};
use symbi_tasking::PoolStats;

/// A cumulative histogram with explicit upper bounds.
///
/// `counts[i]` is the number of observations `<= bounds[i]`; the final
/// element of `counts` is the implicit `+Inf` bucket. Counts are
/// *cumulative* (each bucket includes all smaller ones), matching the
/// Prometheus exposition semantics so rendering is a straight copy.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramValue {
    /// Ascending bucket upper bounds (`+Inf` is implicit).
    pub bounds: Vec<f64>,
    /// Cumulative observation counts, `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramValue {
    /// New empty histogram over the given ascending bucket bounds.
    pub fn new(bounds: &[f64]) -> Self {
        HistogramValue {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        for (i, b) in self.bounds.iter().enumerate() {
            if v <= *b {
                self.counts[i] += 1;
            }
        }
        *self.counts.last_mut().expect("+Inf bucket") += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Fold another histogram into this one bucket-by-bucket. This is
    /// what makes native histogram exposition federable: the cluster
    /// collector sums each process's `_bucket{le=...}` series into one
    /// deployment-wide distribution, which precomputed quantile gauges
    /// cannot do. Returns `false` (leaving `self` untouched) when the
    /// bucket layouts differ — merging mismatched bounds would silently
    /// corrupt the distribution.
    pub fn merge(&mut self, other: &HistogramValue) -> bool {
        if self.bounds != other.bounds || self.counts.len() != other.counts.len() {
            return false;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
        true
    }

    /// Estimated `q`-quantile (`0.0 < q <= 1.0`) from the cumulative
    /// bucket counts, or `None` when empty. Returns the upper bound of
    /// the bucket containing the target rank (the `+Inf` bucket reports
    /// the last finite bound), mirroring
    /// [`crate::analysis::online::StreamingHistogram::quantile`] so
    /// cluster-level quantiles computed from merged exposition data rank
    /// the same way per-process ones do.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        for (i, c) in self.counts.iter().enumerate() {
            if *c >= target {
                return Some(match self.bounds.get(i) {
                    Some(b) => *b,
                    None => self.bounds.last().copied().unwrap_or(f64::INFINITY),
                });
            }
        }
        self.bounds.last().copied()
    }
}

/// The value of one metric point.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// An instantaneous level (may go up or down).
    Gauge(f64),
    /// A monotonically non-decreasing cumulative count.
    Counter(u64),
    /// A bucketed distribution.
    Histogram(HistogramValue),
}

/// One named, labelled sample contributed by a source.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPoint {
    /// Metric family name (`symbi_*` by convention).
    pub name: String,
    /// Label key/value pairs distinguishing series within the family.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: MetricValue,
}

impl MetricPoint {
    /// A gauge point with no labels.
    pub fn gauge(name: impl Into<String>, value: f64) -> Self {
        MetricPoint {
            name: name.into(),
            labels: Vec::new(),
            value: MetricValue::Gauge(value),
        }
    }

    /// A counter point with no labels.
    pub fn counter(name: impl Into<String>, value: u64) -> Self {
        MetricPoint {
            name: name.into(),
            labels: Vec::new(),
            value: MetricValue::Counter(value),
        }
    }

    /// A histogram point with no labels.
    pub fn histogram(name: impl Into<String>, value: HistogramValue) -> Self {
        MetricPoint {
            name: name.into(),
            labels: Vec::new(),
            value: MetricValue::Histogram(value),
        }
    }

    /// Attach a label.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }
}

/// A [`MetricPoint`] as it appears in a snapshot, with the per-interval
/// delta the snapshot engine computed for counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotPoint {
    /// The sampled point.
    pub point: MetricPoint,
    /// For counters: the increase since the previous snapshot of the same
    /// `(name, labels)` series, saturating at zero if the counter reset.
    /// `None` for the first observation of a series and for non-counters.
    pub delta: Option<u64>,
}

/// One complete sampling pass over all registered sources.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Monotonic snapshot sequence number (1-based).
    pub seq: u64,
    /// Wall time of the sample in nanoseconds since the process trace
    /// epoch (see [`crate::now_ns`]).
    pub wall_ns: u64,
    /// Entity name of the instance that produced the snapshot, if set.
    pub entity: Option<String>,
    /// All points contributed by all sources, in registration order.
    pub points: Vec<SnapshotPoint>,
}

impl MetricSnapshot {
    /// Find a point by family name and label set.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SnapshotPoint> {
        self.points.iter().find(|sp| {
            sp.point.name == name
                && sp.point.labels.len() == labels.len()
                && labels
                    .iter()
                    .all(|(k, v)| sp.point.labels.iter().any(|(pk, pv)| pk == k && pv == v))
        })
    }
}

type SourceFn = Box<dyn Fn(&mut Vec<MetricPoint>) + Send + Sync>;

struct Source {
    name: String,
    collect: SourceFn,
}

/// Bucket bounds (ns) for the sampler's self-timing histogram.
const SAMPLE_DURATION_BOUNDS_NS: [f64; 6] = [
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
    100_000_000.0,
    1_000_000_000.0,
];

/// Default number of retained snapshots.
pub const DEFAULT_RING_CAPACITY: usize = 128;

/// The unified metric registry and snapshot engine.
///
/// Thread-safe: sources may be registered while sampling is in progress,
/// and multiple samplers (e.g. the monitoring ULT and a Prometheus scrape)
/// may race — each produces its own consistent snapshot.
pub struct TelemetryRegistry {
    entity: Mutex<Option<String>>,
    sources: RwLock<Vec<Source>>,
    ring: Mutex<VecDeque<Arc<MetricSnapshot>>>,
    capacity: usize,
    seq: AtomicU64,
    sample_duration: Mutex<HistogramValue>,
}

impl std::fmt::Debug for TelemetryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TelemetryRegistry(sources={}, snapshots={}/{})",
            self.sources.read().len(),
            self.ring.lock().len(),
            self.capacity
        )
    }
}

impl Default for TelemetryRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryRegistry {
    /// New registry retaining [`DEFAULT_RING_CAPACITY`] snapshots.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// New registry retaining at most `capacity` recent snapshots.
    pub fn with_capacity(capacity: usize) -> Self {
        TelemetryRegistry {
            entity: Mutex::new(None),
            sources: RwLock::new(Vec::new()),
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(2),
            seq: AtomicU64::new(0),
            sample_duration: Mutex::new(HistogramValue::new(&SAMPLE_DURATION_BOUNDS_NS)),
        }
    }

    /// Tag snapshots with the producing instance's entity name.
    pub fn set_entity(&self, name: impl Into<String>) {
        *self.entity.lock() = Some(name.into());
    }

    /// The entity tag, if set.
    pub fn entity(&self) -> Option<String> {
        self.entity.lock().clone()
    }

    /// Register a named source. The closure is invoked on every sampling
    /// pass and appends its points to the supplied buffer.
    pub fn register_source(
        &self,
        name: impl Into<String>,
        collect: impl Fn(&mut Vec<MetricPoint>) + Send + Sync + 'static,
    ) {
        self.sources.write().push(Source {
            name: name.into(),
            collect: Box::new(collect),
        });
    }

    /// Names of all registered sources, in registration order.
    pub fn source_names(&self) -> Vec<String> {
        self.sources.read().iter().map(|s| s.name.clone()).collect()
    }

    /// Maximum number of retained snapshots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Run one sampling pass: collect every source, compute counter deltas
    /// against the previous snapshot, and push the result into the ring
    /// (evicting the oldest snapshot when full).
    pub fn sample(&self) -> Arc<MetricSnapshot> {
        let sw = Stopwatch::start();
        let mut points = Vec::new();
        {
            let sources = self.sources.read();
            for s in sources.iter() {
                (s.collect)(&mut points);
            }
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;

        // Self-telemetry: the sampler observes its own cost so the
        // overhead claim is continuously verifiable.
        points.push(MetricPoint::counter("symbi_telemetry_snapshots_total", seq));
        let elapsed_ns = sw.elapsed_ns();
        let hist = {
            let mut h = self.sample_duration.lock();
            h.observe(elapsed_ns as f64);
            h.clone()
        };
        points.push(MetricPoint::histogram(
            "symbi_telemetry_sample_duration_ns",
            hist,
        ));

        // Counter series keyed by (family name, label set).
        type SeriesKey<'a> = (&'a str, &'a [(String, String)]);
        let prev = self.latest();
        let prev_counters: HashMap<SeriesKey, u64> = prev
            .as_deref()
            .map(|snap| {
                snap.points
                    .iter()
                    .filter_map(|sp| match sp.point.value {
                        MetricValue::Counter(v) => {
                            Some(((sp.point.name.as_str(), sp.point.labels.as_slice()), v))
                        }
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();

        let points = points
            .into_iter()
            .map(|point| {
                let delta = match point.value {
                    MetricValue::Counter(v) => prev_counters
                        .get(&(point.name.as_str(), point.labels.as_slice()))
                        .map(|prev| v.saturating_sub(*prev)),
                    _ => None,
                };
                SnapshotPoint { point, delta }
            })
            .collect();

        let snap = Arc::new(MetricSnapshot {
            seq,
            wall_ns: now_ns(),
            entity: self.entity(),
            points,
        });
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(snap.clone());
        snap
    }

    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<Arc<MetricSnapshot>> {
        self.ring.lock().back().cloned()
    }

    /// All retained snapshots, oldest first.
    pub fn recent(&self) -> Vec<Arc<MetricSnapshot>> {
        self.ring.lock().iter().cloned().collect()
    }
}

// ----------------------------------------------------------------------
// Source collectors for the measurement layers
// ----------------------------------------------------------------------

/// Contribute profiler metrics: the row count plus, per `(callpath, side)`
/// row, the completed-RPC count and cumulative per-interval times.
pub fn collect_profiler(p: &Profiler, out: &mut Vec<MetricPoint>) {
    let rows = p.snapshot();
    out.push(MetricPoint::gauge("symbi_profile_rows", rows.len() as f64));
    for row in rows {
        let callpath = row.callpath.display();
        let side = match row.side {
            Side::Origin => "origin",
            Side::Target => "target",
        };
        out.push(
            MetricPoint::counter("symbi_rpc_count_total", row.count)
                .with_label("callpath", callpath.clone())
                .with_label("side", side)
                .with_label("peer", crate::entity::entity_name(row.peer)),
        );
        for interval in crate::intervals::Interval::ALL {
            let ns = row.interval_ns(interval);
            if ns > 0 {
                out.push(
                    MetricPoint::counter("symbi_rpc_interval_ns_total", ns)
                        .with_label("callpath", callpath.clone())
                        .with_label("side", side)
                        .with_label("interval", format!("{interval:?}")),
                );
            }
        }
    }
}

/// Contribute tracer metrics: buffered event count and per-thread segment
/// registration/depth gauges.
pub fn collect_tracer(t: &Tracer, out: &mut Vec<MetricPoint>) {
    let depths = t.segment_depths();
    out.push(MetricPoint::gauge(
        "symbi_trace_events_buffered",
        depths.iter().sum::<usize>() as f64,
    ));
    out.push(MetricPoint::gauge(
        "symbi_trace_segments",
        depths.len() as f64,
    ));
    out.push(MetricPoint::gauge(
        "symbi_trace_segment_depth_max",
        depths.iter().copied().max().unwrap_or(0) as f64,
    ));
}

/// Contribute one pool's scheduler metrics, including the per-lane
/// queue-depth highwatermark and steal counters.
pub fn collect_pool(stats: &PoolStats, out: &mut Vec<MetricPoint>) {
    let pool = stats.name.clone();
    let labelled_gauge =
        |name: &str, v: f64| MetricPoint::gauge(name, v).with_label("pool", pool.clone());
    let labelled_counter =
        |name: &str, v: u64| MetricPoint::counter(name, v).with_label("pool", pool.clone());
    out.push(labelled_gauge(
        "symbi_pool_runnable_ults",
        stats.runnable as f64,
    ));
    out.push(labelled_gauge(
        "symbi_pool_running_ults",
        stats.running as f64,
    ));
    out.push(labelled_gauge(
        "symbi_pool_blocked_ults",
        stats.blocked as f64,
    ));
    out.push(labelled_counter("symbi_pool_spawned_total", stats.spawned));
    out.push(labelled_counter(
        "symbi_pool_completed_total",
        stats.completed,
    ));
    out.push(labelled_counter(
        "symbi_pool_queue_wait_ns_total",
        stats.cumulative_queue_wait_ns,
    ));
    out.push(labelled_counter(
        "symbi_pool_spawned_after_close_total",
        stats.spawned_after_close,
    ));
    for (i, lane) in stats.lanes.iter().enumerate() {
        out.push(
            MetricPoint::gauge(
                "symbi_pool_lane_depth_highwatermark",
                lane.depth_highwatermark as f64,
            )
            .with_label("pool", pool.clone())
            .with_label("lane", i.to_string()),
        );
        out.push(
            MetricPoint::counter("symbi_pool_lane_steals_total", lane.steals)
                .with_label("pool", pool.clone())
                .with_label("lane", i.to_string()),
        );
    }
}

/// Contribute OS-layer metrics (resident memory, cumulative CPU time).
/// Uses the cached sampler with a 1 ms TTL — a monitoring period is always
/// far coarser, so the cache never hides signal here.
pub fn collect_os(out: &mut Vec<MetricPoint>) {
    let sys = SysStats::sample_cached();
    out.push(MetricPoint::gauge(
        "symbi_os_memory_kb",
        sys.memory_kb as f64,
    ));
    out.push(MetricPoint::counter(
        "symbi_os_cpu_time_ms_total",
        sys.cpu_time_ms,
    ));
}

/// Contribute Mercury PVAR metrics through a tool session (§IV-B2):
///
/// * every `NO_OBJECT` PVAR in the export table becomes one family named
///   `symbi_hg_<pvar_name>` (counters get a `_total` suffix);
/// * live `HANDLE`-bound PVARs are sampled by enumerating the PVAR blocks
///   of all currently posted handles ([`HgClass::posted_handle_pvars`])
///   and aggregating each variable across them — the only way to observe
///   values that vanish when their handle completes;
/// * `symbi_hg_live_handles` gauges how many in-flight handles the
///   aggregates cover.
pub fn collect_hg(hg: &HgClass, session: &PvarSession, out: &mut Vec<MetricPoint>) {
    let live = hg.posted_handle_pvars();
    out.push(MetricPoint::gauge(
        "symbi_hg_live_handles",
        live.len() as f64,
    ));
    for info in PVAR_TABLE {
        let Ok(handle) = session.alloc_handle(info.id) else {
            continue;
        };
        match info.bind {
            PvarBind::NoObject => {
                let Ok(v) = session.sample(&handle, None) else {
                    continue;
                };
                let point = match info.class {
                    PvarClass::Counter => {
                        MetricPoint::counter(format!("symbi_hg_{}_total", info.name), v)
                    }
                    _ => MetricPoint::gauge(format!("symbi_hg_{}", info.name), v as f64),
                };
                out.push(point);
            }
            PvarBind::Handle => {
                let mut sum = 0u64;
                for block in &live {
                    if let Ok(v) = session.sample(&handle, Some(block)) {
                        sum += v;
                    }
                }
                out.push(MetricPoint::gauge(
                    format!("symbi_hg_live_{}_sum", info.name),
                    sum as f64,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stage;
    use crate::Symbiosys;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = HistogramValue::new(&[1.0, 10.0, 100.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(500.0);
        assert_eq!(h.counts, vec![1, 2, 3, 4]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 555.5).abs() < 1e-9);
    }

    #[test]
    fn sample_collects_registered_sources_in_order() {
        let reg = TelemetryRegistry::new();
        reg.register_source("a", |out| out.push(MetricPoint::gauge("symbi_a", 1.0)));
        reg.register_source("b", |out| out.push(MetricPoint::gauge("symbi_b", 2.0)));
        assert_eq!(reg.source_names(), vec!["a", "b"]);
        let snap = reg.sample();
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.points[0].point.name, "symbi_a");
        assert_eq!(snap.points[1].point.name, "symbi_b");
        // Self-telemetry rides along.
        assert!(snap.find("symbi_telemetry_snapshots_total", &[]).is_some());
        assert!(snap
            .points
            .iter()
            .any(|p| p.point.name == "symbi_telemetry_sample_duration_ns"));
    }

    #[test]
    fn counter_deltas_computed_between_snapshots() {
        let reg = TelemetryRegistry::new();
        let v = Arc::new(AtomicU64::new(10));
        let v2 = v.clone();
        reg.register_source("ctr", move |out| {
            out.push(MetricPoint::counter(
                "symbi_test_total",
                v2.load(Ordering::Relaxed),
            ))
        });
        let first = reg.sample();
        assert_eq!(
            first.find("symbi_test_total", &[]).unwrap().delta,
            None,
            "no delta on first observation"
        );
        v.store(17, Ordering::Relaxed);
        let second = reg.sample();
        assert_eq!(second.find("symbi_test_total", &[]).unwrap().delta, Some(7));
        // A counter reset saturates to zero rather than wrapping.
        v.store(3, Ordering::Relaxed);
        let third = reg.sample();
        assert_eq!(third.find("symbi_test_total", &[]).unwrap().delta, Some(0));
    }

    #[test]
    fn deltas_are_per_series_not_per_family() {
        let reg = TelemetryRegistry::new();
        let tick = Arc::new(AtomicU64::new(0));
        let t2 = tick.clone();
        reg.register_source("multi", move |out| {
            let t = t2.load(Ordering::Relaxed);
            out.push(MetricPoint::counter("symbi_multi_total", 10 * t).with_label("k", "a"));
            out.push(MetricPoint::counter("symbi_multi_total", 100 * t).with_label("k", "b"));
        });
        tick.store(1, Ordering::Relaxed);
        reg.sample();
        tick.store(2, Ordering::Relaxed);
        let snap = reg.sample();
        assert_eq!(
            snap.find("symbi_multi_total", &[("k", "a")]).unwrap().delta,
            Some(10)
        );
        assert_eq!(
            snap.find("symbi_multi_total", &[("k", "b")]).unwrap().delta,
            Some(100)
        );
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let reg = TelemetryRegistry::with_capacity(3);
        for _ in 0..10 {
            reg.sample();
        }
        let recent = reg.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 8);
        assert_eq!(recent[2].seq, 10);
        assert_eq!(reg.latest().unwrap().seq, 10);
    }

    #[test]
    fn entity_tag_propagates_to_snapshots() {
        let reg = TelemetryRegistry::new();
        assert_eq!(reg.sample().entity, None);
        reg.set_entity("svc-0");
        assert_eq!(reg.sample().entity.as_deref(), Some("svc-0"));
    }

    #[test]
    fn profiler_collector_emits_rows() {
        let sym = Symbiosys::new("telemetry-prof", Stage::Full);
        let peer = crate::entity::register_entity("telemetry-peer");
        sym.profiler().record(
            sym.entity(),
            peer,
            Side::Origin,
            crate::Callpath::root("rpc_t"),
            &[(crate::Interval::OriginExecution, 1000)],
        );
        let mut out = Vec::new();
        collect_profiler(sym.profiler(), &mut out);
        assert!(out.iter().any(|p| p.name == "symbi_profile_rows"));
        let count = out
            .iter()
            .find(|p| p.name == "symbi_rpc_count_total")
            .expect("rpc count family");
        assert_eq!(count.value, MetricValue::Counter(1));
        assert!(count
            .labels
            .iter()
            .any(|(k, v)| k == "callpath" && v.contains("rpc_t")));
        assert!(out.iter().any(|p| p.name == "symbi_rpc_interval_ns_total"));
    }

    #[test]
    fn pool_collector_emits_lane_series() {
        let pool = symbi_tasking::Pool::with_lanes("telemetry-pool", 4);
        pool.spawn(|| {});
        let mut out = Vec::new();
        collect_pool(&pool.stats(), &mut out);
        let lanes: Vec<_> = out
            .iter()
            .filter(|p| p.name == "symbi_pool_lane_depth_highwatermark")
            .collect();
        assert_eq!(lanes.len(), 4);
        assert!(out.iter().any(|p| p.name == "symbi_pool_lane_steals_total"));
        assert!(out
            .iter()
            .any(|p| p.name == "symbi_pool_runnable_ults" && p.value == MetricValue::Gauge(1.0)));
        // The undrained task is dropped with the pool.
    }

    #[test]
    fn hg_collector_covers_no_object_and_live_handle_pvars() {
        use symbi_fabric::{Fabric, NetworkModel};
        let hg = HgClass::init(Fabric::new(NetworkModel::instant()), Default::default());
        let session = hg.pvar_session();
        let mut out = Vec::new();
        collect_hg(&hg, &session, &mut out);
        assert!(out.iter().any(|p| p.name == "symbi_hg_live_handles"));
        // One family per NO_OBJECT PVAR.
        assert!(out
            .iter()
            .any(|p| p.name == "symbi_hg_num_rpcs_invoked_total"));
        assert!(out.iter().any(|p| p.name == "symbi_hg_eager_buffer_size"));
        // HANDLE-bound PVARs appear as live aggregates even when no
        // handles are posted.
        assert!(out
            .iter()
            .any(|p| p.name == "symbi_hg_live_input_serialization_time_sum"));
    }

    #[test]
    fn os_collector_emits_memory_and_cpu() {
        let mut out = Vec::new();
        collect_os(&mut out);
        assert!(out.iter().any(|p| p.name == "symbi_os_memory_kb"));
        assert!(out.iter().any(|p| p.name == "symbi_os_cpu_time_ms_total"));
    }
}
