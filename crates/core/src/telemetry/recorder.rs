//! On-disk flight recorder: a bounded ring of JSONL files holding the
//! most recent metric snapshots.
//!
//! Post-mortem analysis of a data service needs the minutes *before* the
//! incident, not an unbounded log. The recorder appends one JSON line per
//! snapshot to `flight-<index>.jsonl`, rotates to a new file once the
//! current one exceeds `max_file_bytes`, and deletes the oldest file when
//! more than `max_files` exist — so disk usage is bounded by roughly
//! `max_files * max_file_bytes` regardless of how long the service runs.

use super::jsonl::{
    action_from_json, action_to_json, is_action_line, snapshot_from_json, snapshot_to_json,
    trace_event_to_json, TraceEventDecoder,
};
use super::MetricSnapshot;
use crate::analysis::online::ActionRecord;
use crate::trace::TraceEvent;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Sizing policy for a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FlightRecorderConfig {
    /// Directory holding the `flight-<index>.jsonl` ring (created if
    /// missing).
    pub dir: PathBuf,
    /// Rotate to a new file once the current one reaches this many bytes.
    pub max_file_bytes: u64,
    /// Keep at most this many files; the oldest is deleted first.
    pub max_files: usize,
}

impl FlightRecorderConfig {
    /// Config with default sizing (4 files x 4 MiB).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FlightRecorderConfig {
            dir: dir.into(),
            max_file_bytes: 4 << 20,
            max_files: 4,
        }
    }

    /// Override the per-file rotation threshold.
    pub fn with_max_file_bytes(mut self, bytes: u64) -> Self {
        self.max_file_bytes = bytes.max(1);
        self
    }

    /// Override the file-count bound (minimum 2, so rotation always has
    /// somewhere to go).
    pub fn with_max_files(mut self, files: usize) -> Self {
        self.max_files = files.max(2);
        self
    }
}

struct RecorderState {
    writer: BufWriter<File>,
    current_index: u64,
    current_bytes: u64,
    /// Indices of live files, oldest first (current file is last).
    live: Vec<u64>,
}

/// Appends snapshots to a bounded on-disk ring of JSONL files.
pub struct FlightRecorder {
    config: FlightRecorderConfig,
    state: Mutex<RecorderState>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("dir", &self.config.dir)
            .finish_non_exhaustive()
    }
}

fn file_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("flight-{index}.jsonl"))
}

/// Indices of existing `flight-<index>.jsonl` files in `dir`, ascending.
fn scan_indices(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut indices = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(idx) = name
            .strip_prefix("flight-")
            .and_then(|rest| rest.strip_suffix(".jsonl"))
        {
            if let Ok(idx) = idx.parse::<u64>() {
                indices.push(idx);
            }
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

impl FlightRecorder {
    /// Open (or resume) a recorder in `config.dir`. An existing ring from
    /// a previous run is continued: writing resumes after the highest
    /// existing index, and old files count against `max_files`.
    pub fn open(config: FlightRecorderConfig) -> std::io::Result<FlightRecorder> {
        std::fs::create_dir_all(&config.dir)?;
        let live = scan_indices(&config.dir)?;
        let next_index = live.last().map_or(0, |last| last + 1);
        let mut state = RecorderState {
            writer: open_file(&config.dir, next_index)?,
            current_index: next_index,
            current_bytes: 0,
            live,
        };
        state.live.push(next_index);
        let recorder = FlightRecorder {
            config,
            state: Mutex::new(state),
        };
        recorder.enforce_bound(&mut recorder.state.lock());
        Ok(recorder)
    }

    /// Append one snapshot as a JSON line, rotating/reclaiming as needed.
    pub fn append(&self, snap: &MetricSnapshot) -> std::io::Result<()> {
        let line = snapshot_to_json(snap);
        let mut state = self.state.lock();
        self.write_line(&mut state, &line)?;
        self.rotate_if_needed(&mut state)
    }

    /// Append trace events as `"kind":"trace"` JSON lines. Trace bytes
    /// count toward the rotation threshold exactly like snapshots, so a
    /// trace-heavy service still respects the ring's disk bound.
    /// [`replay`] skips trace lines; [`replay_events`] reads them back.
    pub fn append_events(&self, events: &[TraceEvent]) -> std::io::Result<()> {
        if events.is_empty() {
            return Ok(());
        }
        let mut state = self.state.lock();
        for e in events {
            let line = trace_event_to_json(e);
            self.write_line(&mut state, &line)?;
        }
        self.rotate_if_needed(&mut state)
    }

    /// Append control-action records as `"kind":"action"` JSON lines.
    /// Like trace lines they count toward rotation and are skipped by
    /// [`replay`]; [`replay_actions`] reads them back.
    pub fn append_actions(&self, actions: &[ActionRecord]) -> std::io::Result<()> {
        if actions.is_empty() {
            return Ok(());
        }
        let mut state = self.state.lock();
        for a in actions {
            let line = action_to_json(a);
            self.write_line(&mut state, &line)?;
        }
        self.rotate_if_needed(&mut state)
    }

    fn write_line(&self, state: &mut RecorderState, line: &str) -> std::io::Result<()> {
        state.writer.write_all(line.as_bytes())?;
        state.writer.write_all(b"\n")?;
        state.current_bytes += line.len() as u64 + 1;
        Ok(())
    }

    fn rotate_if_needed(&self, state: &mut RecorderState) -> std::io::Result<()> {
        if state.current_bytes >= self.config.max_file_bytes {
            state.writer.flush()?;
            let next = state.current_index + 1;
            state.writer = open_file(&self.config.dir, next)?;
            state.current_index = next;
            state.current_bytes = 0;
            state.live.push(next);
            self.enforce_bound(state);
        }
        Ok(())
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.state.lock().writer.flush()
    }

    /// The directory holding the ring.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Paths of the live ring files, oldest first.
    pub fn files(&self) -> Vec<PathBuf> {
        self.state
            .lock()
            .live
            .iter()
            .map(|&idx| file_path(&self.config.dir, idx))
            .collect()
    }

    fn enforce_bound(&self, state: &mut RecorderState) {
        while state.live.len() > self.config.max_files {
            let oldest = state.live.remove(0);
            // Best effort: a missing file (e.g. removed by an operator)
            // must not kill the monitor loop.
            let _ = std::fs::remove_file(file_path(&self.config.dir, oldest));
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        let _ = self.state.lock().writer.flush();
    }
}

fn open_file(dir: &Path, index: u64) -> std::io::Result<BufWriter<File>> {
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(file_path(dir, index))?;
    Ok(BufWriter::new(file))
}

/// Read every snapshot still on disk in `dir`, oldest first. Trace
/// records and unparseable lines (e.g. a torn final line from a crash)
/// are skipped.
pub fn replay(dir: &Path) -> std::io::Result<Vec<MetricSnapshot>> {
    let mut snaps = Vec::new();
    for idx in scan_indices(dir)? {
        let content = match std::fs::read_to_string(file_path(dir, idx)) {
            Ok(c) => c,
            // Deleted between scan and read (concurrent rotation).
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for line in content.lines() {
            if line.trim().is_empty()
                || TraceEventDecoder::is_trace_line(line)
                || is_action_line(line)
            {
                continue;
            }
            if let Ok(snap) = snapshot_from_json(line) {
                snaps.push(snap);
            }
        }
    }
    Ok(snaps)
}

/// Read every trace event still on disk in `dir`, oldest file first,
/// decoding through `decoder` so multiple directories (one per service
/// process) share one entity memo. Snapshot lines and torn lines are
/// skipped.
pub fn replay_events_with(
    dir: &Path,
    decoder: &mut TraceEventDecoder,
) -> std::io::Result<Vec<TraceEvent>> {
    let mut events = Vec::new();
    for idx in scan_indices(dir)? {
        let content = match std::fs::read_to_string(file_path(dir, idx)) {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for line in content.lines() {
            if !TraceEventDecoder::is_trace_line(line) {
                continue;
            }
            if let Ok(e) = decoder.decode(line) {
                events.push(e);
            }
        }
    }
    Ok(events)
}

/// [`replay_events_with`] over a fresh decoder — the single-directory
/// convenience form.
pub fn replay_events(dir: &Path) -> std::io::Result<Vec<TraceEvent>> {
    replay_events_with(dir, &mut TraceEventDecoder::new())
}

/// Read every control-action record still on disk in `dir`, oldest file
/// first, appending into `out` so multiple ring directories merge into
/// one list. Snapshot/trace lines and torn lines are skipped.
pub fn replay_actions_with(dir: &Path, out: &mut Vec<ActionRecord>) -> std::io::Result<()> {
    for idx in scan_indices(dir)? {
        let content = match std::fs::read_to_string(file_path(dir, idx)) {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for line in content.lines() {
            if !is_action_line(line) {
                continue;
            }
            if let Ok(a) = action_from_json(line) {
                out.push(a);
            }
        }
    }
    Ok(())
}

/// [`replay_actions_with`] into a fresh vector — the single-directory
/// convenience form.
pub fn replay_actions(dir: &Path) -> std::io::Result<Vec<ActionRecord>> {
    let mut out = Vec::new();
    replay_actions_with(dir, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::{MetricPoint, SnapshotPoint};
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("symbi-recorder-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn snap(seq: u64) -> MetricSnapshot {
        MetricSnapshot {
            seq,
            wall_ns: seq * 1_000,
            entity: Some("test".into()),
            points: vec![SnapshotPoint {
                point: MetricPoint::counter("symbi_events_total", seq * 10),
                delta: if seq == 0 { None } else { Some(10) },
            }],
        }
    }

    #[test]
    fn appended_snapshots_replay_in_order() {
        let dir = temp_dir("replay");
        let rec = FlightRecorder::open(FlightRecorderConfig::new(&dir)).unwrap();
        for seq in 0..5 {
            rec.append(&snap(seq)).unwrap();
        }
        rec.flush().unwrap();
        let back = replay(&dir).unwrap();
        assert_eq!(back.len(), 5);
        for (i, s) in back.iter().enumerate() {
            assert_eq!(*s, snap(i as u64));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_rotates_and_reclaims_oldest_file() {
        let dir = temp_dir("ring");
        // Tiny files: every append rotates, so the ring is exercised fast.
        let cfg = FlightRecorderConfig::new(&dir)
            .with_max_file_bytes(64)
            .with_max_files(3);
        let rec = FlightRecorder::open(cfg).unwrap();
        for seq in 0..20 {
            rec.append(&snap(seq)).unwrap();
        }
        rec.flush().unwrap();
        let files = scan_indices(&dir).unwrap();
        assert!(
            files.len() <= 3,
            "ring exceeded max_files: {} files",
            files.len()
        );
        // Only recent snapshots survive; the earliest are gone.
        let back = replay(&dir).unwrap();
        assert!(!back.is_empty());
        assert!(back.first().unwrap().seq > 0, "oldest file not reclaimed");
        assert_eq!(back.last().unwrap().seq, 19);
        // Replayed sequence is still contiguous and ordered.
        for pair in back.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_resumes_after_existing_files() {
        let dir = temp_dir("resume");
        {
            let rec = FlightRecorder::open(FlightRecorderConfig::new(&dir)).unwrap();
            rec.append(&snap(0)).unwrap();
            rec.flush().unwrap();
        }
        {
            let rec = FlightRecorder::open(FlightRecorderConfig::new(&dir)).unwrap();
            rec.append(&snap(1)).unwrap();
            rec.flush().unwrap();
            assert!(rec.files().len() >= 2, "second run must use a new index");
        }
        let back = replay(&dir).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].seq, 0);
        assert_eq!(back[1].seq, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_records_share_the_ring_with_snapshots() {
        use crate::entity::{entity_name, register_entity};
        use crate::trace::{EventSamples, TraceEvent, TraceEventKind};
        use crate::Callpath;

        let dir = temp_dir("trace");
        let rec = FlightRecorder::open(FlightRecorderConfig::new(&dir)).unwrap();
        let entity = register_entity("rec-svc");
        let ev = |order: u32, kind| TraceEvent {
            request_id: 9,
            order,
            span: 5,
            parent_span: 0,
            hop: 1,
            lamport: order as u64,
            wall_ns: 1_000 + order as u64,
            kind,
            entity,
            callpath: Callpath::root("rec_rpc"),
            samples: EventSamples::default(),
        };
        rec.append(&snap(0)).unwrap();
        rec.append_events(&[
            ev(0, TraceEventKind::OriginForward),
            ev(3, TraceEventKind::OriginComplete),
        ])
        .unwrap();
        rec.append(&snap(1)).unwrap();
        rec.flush().unwrap();

        // Metric replay skips trace lines; trace replay skips snapshots.
        let snaps = replay(&dir).unwrap();
        assert_eq!(snaps.len(), 2);
        let events = replay_events(&dir).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceEventKind::OriginForward);
        assert_eq!(events[1].kind, TraceEventKind::OriginComplete);
        assert_eq!(events[0].span, 5);
        assert_eq!(entity_name(events[0].entity), "rec-svc");
        assert_eq!(
            events[0].entity, events[1].entity,
            "one replay, one entity id"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_bytes_count_toward_rotation() {
        use crate::entity::register_entity;
        use crate::trace::{EventSamples, TraceEvent, TraceEventKind};
        use crate::Callpath;

        let dir = temp_dir("trace-ring");
        let cfg = FlightRecorderConfig::new(&dir)
            .with_max_file_bytes(256)
            .with_max_files(3);
        let rec = FlightRecorder::open(cfg).unwrap();
        let entity = register_entity("ring-svc");
        for i in 0..200u64 {
            rec.append_events(&[TraceEvent {
                request_id: i,
                order: 0,
                span: i + 1,
                parent_span: 0,
                hop: 1,
                lamport: i,
                wall_ns: i,
                kind: TraceEventKind::OriginForward,
                entity,
                callpath: Callpath::root("ring_rpc"),
                samples: EventSamples::default(),
            }])
            .unwrap();
        }
        rec.flush().unwrap();
        assert!(
            scan_indices(&dir).unwrap().len() <= 3,
            "trace-only traffic must still rotate and reclaim"
        );
        let events = replay_events(&dir).unwrap();
        assert!(!events.is_empty());
        assert_eq!(events.last().unwrap().request_id, 199);
        assert!(events[0].request_id > 0, "oldest file reclaimed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn action_records_share_the_ring_and_replay() {
        let dir = temp_dir("actions");
        let rec = FlightRecorder::open(FlightRecorderConfig::new(&dir)).unwrap();
        let action = |seq: u64| ActionRecord {
            seq,
            wall_ns: 10_000 + seq,
            entity: "rec-svc".into(),
            detector: "pool_backlog".into(),
            subject: "rpc".into(),
            action: "resize_lanes".into(),
            from: 1,
            to: 2,
            value: 40,
            threshold: 16,
        };
        rec.append(&snap(0)).unwrap();
        rec.append_actions(&[action(1), action(2)]).unwrap();
        rec.append(&snap(1)).unwrap();
        rec.flush().unwrap();

        // Each replay mode sees only its own record kind.
        assert_eq!(replay(&dir).unwrap().len(), 2);
        assert!(replay_events(&dir).unwrap().is_empty());
        let actions = replay_actions(&dir).unwrap();
        assert_eq!(actions.len(), 2);
        assert_eq!(actions[0], action(1));
        assert_eq!(actions[1], action(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_skipped() {
        let dir = temp_dir("torn");
        let rec = FlightRecorder::open(FlightRecorderConfig::new(&dir)).unwrap();
        rec.append(&snap(0)).unwrap();
        rec.flush().unwrap();
        // Simulate a crash mid-write: append half a JSON line.
        let current = rec.files().pop().unwrap();
        let mut f = OpenOptions::new().append(true).open(current).unwrap();
        f.write_all(b"{\"seq\":99,\"wall_ns\":").unwrap();
        drop(f);
        let back = replay(&dir).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].seq, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
