//! Prometheus text-exposition rendering and a zero-dependency scrape
//! endpoint over `std::net::TcpListener`.
//!
//! The renderer follows text format 0.0.4: one `# HELP` / `# TYPE` pair
//! per family, all series of a family contiguous, label values escaped
//! (`\\`, `\"`, `\n`), histograms expanded to cumulative `_bucket{le=}`
//! series plus `_sum` / `_count`.

use super::{MetricSnapshot, MetricValue, TelemetryRegistry};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn escape_label(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn escape_help(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn push_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label(out, v);
        out.push('"');
    }
    out.push('}');
}

fn format_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        v.to_string()
    }
}

/// Curated HELP strings for the families whose meaning a scrape cannot
/// guess from the name alone — the online streaming analyzer and the
/// adaptive control loop. Everything else falls back to a name-derived
/// string, so new families are never silently HELP-less.
fn curated_help(name: &str) -> Option<&'static str> {
    Some(match name {
        // In-situ streaming analysis (symbi_core::analysis::online).
        "symbi_online_events_ingested_total" => {
            "Trace events reduced in-situ by the online streaming analyzer."
        }
        "symbi_online_open_spans" => "Spans currently held open in the bounded attribution window.",
        "symbi_online_open_span_capacity" => {
            "Configured open-span window capacity (the online memory bound)."
        }
        "symbi_online_spans_completed_total" => {
            "Spans folded into per-hop aggregates with all four timeline points."
        }
        "symbi_online_spans_evicted_total" => {
            "Spans force-flushed from the window before completing."
        }
        "symbi_online_spans_unlinked_total" => {
            "Trace events without a span id that could not be correlated."
        }
        "symbi_online_hop_requests_total" => "Completed spans per hop class.",
        "symbi_online_hop_queue_ns_total" => {
            "Summed handler-pool queue wait per hop class (t4->t5), ns."
        }
        "symbi_online_hop_busy_ns_total" => "Summed target busy time per hop class (t5->t8), ns.",
        "symbi_online_hop_network_ns_total" => {
            "Summed network and delivery time per hop class, ns."
        }
        "symbi_online_hop_total_ns_total" => "Summed full hop latency per hop class (t1->t14), ns.",
        "symbi_online_latency_ns" => {
            "Per-hop-class hop latency, log-linear streaming histogram (ns)."
        }
        "symbi_online_topk_weight_ns" => {
            "Space-Saving top-K slow callpaths: cumulative attributed latency, ns."
        }
        "symbi_online_anomalies_total" => "Anomaly detector firings, per detector.",
        // The cluster collector (symbi_obs) — federated aggregates.
        "symbi_cluster_processes" => {
            "Processes currently streaming telemetry to the cluster collector."
        }
        "symbi_cluster_events_ingested_total" => {
            "Trace events ingested by the collector across all processes."
        }
        "symbi_cluster_spans_completed_total" => {
            "Spans completed in the collector's cross-PID reconstruction."
        }
        "symbi_cluster_latency_ns" => {
            "Deployment-wide hop latency histogram, merged across all processes (ns)."
        }
        "symbi_cluster_latency_quantile_ns" => {
            "Deployment-wide latency quantile from the merged histogram, ns."
        }
        "symbi_cluster_hop_queue_ns_total" => {
            "Cluster-merged handler-pool queue wait per hop class (t4->t5), ns."
        }
        "symbi_cluster_hop_busy_ns_total" => {
            "Cluster-merged target busy time per hop class (t5->t8), ns."
        }
        "symbi_cluster_hop_network_ns_total" => {
            "Cluster-merged network and delivery time per hop class, ns."
        }
        "symbi_cluster_hop_total_ns_total" => {
            "Cluster-merged full hop latency per hop class (t1->t14), ns."
        }
        "symbi_cluster_topk_weight_ns" => {
            "Cluster-wide top-K slow callpaths: cumulative attributed latency, ns."
        }
        "symbi_cluster_anomalies_total" => {
            "Anomalies reported to the collector, per reporting process."
        }
        "symbi_cluster_spans_retained_total" => {
            "Span trees retained by the tail sampler (slow, errored, or head-sampled)."
        }
        "symbi_cluster_spans_discarded_total" => {
            "Fast-path span trees the tail sampler dropped to stay within budget."
        }
        "symbi_cluster_shed_advisories_total" => {
            "Cluster shed advisories pushed back to monitored processes."
        }
        // The monitor-ULT push path (symbi_margo::telemetry).
        "symbi_obs_pushes_total" => "Telemetry/span batches pushed to the cluster collector.",
        "symbi_obs_push_failures_total" => {
            "Push attempts dropped (collector unreachable or blacked out)."
        }
        "symbi_obs_events_pushed_total" => "Completed-span trace events streamed to the collector.",
        "symbi_obs_events_dropped_total" => {
            "Trace events withheld from a push by the per-batch bound (still in flight rings)."
        }
        "symbi_obs_advisories_total" => "Cluster shed advisories received from the collector.",
        "symbi_obs_cluster_shed" => {
            "1 while the most recent collector advisory asks this process to shed."
        }
        // The adaptive control loop (symbi_margo::control).
        "symbi_margo_control_actions_total" => {
            "Control-loop reactions applied at runtime, per action kind."
        }
        "symbi_margo_shed_active" => {
            "1 while the admission gate is shedding load (rejecting with Overloaded)."
        }
        "symbi_margo_shed_rejected_total" => {
            "Requests rejected at admission while the shed gate was closed."
        }
        "symbi_margo_execution_streams" => {
            "Execution streams currently owned by the instance (baseline + grown)."
        }
        "symbi_margo_pipeline_windows" => "Per-destination pipeline gates currently open.",
        "symbi_margo_pipeline_depth" => "Summed in-flight window depth across pipeline gates.",
        "symbi_margo_pipeline_inflight" => "RPCs currently in flight across pipeline gates.",
        "symbi_margo_pipeline_queued" => {
            "RPCs parked behind full pipeline windows, awaiting a slot."
        }
        // The durable log-structured KV engine (symbi-store), aggregated
        // over an SDSKV provider's databases.
        "symbi_store_wal_records_total" => "Records appended to the write-ahead log.",
        "symbi_store_wal_bytes_total" => "Framed bytes appended to the write-ahead log.",
        "symbi_store_fsyncs_total" => "fsync calls issued by the WAL (commits and barriers).",
        "symbi_store_group_commits_total" => {
            "Commit groups flushed: one leader-performed write+fsync per group."
        }
        "symbi_store_group_committed_records_total" => {
            "WAL records made durable through group commit."
        }
        "symbi_store_group_commit_mean" => {
            "Mean records per commit group (the fsync amortization factor)."
        }
        "symbi_store_flush_barriers_total" => {
            "Explicit durability barriers (WorkloadTarget::flush / sdskv_flush_rpc)."
        }
        "symbi_store_memtable_flushes_total" => {
            "Memtable freezes into immutable sorted segment files."
        }
        "symbi_store_compactions_total" => "Segment compaction passes completed.",
        "symbi_store_compaction_ms_total" => "Wall time spent compacting segments, ms.",
        "symbi_store_recoveries_total" => "Crash recoveries run at store open.",
        "symbi_store_recovery_ms" => "Wall time of the most expensive recovery replay, ms.",
        "symbi_store_replayed_records_total" => "WAL records replayed during crash recovery.",
        "symbi_store_torn_tail_truncations_total" => {
            "Torn WAL tails truncated during replay (expected after SIGKILL, never fatal)."
        }
        "symbi_store_memtable_keys" => "Keys currently buffered in the memtable.",
        "symbi_store_memtable_bytes" => "Approximate memtable payload bytes (freeze trigger).",
        "symbi_store_segments" => "Immutable sorted segment files on disk (compaction trigger).",
        _ => return None,
    })
}

/// A short human-readable HELP string for a family: curated where we
/// have one, derived from the name otherwise.
fn help_for(name: &str) -> String {
    match curated_help(name) {
        Some(help) => help.to_string(),
        None => format!("{} (symbiosys telemetry)", name.replace('_', " ")),
    }
}

/// Render one snapshot in Prometheus text exposition format 0.0.4.
///
/// Families are emitted in sorted-name order, each preceded by `# HELP` /
/// `# TYPE`; all series of a family are contiguous as the format requires.
pub fn render(snap: &MetricSnapshot) -> String {
    // Group points by family name, preserving in-family arrival order.
    let mut families: BTreeMap<&str, Vec<&super::SnapshotPoint>> = BTreeMap::new();
    for sp in &snap.points {
        families.entry(&sp.point.name).or_default().push(sp);
    }
    let mut out = String::with_capacity(64 * snap.points.len() + 256);
    for (name, points) in families {
        let kind = match points[0].point.value {
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Counter(_) => "counter",
            MetricValue::Histogram(_) => "histogram",
        };
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        escape_help(&mut out, &help_for(name));
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(name);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        for sp in points {
            let p = &sp.point;
            match &p.value {
                MetricValue::Gauge(v) => {
                    out.push_str(name);
                    push_labels(&mut out, &p.labels, None);
                    out.push(' ');
                    out.push_str(&format_value(*v));
                    out.push('\n');
                }
                MetricValue::Counter(v) => {
                    out.push_str(name);
                    push_labels(&mut out, &p.labels, None);
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                MetricValue::Histogram(h) => {
                    // Bucket counts are already cumulative (see
                    // `HistogramValue::observe`), matching the exposition
                    // format directly.
                    for (i, count) in h.counts.iter().enumerate() {
                        let le = h
                            .bounds
                            .get(i)
                            .map_or_else(|| "+Inf".to_string(), |b| format_value(*b));
                        out.push_str(name);
                        out.push_str("_bucket");
                        push_labels(&mut out, &p.labels, Some(("le", &le)));
                        out.push(' ');
                        out.push_str(&count.to_string());
                        out.push('\n');
                    }
                    out.push_str(name);
                    out.push_str("_sum");
                    push_labels(&mut out, &p.labels, None);
                    out.push(' ');
                    out.push_str(&format_value(h.sum));
                    out.push('\n');
                    out.push_str(name);
                    out.push_str("_count");
                    push_labels(&mut out, &p.labels, None);
                    out.push(' ');
                    out.push_str(&h.count.to_string());
                    out.push('\n');
                }
            }
        }
    }
    out
}

/// Serves the registry's metrics over HTTP for Prometheus scrapes.
///
/// Each scrape triggers a fresh [`TelemetryRegistry::sample`], so scraped
/// values are current even when no background monitor is running. The
/// listener runs on a dedicated OS thread (it blocks in `accept`, which
/// must not occupy a ULT pool).
pub struct PrometheusExporter {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for PrometheusExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrometheusExporter")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl PrometheusExporter {
    /// Bind `127.0.0.1:port` (use port 0 for an ephemeral port) and serve
    /// scrapes until [`shutdown`](Self::shutdown) or drop.
    pub fn serve(registry: Arc<TelemetryRegistry>, port: u16) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("symbi-prom".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // One scrape at a time: Prometheus scrapes are
                        // infrequent and the response is small.
                        let _ = handle_scrape(stream, &registry);
                    }
                })?
        };
        Ok(PrometheusExporter {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn shutdown(&mut self) {
        if self
            .shutdown
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for PrometheusExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_scrape(mut stream: TcpStream, registry: &TelemetryRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(2)))?;
    // Read until the end of the request headers (or timeout). The request
    // itself is ignored: every path serves the metrics page.
    let mut buf = [0u8; 1024];
    let mut seen = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = render(&registry.sample());
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::super::{HistogramValue, MetricPoint, SnapshotPoint};
    use super::*;

    fn snap(points: Vec<SnapshotPoint>) -> MetricSnapshot {
        MetricSnapshot {
            seq: 1,
            wall_ns: 0,
            entity: None,
            points,
        }
    }

    fn plain(p: MetricPoint) -> SnapshotPoint {
        SnapshotPoint {
            point: p,
            delta: None,
        }
    }

    #[test]
    fn renders_gauge_and_counter_families() {
        let text = render(&snap(vec![
            plain(MetricPoint::gauge("symbi_depth", 3.0).with_label("pool", "p0")),
            plain(MetricPoint::counter("symbi_rpcs_total", 12)),
            plain(MetricPoint::gauge("symbi_depth", 1.5).with_label("pool", "p1")),
        ]));
        assert!(text.contains("# TYPE symbi_depth gauge\n"));
        assert!(text.contains("# TYPE symbi_rpcs_total counter\n"));
        assert!(text.contains("symbi_depth{pool=\"p0\"} 3\n"));
        assert!(text.contains("symbi_depth{pool=\"p1\"} 1.5\n"));
        assert!(text.contains("symbi_rpcs_total 12\n"));
        // Family series must be contiguous: both symbi_depth lines appear
        // before the symbi_rpcs_total TYPE header.
        let p1 = text.find("symbi_depth{pool=\"p1\"}").unwrap();
        let rpcs_header = text.find("# HELP symbi_rpcs_total").unwrap();
        assert!(p1 < rpcs_header, "family series interleaved");
    }

    #[test]
    fn renders_histogram_with_cumulative_buckets() {
        let mut h = HistogramValue::new(&[1.0, 5.0]);
        h.observe(0.5);
        h.observe(0.7);
        h.observe(3.0);
        h.observe(100.0);
        let text = render(&snap(vec![plain(MetricPoint::histogram("symbi_lat", h))]));
        assert!(text.contains("# TYPE symbi_lat histogram\n"));
        assert!(text.contains("symbi_lat_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("symbi_lat_bucket{le=\"5\"} 3\n"));
        assert!(text.contains("symbi_lat_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("symbi_lat_sum 104.2\n"));
        assert!(text.contains("symbi_lat_count 4\n"));
    }

    #[test]
    fn curated_help_covers_online_and_control_families() {
        // Online streaming families get a real explanation, including the
        // histogram family whose buckets the 0.0.4 renderer expands.
        let mut h = HistogramValue::new(&[1000.0, 1_000_000.0]);
        h.observe(500.0);
        let text = render(&snap(vec![
            plain(MetricPoint::histogram("symbi_online_latency_ns", h).with_label("hop", "1")),
            plain(
                MetricPoint::counter("symbi_margo_control_actions_total", 2)
                    .with_label("action", "resize_lanes"),
            ),
            plain(MetricPoint::counter("symbi_store_fsyncs_total", 7)),
            plain(MetricPoint::gauge("symbi_store_group_commit_mean", 5.5)),
            plain(MetricPoint::gauge("symbi_unheard_of", 1.0)),
        ]));
        assert!(
            text.contains(
                "# HELP symbi_online_latency_ns Per-hop-class hop latency, \
                 log-linear streaming histogram (ns).\n"
            ),
            "{text}"
        );
        assert!(text.contains("# TYPE symbi_online_latency_ns histogram\n"));
        assert!(text.contains("symbi_online_latency_ns_bucket{hop=\"1\",le=\"1000\"} 1\n"));
        assert!(text.contains(
            "# HELP symbi_margo_control_actions_total Control-loop reactions \
             applied at runtime, per action kind.\n"
        ));
        // Durable-store families are curated too.
        assert!(text.contains(
            "# HELP symbi_store_fsyncs_total fsync calls issued by the WAL \
             (commits and barriers).\n"
        ));
        assert!(text.contains("# TYPE symbi_store_fsyncs_total counter\n"));
        assert!(text.contains(
            "# HELP symbi_store_group_commit_mean Mean records per commit group \
             (the fsync amortization factor).\n"
        ));
        // Unknown families keep the derived fallback.
        assert!(text.contains("# HELP symbi_unheard_of symbi unheard of (symbiosys telemetry)\n"));
        // Every curated name stays in sync with what the code emits: the
        // table is keyed by exact family names, so a rename that misses
        // the table falls back to the derived string (caught above).
    }

    #[test]
    fn escapes_label_values() {
        let text = render(&snap(vec![plain(
            MetricPoint::gauge("symbi_g", 1.0).with_label("svc", "a\\b\"c\nd"),
        )]));
        assert!(text.contains(r#"svc="a\\b\"c\nd""#), "got: {text}");
    }

    #[test]
    fn exporter_serves_scrapes_and_shuts_down() {
        let registry = Arc::new(TelemetryRegistry::new());
        registry.register_source("demo", |out| {
            out.push(MetricPoint::gauge("symbi_demo_value", 7.0));
        });
        let mut exporter = PrometheusExporter::serve(registry, 0).unwrap();
        let addr = exporter.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("symbi_demo_value 7\n"));
        // Scrape-on-demand also produced the registry self-telemetry.
        assert!(response.contains("symbi_telemetry_snapshots_total"));

        exporter.shutdown();
        // Second shutdown is a no-op.
        exporter.shutdown();
        assert!(
            TcpStream::connect(addr).is_err()
                || TcpStream::connect(addr)
                    .map(|mut s| {
                        let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
                        let mut buf = String::new();
                        s.read_to_string(&mut buf).unwrap_or(0) == 0
                    })
                    .unwrap_or(true),
            "listener still serving after shutdown"
        );
    }
}
