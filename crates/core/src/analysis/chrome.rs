//! Chrome `trace_event` JSON export of span trees.
//!
//! Emits the JSON Object Format (`{"traceEvents": [...]}`) loadable in
//! `chrome://tracing` and Perfetto. Every span contributes up to two
//! complete ("ph":"X") events: the origin window (t1→t14) on the issuing
//! entity's track and the target window (t5→t8) on the serving entity's
//! track. Tracks map entities to pids and hop depth to tids, so a
//! composed request renders as nested bars across service rows. The
//! writer is hand-rolled (no external JSON dependency) and validated by
//! round-tripping through `telemetry::jsonl::parse_json`.

use crate::analysis::online::ActionRecord;
use crate::analysis::span_graph::{SpanGraph, SpanNode};
use crate::entity::{entity_name, register_entity, EntityId};
use crate::zipkin::escape_into;
use std::fmt::Write as _;

fn leaf_name(cp: crate::Callpath) -> String {
    crate::callpath::resolve_name(cp.leaf()).unwrap_or_else(|| format!("#{:04x}", cp.leaf()))
}

/// One "X" bar: which entity's track it renders on and its time window.
struct Window<'a> {
    entity: EntityId,
    start_ns: u64,
    dur_ns: u64,
    side: &'a str,
}

fn push_complete_event(out: &mut String, first: &mut bool, name: &str, node: &SpanNode, w: Window) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n  {\"name\":\"");
    escape_into(out, name);
    out.push_str("\",\"cat\":\"rpc\",\"ph\":\"X\"");
    // trace_event timestamps are microseconds; keep sub-µs resolution.
    let _ = write!(
        out,
        ",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{}",
        w.start_ns as f64 / 1_000.0,
        (w.dur_ns.max(1)) as f64 / 1_000.0,
        w.entity.0,
        node.hop
    );
    out.push_str(",\"args\":{\"request_id\":");
    let _ = write!(out, "{}", node.request_id);
    let _ = write!(out, ",\"span\":{}", node.span);
    let _ = write!(out, ",\"parent_span\":{}", node.parent_span);
    let _ = write!(out, ",\"hop\":{}", node.hop);
    out.push_str(",\"side\":\"");
    out.push_str(w.side);
    out.push_str("\"}}");
}

/// Render a span graph as Chrome trace JSON. `process_name` metadata
/// events label each entity's track with its registered name.
pub fn to_chrome_json(graph: &SpanGraph) -> String {
    to_chrome_json_with_actions(graph, &[])
}

/// One global instant ("ph":"i", scope "g") event per control action, on
/// the acting entity's track: the reaction half of detection→reaction,
/// rendered as a vertical marker across the request bars it affected.
fn push_action_event(out: &mut String, first: &mut bool, a: &ActionRecord, pid: u64) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n  {\"name\":\"");
    escape_into(out, &a.action);
    out.push_str("\",\"cat\":\"control\",\"ph\":\"i\",\"s\":\"g\"");
    let _ = write!(
        out,
        ",\"ts\":{:.3},\"pid\":{pid},\"tid\":0",
        a.wall_ns as f64 / 1_000.0
    );
    out.push_str(",\"args\":{\"detector\":\"");
    escape_into(out, &a.detector);
    out.push_str("\",\"subject\":\"");
    escape_into(out, &a.subject);
    let _ = write!(
        out,
        "\",\"from\":{},\"to\":{},\"value\":{},\"threshold\":{}}}}}",
        a.from, a.to, a.value, a.threshold
    );
}

/// [`to_chrome_json`] plus control-action instant events, so the adaptive
/// loop's reactions land on the same timeline as the spans.
pub fn to_chrome_json_with_actions(graph: &SpanGraph, actions: &[ActionRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;

    // Track labels: one process_name metadata record per entity seen.
    let mut entities: Vec<EntityId> = graph
        .trees
        .iter()
        .flat_map(|t| t.nodes.iter())
        .flat_map(|n| [n.origin, n.target])
        .flatten()
        .collect();
    entities.sort_unstable_by_key(|e| e.0);
    entities.dedup();

    // Actions carry their entity by *name*; resolve against the span
    // entities so an action shares its pid (track) with the requests it
    // affected, minting a fresh id only for entities with no spans.
    let mut by_name: std::collections::HashMap<String, EntityId> =
        entities.iter().map(|&e| (entity_name(e), e)).collect();
    let action_pids: Vec<EntityId> = actions
        .iter()
        .map(|a| {
            *by_name
                .entry(a.entity.clone())
                .or_insert_with(|| register_entity(&a.entity))
        })
        .collect();
    entities.extend(action_pids.iter().copied());
    entities.sort_unstable_by_key(|e| e.0);
    entities.dedup();
    for e in entities {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        let _ = write!(out, "{}", e.0);
        out.push_str(",\"args\":{\"name\":\"");
        escape_into(&mut out, &entity_name(e));
        out.push_str("\"}}");
    }

    for tree in &graph.trees {
        for node in &tree.nodes {
            let name = leaf_name(node.callpath);
            if let (Some(t1), Some(t14), Some(origin)) = (&node.t1, &node.t14, node.origin) {
                push_complete_event(
                    &mut out,
                    &mut first,
                    &name,
                    node,
                    Window {
                        entity: origin,
                        start_ns: t1.wall_ns,
                        dur_ns: t14.wall_ns.saturating_sub(t1.wall_ns),
                        side: "origin",
                    },
                );
            }
            if let (Some(t5), Some(t8), Some(target)) = (&node.t5, &node.t8, node.target) {
                push_complete_event(
                    &mut out,
                    &mut first,
                    &name,
                    node,
                    Window {
                        entity: target,
                        start_ns: t5.wall_ns,
                        dur_ns: t8.wall_ns.saturating_sub(t5.wall_ns),
                        side: "target",
                    },
                );
            }
        }
    }

    for (a, pid) in actions.iter().zip(&action_pids) {
        push_action_event(&mut out, &mut first, a, pid.0);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::span_graph::build_span_graph;
    use crate::entity::register_entity;
    use crate::telemetry::jsonl::parse_json;
    use crate::trace::{EventSamples, TraceEvent, TraceEventKind};
    use crate::Callpath;

    fn events() -> Vec<TraceEvent> {
        let client = register_entity("ch-client");
        let server = register_entity("ch-server");
        let cp = Callpath::root("ch_rpc");
        let mk = |span, order, lamport, wall_ns, kind, entity| TraceEvent {
            request_id: 4,
            order,
            span,
            parent_span: 0,
            hop: 1,
            lamport,
            wall_ns,
            kind,
            entity,
            callpath: cp,
            samples: EventSamples::default(),
        };
        vec![
            mk(1, 0, 1, 1_000, TraceEventKind::OriginForward, client),
            mk(1, 1, 2, 2_000, TraceEventKind::TargetUltStart, server),
            mk(1, 2, 3, 5_000, TraceEventKind::TargetRespond, server),
            mk(1, 3, 4, 7_000, TraceEventKind::OriginComplete, client),
        ]
    }

    #[test]
    fn chrome_json_parses_and_carries_both_sides() {
        let graph = build_span_graph(&events());
        let json = to_chrome_json(&graph);
        let parsed = parse_json(&json).expect("valid JSON");
        let evs = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        // 2 metadata records + origin + target.
        assert_eq!(evs.len(), 4);
        let complete: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for e in &complete {
            assert_eq!(e.get("name").and_then(|n| n.as_str()), Some("ch_rpc"));
            assert!(e.get("ts").is_some());
            assert!(e.get("dur").is_some());
            assert_eq!(
                e.get("args")
                    .and_then(|a| a.get("request_id"))
                    .and_then(|v| v.as_u64()),
                Some(4)
            );
        }
    }

    #[test]
    fn metadata_labels_each_entity_track() {
        let graph = build_span_graph(&events());
        let json = to_chrome_json(&graph);
        let parsed = parse_json(&json).expect("valid JSON");
        let evs = parsed.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        let labels: Vec<String> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .map(str::to_string)
            })
            .collect();
        assert!(labels.iter().any(|l| l.contains("ch-client")));
        assert!(labels.iter().any(|l| l.contains("ch-server")));
    }

    #[test]
    fn action_events_render_as_global_instants() {
        let graph = build_span_graph(&events());
        let action = ActionRecord {
            seq: 1,
            wall_ns: 4_000,
            entity: "ch-server".into(),
            detector: "pool_backlog".into(),
            subject: "rpc".into(),
            action: "resize_lanes".into(),
            from: 1,
            to: 2,
            value: 40,
            threshold: 16,
        };
        let json = to_chrome_json_with_actions(&graph, &[action]);
        let parsed = parse_json(&json).expect("valid JSON");
        let evs = parsed.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        let instants: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 1);
        let i = instants[0];
        assert_eq!(i.get("name").and_then(|n| n.as_str()), Some("resize_lanes"));
        assert_eq!(i.get("cat").and_then(|c| c.as_str()), Some("control"));
        assert_eq!(i.get("s").and_then(|s| s.as_str()), Some("g"));
        // The action shares a pid with the server's (target-side) track.
        let server_pid = evs
            .iter()
            .find(|e| {
                e.get("args")
                    .and_then(|a| a.get("side"))
                    .and_then(|s| s.as_str())
                    == Some("target")
            })
            .and_then(|e| e.get("pid"))
            .and_then(|p| p.as_u64())
            .expect("target-side span event");
        assert_eq!(i.get("pid").and_then(|p| p.as_u64()), Some(server_pid));
        let args = i.get("args").expect("args");
        assert_eq!(
            args.get("detector").and_then(|d| d.as_str()),
            Some("pool_backlog")
        );
        assert_eq!(args.get("to").and_then(|v| v.as_u64()), Some(2));
    }

    #[test]
    fn empty_graph_is_valid_json() {
        let json = to_chrome_json(&SpanGraph::default());
        let parsed = parse_json(&json).expect("valid JSON");
        assert_eq!(
            parsed
                .get("traceEvents")
                .and_then(|v| v.as_arr())
                .map(|a| a.len()),
            Some(0)
        );
    }
}
