//! Cross-service critical-path analysis over reconstructed span trees.
//!
//! Answers the paper's Figure-7-style question — *where did the time go
//! across the composition?* — by walking each [`SpanTree`] and
//! attributing every hop's end-to-end latency to Table III intervals,
//! handler-pool queue wait, network time, sub-RPC time, and the
//! unaccounted remainder; then aggregating the heaviest critical-path
//! edges across many requests.
//!
//! All durations are differences of same-entity timestamps (see
//! `span_graph`'s clock model), so the attribution is skew-free.

use crate::analysis::span_graph::{SpanGraph, SpanNode, SpanTree};
use crate::entity::{entity_name, EntityId};
use crate::intervals::Interval;
use std::collections::HashMap;

/// Latency attribution for one hop (one span) of a request.
#[derive(Debug, Clone)]
pub struct HopBreakdown {
    /// Span id of the hop.
    pub span: u64,
    /// Callpath at the hop.
    pub callpath: crate::Callpath,
    /// Hop depth (1 = end client's direct RPC).
    pub hop: u32,
    /// Issuing entity, if its events were collected.
    pub origin: Option<EntityId>,
    /// Serving entity, if its events were collected.
    pub target: Option<EntityId>,
    /// Full hop latency: t1→t14 on the origin clock (falls back to the
    /// target's t5→t8 when the origin view is missing).
    pub total_ns: u64,
    /// t4→t5 handler-pool queue wait on the target.
    pub queue_wait_ns: u64,
    /// t5→t8 busy time on the target.
    pub target_busy_ns: u64,
    /// Network + completion delivery: total − queue wait − target busy.
    pub network_ns: u64,
    /// Portion of target busy time covered by this hop's sub-RPCs
    /// (children's origin windows, overlap-merged on the target's clock).
    pub children_ns: u64,
    /// Target busy time not covered by sub-RPCs: the handler's own work.
    pub self_ns: u64,
    /// Table III interval samples fused into this hop's trace events.
    pub intervals: [u64; Interval::COUNT],
    /// total − the accounted Table III intervals (the Figure 11
    /// remainder for this hop).
    pub unaccounted_ns: u64,
}

impl HopBreakdown {
    /// Interval value by Table III interval.
    pub fn interval(&self, i: Interval) -> u64 {
        self.intervals[i.index()]
    }
}

/// Attribute one span's latency.
pub fn breakdown(tree: &SpanTree, node: &SpanNode) -> HopBreakdown {
    let target_busy = node.target_busy_ns().unwrap_or(0);
    let total = node.origin_latency_ns().unwrap_or(target_busy);

    let mut intervals = [0u64; Interval::COUNT];
    fn put(intervals: &mut [u64; Interval::COUNT], i: Interval, v: Option<u64>) {
        if let Some(v) = v {
            intervals[i.index()] = v;
        }
    }
    if let Some(t14) = &node.t14 {
        put(
            &mut intervals,
            Interval::OriginExecution,
            t14.samples.origin_execution_ns.or(Some(total)),
        );
        put(
            &mut intervals,
            Interval::InputSerialization,
            t14.samples.input_serialization_ns,
        );
        put(
            &mut intervals,
            Interval::OriginCompletionCallback,
            t14.samples.origin_cct_ns,
        );
        put(
            &mut intervals,
            Interval::TargetInternalRdma,
            t14.samples.internal_rdma_ns,
        );
    }
    if let Some(t8) = &node.t8 {
        put(
            &mut intervals,
            Interval::TargetUltExecution,
            t8.samples.target_execution_ns,
        );
        put(
            &mut intervals,
            Interval::TargetUltHandler,
            t8.samples.target_handler_ns,
        );
        put(
            &mut intervals,
            Interval::InputDeserialization,
            t8.samples.input_deserialization_ns,
        );
        put(
            &mut intervals,
            Interval::OutputSerialization,
            t8.samples.output_serialization_ns,
        );
        if intervals[Interval::TargetInternalRdma.index()] == 0 {
            put(
                &mut intervals,
                Interval::TargetInternalRdma,
                t8.samples.internal_rdma_ns,
            );
        }
    }
    // The queue wait is stamped on both t5 and t8; fall back to t5 when
    // the response-side event was lost.
    if intervals[Interval::TargetUltHandler.index()] == 0 {
        if let Some(t5) = &node.t5 {
            put(
                &mut intervals,
                Interval::TargetUltHandler,
                t5.samples.target_handler_ns,
            );
        }
    }
    if intervals[Interval::TargetUltExecution.index()] == 0 {
        intervals[Interval::TargetUltExecution.index()] = target_busy;
    }

    let queue_wait = intervals[Interval::TargetUltHandler.index()];
    let network = total.saturating_sub(queue_wait + target_busy);

    // Sub-RPC coverage: the children's origin windows are timestamped by
    // this hop's target entity, so they share one clock and can be
    // overlap-merged directly.
    let mut windows: Vec<(u64, u64)> = node
        .children
        .iter()
        .filter_map(|&c| {
            let ch = &tree.nodes[c];
            match (&ch.t1, &ch.t14) {
                (Some(a), Some(b)) if b.wall_ns >= a.wall_ns => Some((a.wall_ns, b.wall_ns)),
                _ => None,
            }
        })
        .collect();
    windows.sort_unstable();
    let mut children_ns = 0u64;
    let mut cursor = 0u64;
    for (s, e) in windows {
        let s = s.max(cursor);
        if e > s {
            children_ns += e - s;
            cursor = e;
        }
    }
    children_ns = children_ns.min(target_busy.max(total));
    let self_ns = target_busy.saturating_sub(children_ns);

    let accounted: u64 = Interval::accounted().map(|i| intervals[i.index()]).sum();
    let unaccounted = total.saturating_sub(accounted + network);

    HopBreakdown {
        span: node.span,
        callpath: node.callpath,
        hop: node.hop,
        origin: node.origin,
        target: node.target,
        total_ns: total,
        queue_wait_ns: queue_wait,
        target_busy_ns: target_busy,
        network_ns: network,
        children_ns,
        self_ns,
        intervals,
        unaccounted_ns: unaccounted,
    }
}

/// The critical path of one tree: the chain from the root span following,
/// at each hop, the child contributing the most latency (by its origin
/// window). Returns one [`HopBreakdown`] per hop, root first. Empty when
/// the tree has no single root.
pub fn critical_path(tree: &SpanTree) -> Vec<HopBreakdown> {
    let mut path = Vec::new();
    if tree.roots.len() != 1 {
        return path;
    }
    let mut idx = tree.roots[0];
    loop {
        let node = &tree.nodes[idx];
        path.push(breakdown(tree, node));
        let next = node
            .children
            .iter()
            .copied()
            .max_by_key(|&c| tree.nodes[c].origin_latency_ns().unwrap_or(0));
        match next {
            Some(c) if tree.nodes[c].origin_latency_ns().unwrap_or(0) > 0 => idx = c,
            _ => return path,
        }
    }
}

/// Aggregate statistics for one critical-path edge — a `(callpath,
/// origin, target)` triple — across many requests.
#[derive(Debug, Clone)]
pub struct EdgeStats {
    /// Callpath of the hop.
    pub callpath: crate::Callpath,
    /// Issuing entity.
    pub origin: Option<EntityId>,
    /// Serving entity.
    pub target: Option<EntityId>,
    /// Times this edge appeared on a critical path.
    pub count: usize,
    /// Summed hop latency over those appearances (ns).
    pub total_ns: u64,
    /// Summed network + delivery time (ns).
    pub network_ns: u64,
    /// Summed handler-pool queue wait (ns).
    pub queue_wait_ns: u64,
    /// Summed handler self time (busy minus sub-RPCs, ns).
    pub self_ns: u64,
}

/// The aggregate "top critical-path edges" report of a span graph.
#[derive(Debug, Clone, Default)]
pub struct CriticalPathReport {
    /// Requests (trees) analyzed.
    pub requests: usize,
    /// Requests that reconstructed into a single connected tree.
    pub connected: usize,
    /// Mean end-to-end latency over connected requests (ns).
    pub mean_end_to_end_ns: f64,
    /// Edges ordered by total critical-path time, heaviest first.
    pub edges: Vec<EdgeStats>,
}

/// Build the aggregate report: run [`critical_path`] over every tree and
/// fold the hops into per-edge totals.
pub fn aggregate(graph: &SpanGraph) -> CriticalPathReport {
    let mut edges: HashMap<(u64, u64, u64), EdgeStats> = HashMap::new();
    let mut connected = 0usize;
    let mut e2e_sum = 0u128;
    for tree in &graph.trees {
        if tree.is_connected() {
            connected += 1;
            e2e_sum += tree.end_to_end_ns().unwrap_or(0) as u128;
        }
        for hop in critical_path(tree) {
            let key = (
                hop.callpath.0,
                hop.origin.map(|e| e.0).unwrap_or(0),
                hop.target.map(|e| e.0).unwrap_or(0),
            );
            let entry = edges.entry(key).or_insert_with(|| EdgeStats {
                callpath: hop.callpath,
                origin: hop.origin,
                target: hop.target,
                count: 0,
                total_ns: 0,
                network_ns: 0,
                queue_wait_ns: 0,
                self_ns: 0,
            });
            entry.count += 1;
            entry.total_ns += hop.total_ns;
            entry.network_ns += hop.network_ns;
            entry.queue_wait_ns += hop.queue_wait_ns;
            entry.self_ns += hop.self_ns;
        }
    }
    let mut edges: Vec<EdgeStats> = edges.into_values().collect();
    edges.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then(a.callpath.0.cmp(&b.callpath.0))
    });
    CriticalPathReport {
        requests: graph.trees.len(),
        connected,
        mean_end_to_end_ns: if connected == 0 {
            0.0
        } else {
            e2e_sum as f64 / connected as f64
        },
        edges,
    }
}

fn name_of(e: Option<EntityId>) -> String {
    e.map(entity_name).unwrap_or_else(|| "?".into())
}

/// Render the aggregate report as a plain-text table.
pub fn render(report: &CriticalPathReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical-path report: {} requests, {} connected ({:.1}%), mean end-to-end {:.3} ms",
        report.requests,
        report.connected,
        if report.requests == 0 {
            100.0
        } else {
            report.connected as f64 * 100.0 / report.requests as f64
        },
        report.mean_end_to_end_ns / 1e6
    );
    let _ = writeln!(
        out,
        "{:<44} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "edge (callpath: origin->target)", "count", "total ms", "net ms", "queue ms", "self ms"
    );
    for e in &report.edges {
        let label = format!(
            "{}: {}->{}",
            e.callpath.display(),
            name_of(e.origin),
            name_of(e.target)
        );
        let _ = writeln!(
            out,
            "{:<44} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            label,
            e.count,
            e.total_ns as f64 / 1e6,
            e.network_ns as f64 / 1e6,
            e.queue_wait_ns as f64 / 1e6,
            e.self_ns as f64 / 1e6
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::span_graph::build_span_graph;
    use crate::entity::register_entity;
    use crate::trace::{EventSamples, TraceEvent, TraceEventKind};
    use crate::Callpath;

    #[allow(clippy::too_many_arguments)]
    fn ev(
        rid: u64,
        span: u64,
        parent: u64,
        hop: u32,
        order: u32,
        lamport: u64,
        wall_ns: u64,
        kind: TraceEventKind,
        entity: EntityId,
        cp: Callpath,
        samples: EventSamples,
    ) -> TraceEvent {
        TraceEvent {
            request_id: rid,
            order,
            span,
            parent_span: parent,
            hop,
            lamport,
            wall_ns,
            kind,
            entity,
            callpath: cp,
            samples,
        }
    }

    /// client --top--> svcA --sub--> svcB; svcA spends 1µs of its 4µs
    /// busy window inside the sub-RPC.
    fn sample_graph() -> SpanGraph {
        let client = register_entity("cp-client");
        let a = register_entity("cp-a");
        let b = register_entity("cp-b");
        let top = Callpath::root("cp_top");
        let sub = top.push("cp_sub");
        let wait = EventSamples {
            target_handler_ns: Some(500),
            ..Default::default()
        };
        let events = vec![
            ev(
                1,
                1,
                0,
                1,
                0,
                1,
                1_000,
                TraceEventKind::OriginForward,
                client,
                top,
                EventSamples::default(),
            ),
            ev(
                1,
                1,
                0,
                1,
                1,
                2,
                2_000,
                TraceEventKind::TargetUltStart,
                a,
                top,
                wait,
            ),
            ev(
                1,
                2,
                1,
                2,
                2,
                3,
                2_500,
                TraceEventKind::OriginForward,
                a,
                sub,
                EventSamples::default(),
            ),
            ev(
                1,
                2,
                1,
                2,
                3,
                4,
                2_800,
                TraceEventKind::TargetUltStart,
                b,
                sub,
                EventSamples::default(),
            ),
            ev(
                1,
                2,
                1,
                2,
                4,
                5,
                3_200,
                TraceEventKind::TargetRespond,
                b,
                sub,
                EventSamples::default(),
            ),
            ev(
                1,
                2,
                1,
                2,
                5,
                6,
                3_500,
                TraceEventKind::OriginComplete,
                a,
                sub,
                EventSamples::default(),
            ),
            ev(
                1,
                1,
                0,
                1,
                6,
                7,
                6_000,
                TraceEventKind::TargetRespond,
                a,
                top,
                EventSamples::default(),
            ),
            ev(
                1,
                1,
                0,
                1,
                7,
                8,
                7_000,
                TraceEventKind::OriginComplete,
                client,
                top,
                EventSamples::default(),
            ),
        ];
        build_span_graph(&events)
    }

    #[test]
    fn root_breakdown_attributes_network_children_self() {
        let graph = sample_graph();
        let tree = &graph.trees[0];
        let root = &tree.nodes[tree.roots[0]];
        let bd = breakdown(tree, root);
        assert_eq!(bd.total_ns, 6_000);
        assert_eq!(bd.target_busy_ns, 4_000);
        assert_eq!(bd.queue_wait_ns, 500);
        // network = 6000 − 500 − 4000
        assert_eq!(bd.network_ns, 1_500);
        // child origin window on svcA's clock: 2500→3500
        assert_eq!(bd.children_ns, 1_000);
        assert_eq!(bd.self_ns, 3_000);
    }

    #[test]
    fn critical_path_follows_heaviest_child() {
        let graph = sample_graph();
        let path = critical_path(&graph.trees[0]);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].hop, 1);
        assert_eq!(path[1].hop, 2);
        assert_eq!(path[1].total_ns, 1_000);
    }

    #[test]
    fn aggregate_counts_and_orders_edges() {
        let graph = sample_graph();
        let report = aggregate(&graph);
        assert_eq!(report.requests, 1);
        assert_eq!(report.connected, 1);
        assert_eq!(report.edges.len(), 2);
        // Heaviest first: the top edge carries 6µs.
        assert_eq!(report.edges[0].total_ns, 6_000);
        assert!((report.mean_end_to_end_ns - 6_000.0).abs() < 1e-9);
        let text = render(&report);
        assert!(text.contains("critical-path report"));
        assert!(text.contains("cp_top"));
    }

    #[test]
    fn unconnected_tree_yields_no_path() {
        let client = register_entity("cp-frag");
        let cp = Callpath::root("frag");
        // Two spans with unobserved distinct parents → two roots.
        let events = vec![
            ev(
                9,
                5,
                3,
                2,
                0,
                1,
                100,
                TraceEventKind::OriginForward,
                client,
                cp,
                EventSamples::default(),
            ),
            ev(
                9,
                6,
                4,
                2,
                1,
                2,
                200,
                TraceEventKind::OriginForward,
                client,
                cp,
                EventSamples::default(),
            ),
        ];
        let graph = build_span_graph(&events);
        assert!(!graph.trees[0].is_connected());
        assert!(critical_path(&graph.trees[0]).is_empty());
        let report = aggregate(&graph);
        assert_eq!(report.connected, 0);
    }

    #[test]
    fn breakdown_unaccounted_reflects_missing_samples() {
        let graph = sample_graph();
        let tree = &graph.trees[0];
        let root = &tree.nodes[tree.roots[0]];
        let bd = breakdown(tree, root);
        // accounted: queue 500 + exec 4000; network 1500 ⇒ unaccounted 0.
        assert_eq!(bd.unaccounted_ns, 0);
        assert_eq!(bd.interval(Interval::TargetUltExecution), 4_000);
    }
}
