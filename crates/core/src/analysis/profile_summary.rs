//! Global callpath profile summary (paper §V-A2, Figures 6, 9, 11).
//!
//! "The SYMBIOSYS profile summary script ingests all the profiles and
//! performs a global analysis to identify origin-target pairs for each
//! callpath. The script summarizes and sorts callpaths by cumulative
//! end-to-end request latency to identify the most dominant ones."

use crate::analysis::report::{fmt_ns, fmt_pct, Table};
use crate::callpath::Callpath;
use crate::entity::{entity_name, EntityId};
use crate::intervals::Interval;
use crate::profile::{ProfileRow, Side};
use std::collections::HashMap;

/// Globally merged statistics for one callpath.
#[derive(Debug, Clone)]
pub struct CallpathAggregate {
    /// The callpath.
    pub callpath: Callpath,
    /// Completed calls observed on the origin side.
    pub count_origin: u64,
    /// Completed calls observed on the target side.
    pub count_target: u64,
    /// Summed interval times across all entities (ns, by
    /// [`Interval::index`]).
    pub interval_ns: [u64; Interval::COUNT],
    /// Per-origin-entity call counts (the paper's call-count
    /// distributions for participating origin entities).
    pub origins: Vec<(EntityId, u64)>,
    /// Per-target-entity call counts.
    pub targets: Vec<(EntityId, u64)>,
}

impl CallpathAggregate {
    /// Cumulative end-to-end request latency (the sort key for
    /// dominance, = summed origin execution time).
    pub fn cumulative_latency_ns(&self) -> u64 {
        self.interval_ns[Interval::OriginExecution.index()]
    }

    /// One interval's cumulative time.
    pub fn interval(&self, i: Interval) -> u64 {
        self.interval_ns[i.index()]
    }

    /// Sum of all *accounted* intervals (everything except origin
    /// execution itself).
    pub fn accounted_ns(&self) -> u64 {
        Interval::accounted().map(|i| self.interval(i)).sum()
    }

    /// The unaccounted component of Figure 11: origin execution time not
    /// explained by any instrumented interval (network transit plus time
    /// spent in un-instrumented queues, chiefly the OFI event queue
    /// between t11 and t12).
    pub fn unaccounted_ns(&self) -> u64 {
        self.cumulative_latency_ns()
            .saturating_sub(self.accounted_ns())
    }

    /// Mean end-to-end latency per call.
    pub fn mean_latency_ns(&self) -> u64 {
        self.cumulative_latency_ns()
            .checked_div(self.count_origin)
            .unwrap_or(0)
    }
}

/// The merged, dominance-sorted profile summary.
#[derive(Debug, Clone, Default)]
pub struct ProfileSummary {
    /// Aggregates sorted by cumulative latency, descending.
    pub aggregates: Vec<CallpathAggregate>,
}

/// Merge profile rows gathered from every entity into a global summary.
pub fn summarize_profiles(rows: &[ProfileRow]) -> ProfileSummary {
    let mut by_path: HashMap<u64, CallpathAggregate> = HashMap::new();
    for row in rows {
        let agg = by_path
            .entry(row.callpath.0)
            .or_insert_with(|| CallpathAggregate {
                callpath: row.callpath,
                count_origin: 0,
                count_target: 0,
                interval_ns: [0; Interval::COUNT],
                origins: Vec::new(),
                targets: Vec::new(),
            });
        for (i, ns) in row.cumulative_ns.iter().enumerate() {
            agg.interval_ns[i] += ns;
        }
        match row.side {
            Side::Origin => {
                agg.count_origin += row.count;
                bump(&mut agg.origins, row.entity, row.count);
            }
            Side::Target => {
                agg.count_target += row.count;
                bump(&mut agg.targets, row.entity, row.count);
            }
        }
    }
    let mut aggregates: Vec<_> = by_path.into_values().collect();
    aggregates.sort_by_key(|a| std::cmp::Reverse(a.cumulative_latency_ns()));
    ProfileSummary { aggregates }
}

fn bump(list: &mut Vec<(EntityId, u64)>, id: EntityId, n: u64) {
    if let Some(e) = list.iter_mut().find(|(eid, _)| *eid == id) {
        e.1 += n;
    } else {
        list.push((id, n));
    }
}

impl ProfileSummary {
    /// The `k` most dominant callpaths.
    pub fn top(&self, k: usize) -> &[CallpathAggregate] {
        &self.aggregates[..k.min(self.aggregates.len())]
    }

    /// Find one callpath's aggregate.
    pub fn find(&self, cp: Callpath) -> Option<&CallpathAggregate> {
        self.aggregates.iter().find(|a| a.callpath == cp)
    }

    /// Total cumulative latency across all callpaths.
    pub fn total_latency_ns(&self) -> u64 {
        self.aggregates
            .iter()
            .map(|a| a.cumulative_latency_ns())
            .sum()
    }

    /// Render the Figure 6 style dominant-callpath table: the top `k`
    /// callpaths with the per-interval breakdown of each.
    pub fn render_dominant(&self, k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Top {} dominant callpaths by cumulative end-to-end latency\n\n",
            k.min(self.aggregates.len())
        ));
        for (rank, agg) in self.top(k).iter().enumerate() {
            let cum = agg.cumulative_latency_ns();
            out.push_str(&format!(
                "#{} {}\n    calls={}  cumulative={}  mean={}\n",
                rank + 1,
                agg.callpath.display(),
                agg.count_origin,
                fmt_ns(cum),
                fmt_ns(agg.mean_latency_ns()),
            ));
            let mut t = Table::new(["    interval", "cumulative", "share"]);
            for i in Interval::accounted() {
                let v = agg.interval(i);
                if v > 0 {
                    t.row([format!("    {}", i.label()), fmt_ns(v), fmt_pct(v, cum)]);
                }
            }
            t.row([
                "    (unaccounted)".to_string(),
                fmt_ns(agg.unaccounted_ns()),
                fmt_pct(agg.unaccounted_ns(), cum),
            ]);
            out.push_str(&t.render());
            if !agg.origins.is_empty() {
                out.push_str("    origins: ");
                out.push_str(&format_entities(&agg.origins));
                out.push('\n');
            }
            if !agg.targets.is_empty() {
                out.push_str("    targets: ");
                out.push_str(&format_entities(&agg.targets));
                out.push('\n');
            }
            out.push('\n');
        }
        out
    }
}

fn format_entities(list: &[(EntityId, u64)]) -> String {
    let mut sorted = list.to_vec();
    sorted.sort_by_key(|e| std::cmp::Reverse(e.1));
    sorted
        .iter()
        .take(8)
        .map(|(id, n)| format!("{}\u{d7}{}", entity_name(*id), n))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::register_entity;

    fn row(
        cp: Callpath,
        entity: EntityId,
        peer: EntityId,
        side: Side,
        count: u64,
        measurements: &[(Interval, u64)],
    ) -> ProfileRow {
        let mut cumulative_ns = [0u64; Interval::COUNT];
        for (i, ns) in measurements {
            cumulative_ns[i.index()] += ns;
        }
        ProfileRow {
            callpath: cp,
            entity,
            peer,
            side,
            count,
            cumulative_ns,
        }
    }

    #[test]
    fn dominance_sorted_by_cumulative_latency() {
        let o = register_entity("o");
        let t = register_entity("t");
        let hot = Callpath::root("hot_rpc");
        let cold = Callpath::root("cold_rpc");
        let rows = vec![
            row(
                cold,
                o,
                t,
                Side::Origin,
                10,
                &[(Interval::OriginExecution, 1_000)],
            ),
            row(
                hot,
                o,
                t,
                Side::Origin,
                10,
                &[(Interval::OriginExecution, 9_000)],
            ),
        ];
        let s = summarize_profiles(&rows);
        assert_eq!(s.aggregates[0].callpath, hot);
        assert_eq!(s.top(1).len(), 1);
        assert_eq!(s.total_latency_ns(), 10_000);
    }

    #[test]
    fn origin_and_target_rows_merge_into_one_aggregate() {
        let o = register_entity("o2");
        let t = register_entity("t2");
        let cp = Callpath::root("merged_rpc");
        let rows = vec![
            row(
                cp,
                o,
                t,
                Side::Origin,
                5,
                &[(Interval::OriginExecution, 500)],
            ),
            row(
                cp,
                t,
                o,
                Side::Target,
                5,
                &[(Interval::TargetUltExecution, 300)],
            ),
        ];
        let s = summarize_profiles(&rows);
        assert_eq!(s.aggregates.len(), 1);
        let agg = &s.aggregates[0];
        assert_eq!(agg.count_origin, 5);
        assert_eq!(agg.count_target, 5);
        assert_eq!(agg.interval(Interval::OriginExecution), 500);
        assert_eq!(agg.interval(Interval::TargetUltExecution), 300);
        assert_eq!(agg.unaccounted_ns(), 200);
    }

    #[test]
    fn entity_distributions_accumulate() {
        let o1 = register_entity("client-1");
        let o2 = register_entity("client-2");
        let t = register_entity("server-x");
        let cp = Callpath::root("dist_rpc");
        let rows = vec![
            row(cp, o1, t, Side::Origin, 3, &[]),
            row(cp, o2, t, Side::Origin, 7, &[]),
            row(cp, o1, t, Side::Origin, 2, &[]),
        ];
        let s = summarize_profiles(&rows);
        let agg = &s.aggregates[0];
        let mut origins = agg.origins.clone();
        origins.sort_by_key(|(_, n)| *n);
        assert_eq!(origins, vec![(o1, 5), (o2, 7)]);
    }

    #[test]
    fn unaccounted_saturates_at_zero() {
        let o = register_entity("o3");
        let t = register_entity("t3");
        let cp = Callpath::root("weird");
        // Accounted intervals exceed origin execution (possible with
        // asymmetric clock reads); unaccounted must clamp to zero.
        let rows = vec![row(
            cp,
            o,
            t,
            Side::Origin,
            1,
            &[
                (Interval::OriginExecution, 100),
                (Interval::InputSerialization, 150),
            ],
        )];
        let s = summarize_profiles(&rows);
        assert_eq!(s.aggregates[0].unaccounted_ns(), 0);
    }

    #[test]
    fn render_contains_callpath_and_breakdown() {
        let o = register_entity("render-origin");
        let t = register_entity("render-target");
        let cp = Callpath::root("render_rpc");
        let rows = vec![
            row(
                cp,
                o,
                t,
                Side::Origin,
                2,
                &[
                    (Interval::OriginExecution, 10_000),
                    (Interval::InputSerialization, 1_000),
                ],
            ),
            row(
                cp,
                t,
                o,
                Side::Target,
                2,
                &[(Interval::TargetUltExecution, 6_000)],
            ),
        ];
        let s = summarize_profiles(&rows);
        let text = s.render_dominant(5);
        assert!(text.contains("render_rpc"));
        assert!(text.contains("Input Serialization Time"));
        assert!(text.contains("(unaccounted)"));
        assert!(text.contains("render-origin"));
    }

    #[test]
    fn empty_rows_give_empty_summary() {
        let s = summarize_profiles(&[]);
        assert!(s.aggregates.is_empty());
        assert_eq!(s.total_latency_ns(), 0);
        assert!(s.render_dominant(3).contains("Top 0"));
    }

    #[test]
    fn mean_latency_per_call() {
        let o = register_entity("o4");
        let t = register_entity("t4");
        let cp = Callpath::root("mean_rpc");
        let rows = vec![row(
            cp,
            o,
            t,
            Side::Origin,
            4,
            &[(Interval::OriginExecution, 1_000)],
        )];
        let s = summarize_profiles(&rows);
        assert_eq!(s.aggregates[0].mean_latency_ns(), 250);
    }
}
