//! Causal span-graph reconstruction.
//!
//! Merges trace events drained (or flight-recorded) from every entity of
//! a composed deployment into per-root **span trees**: one node per RPC
//! attempt, linked through the span/parent-span ids the wire header
//! propagates (Dapper-style), so a Mobject write fanning into BAKE and
//! SDSKV sub-RPCs reconstructs as one connected multi-hop tree.
//!
//! ## Clock model
//!
//! Wall timestamps from different entities may be skewed, so the builder
//! never orders events from *different* entities by wall clock. Structure
//! comes from span ids alone; sibling order within a parent comes from
//! Lamport clocks (which only ever move forward along the causal chain);
//! and every duration exposed here is a difference between two events
//! recorded by the *same* entity (t14−t1 at the origin, t8−t5 at the
//! target), which skew cannot perturb.
//!
//! ## Fault tolerance
//!
//! The fault plane can duplicate messages (double-running a handler) and
//! drop them (losing t5/t8 pairs). Events are first deduplicated by
//! `(request id, order, entity, kind, span)` so duplication never
//! double-counts latency, and nodes with missing events are kept but
//! report [`SpanNode::is_complete`] = false rather than poisoning the
//! tree.

use crate::callpath::Callpath;
use crate::entity::EntityId;
use crate::trace::{TraceEvent, TraceEventKind};
use std::collections::{HashMap, HashSet};

/// Drop events that are exact causal duplicates: same request id, order,
/// entity, kind, and span. FaultPlan message duplication re-runs a
/// handler with an identical seeded order counter, so both copies of the
/// resulting t5/t8 events collide on this key; distinct retry attempts
/// survive because each attempt carries its own span id. The first
/// occurrence wins; the input order is otherwise preserved.
pub fn dedup_events(events: &[TraceEvent]) -> Vec<TraceEvent> {
    let mut seen: HashSet<(u64, u32, u64, u8, u64)> = HashSet::with_capacity(events.len());
    let kind_tag = |k: TraceEventKind| match k {
        TraceEventKind::OriginForward => 0u8,
        TraceEventKind::OriginComplete => 1,
        TraceEventKind::TargetUltStart => 2,
        TraceEventKind::TargetRespond => 3,
    };
    events
        .iter()
        .filter(|e| seen.insert((e.request_id, e.order, e.entity.0, kind_tag(e.kind), e.span)))
        .copied()
        .collect()
}

/// One span: a single RPC attempt, seen from both ends when both ends'
/// events were collected.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span id of this attempt.
    pub span: u64,
    /// Parent span id (0 at the composition root).
    pub parent_span: u64,
    /// Root request id of the trace this span belongs to.
    pub request_id: u64,
    /// Callpath ancestry at this hop.
    pub callpath: Callpath,
    /// Hop depth (1 = end client's direct RPC).
    pub hop: u32,
    /// Entity that issued the call (from t1/t14), if those events exist.
    pub origin: Option<EntityId>,
    /// Entity that served the call (from t5/t8), if those events exist.
    pub target: Option<EntityId>,
    /// t1 — origin forward.
    pub t1: Option<TraceEvent>,
    /// t5 — target handler ULT start.
    pub t5: Option<TraceEvent>,
    /// t8 — target respond.
    pub t8: Option<TraceEvent>,
    /// t14 — origin completion.
    pub t14: Option<TraceEvent>,
    /// Smallest Lamport value observed on this span's events; used to
    /// order siblings without trusting wall clocks across entities.
    pub min_lamport: u64,
    /// Child spans (indices into [`SpanTree::nodes`]), in Lamport order.
    pub children: Vec<usize>,
}

impl SpanNode {
    fn empty(span: u64, request_id: u64) -> SpanNode {
        SpanNode {
            span,
            parent_span: 0,
            request_id,
            callpath: Callpath::EMPTY,
            hop: 0,
            origin: None,
            target: None,
            t1: None,
            t5: None,
            t8: None,
            t14: None,
            min_lamport: u64::MAX,
            children: Vec::new(),
        }
    }

    /// Whether all four instrumentation points were collected.
    pub fn is_complete(&self) -> bool {
        self.t1.is_some() && self.t5.is_some() && self.t8.is_some() && self.t14.is_some()
    }

    /// t1→t14 latency on the origin's clock (skew-free), if both ends of
    /// the origin view exist.
    pub fn origin_latency_ns(&self) -> Option<u64> {
        match (&self.t1, &self.t14) {
            (Some(a), Some(b)) => Some(b.wall_ns.saturating_sub(a.wall_ns)),
            _ => None,
        }
    }

    /// t5→t8 busy time on the target's clock (skew-free), if the target
    /// view exists.
    pub fn target_busy_ns(&self) -> Option<u64> {
        match (&self.t5, &self.t8) {
            (Some(a), Some(b)) => Some(b.wall_ns.saturating_sub(a.wall_ns)),
            _ => None,
        }
    }

    /// Time outside the target handler: network transfer both ways plus
    /// handler-pool wait plus completion delivery. Computed as the
    /// difference of two single-clock durations, so it is immune to
    /// origin/target clock skew.
    pub fn network_and_wait_ns(&self) -> Option<u64> {
        match (self.origin_latency_ns(), self.target_busy_ns()) {
            (Some(o), Some(t)) => Some(o.saturating_sub(t)),
            _ => None,
        }
    }

    /// The retry-attempt annotation stamped on this span's t1/t14 (None
    /// for a first attempt).
    pub fn retry_attempt(&self) -> Option<u64> {
        self.t1
            .as_ref()
            .and_then(|e| e.samples.retry_attempt)
            .or_else(|| self.t14.as_ref().and_then(|e| e.samples.retry_attempt))
    }

    /// Whether the span's completion was a terminal timeout.
    pub fn timed_out(&self) -> bool {
        self.t14
            .as_ref()
            .and_then(|e| e.samples.timed_out)
            .unwrap_or(0)
            != 0
    }
}

/// All spans reconstructed for one root request id.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The root request (trace) id.
    pub request_id: u64,
    /// All nodes of the tree; `children` holds indices into this vec.
    pub nodes: Vec<SpanNode>,
    /// Root nodes: spans whose parent span is 0 or was never observed.
    /// A fully reconstructed trace has exactly one root.
    pub roots: Vec<usize>,
}

impl SpanTree {
    /// Whether every span links into a single connected tree.
    pub fn is_connected(&self) -> bool {
        self.roots.len() == 1
    }

    /// Deepest hop observed.
    pub fn max_hop(&self) -> u32 {
        self.nodes.iter().map(|n| n.hop).max().unwrap_or(0)
    }

    /// End-to-end latency from the (single) root span's origin view.
    pub fn end_to_end_ns(&self) -> Option<u64> {
        if self.roots.len() != 1 {
            return None;
        }
        self.nodes[self.roots[0]].origin_latency_ns()
    }

    /// Walk the tree depth-first from each root, calling `f(depth, node)`.
    pub fn walk(&self, mut f: impl FnMut(usize, &SpanNode)) {
        fn rec(tree: &SpanTree, idx: usize, depth: usize, f: &mut impl FnMut(usize, &SpanNode)) {
            let node = &tree.nodes[idx];
            f(depth, node);
            for &c in &node.children {
                rec(tree, c, depth + 1, f);
            }
        }
        for &r in &self.roots {
            rec(self, r, 0, &mut f);
        }
    }
}

/// The full reconstruction over a set of trace events.
#[derive(Debug, Clone, Default)]
pub struct SpanGraph {
    /// One tree per root request id, ordered by request id.
    pub trees: Vec<SpanTree>,
    /// Events carrying no span id (recorded before span propagation or
    /// with ids disabled); they cannot be linked and are skipped.
    pub unlinked_events: usize,
    /// Exact duplicates removed before reconstruction.
    pub duplicates_dropped: usize,
}

impl SpanGraph {
    /// Number of trees that reconstructed into a single connected tree.
    pub fn connected_trees(&self) -> usize {
        self.trees.iter().filter(|t| t.is_connected()).count()
    }

    /// Fraction of trees that are connected (1.0 when there are none).
    pub fn connected_fraction(&self) -> f64 {
        if self.trees.is_empty() {
            1.0
        } else {
            self.connected_trees() as f64 / self.trees.len() as f64
        }
    }

    /// Total span count across all trees.
    pub fn span_count(&self) -> usize {
        self.trees.iter().map(|t| t.nodes.len()).sum()
    }
}

/// Build the span graph from trace events merged across all entities.
/// The input needs no particular order; events are deduplicated, grouped
/// by request id, folded into spans by span id, and linked through parent
/// span ids. Siblings are ordered by Lamport clock, never by cross-entity
/// wall time.
pub fn build_span_graph(events: &[TraceEvent]) -> SpanGraph {
    let deduped = dedup_events(events);
    let duplicates_dropped = events.len() - deduped.len();

    let mut unlinked = 0usize;
    // request_id -> span -> node
    let mut requests: HashMap<u64, HashMap<u64, SpanNode>> = HashMap::new();
    for e in &deduped {
        if e.span == 0 {
            unlinked += 1;
            continue;
        }
        let node = requests
            .entry(e.request_id)
            .or_default()
            .entry(e.span)
            .or_insert_with(|| SpanNode::empty(e.span, e.request_id));
        if e.parent_span != 0 {
            node.parent_span = e.parent_span;
        }
        if !e.callpath.is_empty() {
            node.callpath = e.callpath;
        }
        node.hop = node.hop.max(e.hop);
        node.min_lamport = node.min_lamport.min(e.lamport);
        // Keep the first event of each kind (dedup already removed exact
        // duplicates; a same-kind collision here means conflicting data,
        // where first-wins keeps reconstruction deterministic).
        match e.kind {
            TraceEventKind::OriginForward => {
                node.origin.get_or_insert(e.entity);
                if node.t1.is_none() {
                    node.t1 = Some(*e);
                }
            }
            TraceEventKind::OriginComplete => {
                node.origin.get_or_insert(e.entity);
                if node.t14.is_none() {
                    node.t14 = Some(*e);
                }
            }
            TraceEventKind::TargetUltStart => {
                node.target.get_or_insert(e.entity);
                if node.t5.is_none() {
                    node.t5 = Some(*e);
                }
            }
            TraceEventKind::TargetRespond => {
                node.target.get_or_insert(e.entity);
                if node.t8.is_none() {
                    node.t8 = Some(*e);
                }
            }
        }
    }

    let mut trees: Vec<SpanTree> = requests
        .into_iter()
        .map(|(request_id, spans)| {
            let mut nodes: Vec<SpanNode> = spans.into_values().collect();
            // Deterministic node order: by Lamport, then span id.
            nodes.sort_by_key(|n| (n.min_lamport, n.span));
            let index: HashMap<u64, usize> =
                nodes.iter().enumerate().map(|(i, n)| (n.span, i)).collect();
            let mut roots = Vec::new();
            let mut links: Vec<(usize, usize)> = Vec::new();
            for (i, n) in nodes.iter().enumerate() {
                match index.get(&n.parent_span) {
                    Some(&p) if p != i => links.push((p, i)),
                    // parent_span == 0, unobserved parent, or (corrupt)
                    // self-reference: treat as a root.
                    _ => roots.push(i),
                }
            }
            // Appending in ascending node index keeps every child list in
            // (min_lamport, span) order — the Lamport sibling order.
            for (p, c) in links {
                nodes[p].children.push(c);
            }
            SpanTree {
                request_id,
                nodes,
                roots,
            }
        })
        .collect();
    trees.sort_by_key(|t| t.request_id);
    SpanGraph {
        trees,
        unlinked_events: unlinked,
        duplicates_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::register_entity;
    use crate::trace::EventSamples;

    #[allow(clippy::too_many_arguments)]
    fn ev(
        request_id: u64,
        span: u64,
        parent_span: u64,
        hop: u32,
        order: u32,
        lamport: u64,
        wall_ns: u64,
        kind: TraceEventKind,
        entity: EntityId,
        callpath: Callpath,
    ) -> TraceEvent {
        TraceEvent {
            request_id,
            order,
            span,
            parent_span,
            hop,
            lamport,
            wall_ns,
            kind,
            entity,
            callpath,
            samples: EventSamples::default(),
        }
    }

    /// One two-hop request: client -> svcA -> svcB, with `skew_b` added
    /// to every timestamp svcB records (simulating clock offset).
    fn two_hop_events(rid: u64, skew_b: i64) -> Vec<TraceEvent> {
        let client = register_entity("sg-client");
        let a = register_entity("sg-a");
        let b = register_entity("sg-b");
        let top = Callpath::root("top");
        let sub = top.push("sub");
        let w = |t: u64, skew: i64| (t as i64 + skew) as u64;
        vec![
            ev(
                rid,
                1,
                0,
                1,
                0,
                1,
                1_000,
                TraceEventKind::OriginForward,
                client,
                top,
            ),
            ev(
                rid,
                1,
                0,
                1,
                1,
                2,
                2_000,
                TraceEventKind::TargetUltStart,
                a,
                top,
            ),
            ev(
                rid,
                2,
                1,
                2,
                2,
                3,
                2_500,
                TraceEventKind::OriginForward,
                a,
                sub,
            ),
            ev(
                rid,
                2,
                1,
                2,
                3,
                4,
                w(3_000, skew_b),
                TraceEventKind::TargetUltStart,
                b,
                sub,
            ),
            ev(
                rid,
                2,
                1,
                2,
                4,
                5,
                w(4_000, skew_b),
                TraceEventKind::TargetRespond,
                b,
                sub,
            ),
            ev(
                rid,
                2,
                1,
                2,
                5,
                6,
                5_500,
                TraceEventKind::OriginComplete,
                a,
                sub,
            ),
            ev(
                rid,
                1,
                0,
                1,
                6,
                7,
                6_000,
                TraceEventKind::TargetRespond,
                a,
                top,
            ),
            ev(
                rid,
                1,
                0,
                1,
                7,
                8,
                7_000,
                TraceEventKind::OriginComplete,
                client,
                top,
            ),
        ]
    }

    #[test]
    fn two_hop_trace_builds_one_connected_tree() {
        let graph = build_span_graph(&two_hop_events(42, 0));
        assert_eq!(graph.trees.len(), 1);
        let tree = &graph.trees[0];
        assert!(tree.is_connected());
        assert_eq!(tree.nodes.len(), 2);
        assert_eq!(tree.max_hop(), 2);
        let root = &tree.nodes[tree.roots[0]];
        assert_eq!(root.span, 1);
        assert_eq!(root.children.len(), 1);
        assert!(root.is_complete());
        assert_eq!(root.origin_latency_ns(), Some(6_000));
        assert_eq!(root.target_busy_ns(), Some(4_000));
        assert_eq!(root.network_and_wait_ns(), Some(2_000));
        let child = &tree.nodes[root.children[0]];
        assert_eq!(child.span, 2);
        assert_eq!(child.hop, 2);
        assert_eq!(child.origin_latency_ns(), Some(3_000));
        assert_eq!(child.target_busy_ns(), Some(1_000));
    }

    #[test]
    fn clock_skew_does_not_break_structure_or_durations() {
        // Offset svcB's clock by +50ms and -1ms: structure, completeness,
        // and every single-clock duration must be identical.
        for skew in [50_000_000i64, -1_000_000] {
            let graph = build_span_graph(&two_hop_events(7, skew));
            let tree = &graph.trees[0];
            assert!(tree.is_connected(), "skew {skew} broke connectivity");
            let root = &tree.nodes[tree.roots[0]];
            assert!(root.is_complete());
            assert_eq!(root.origin_latency_ns(), Some(6_000));
            let child = &tree.nodes[root.children[0]];
            assert_eq!(child.origin_latency_ns(), Some(3_000));
            // The skewed entity's own busy time is also unaffected.
            assert_eq!(child.target_busy_ns(), Some(1_000));
        }
    }

    #[test]
    fn duplicate_events_are_dropped_once() {
        let mut events = two_hop_events(9, 0);
        // Duplicate the whole sub-RPC target view (FaultPlan duplicate
        // delivery re-runs the handler with the same seeded order).
        let dups: Vec<TraceEvent> = events
            .iter()
            .filter(|e| {
                e.span == 2
                    && matches!(
                        e.kind,
                        TraceEventKind::TargetUltStart | TraceEventKind::TargetRespond
                    )
            })
            .copied()
            .collect();
        events.extend(dups);
        let graph = build_span_graph(&events);
        assert_eq!(graph.duplicates_dropped, 2);
        let tree = &graph.trees[0];
        assert_eq!(tree.nodes.len(), 2);
        let child = tree.nodes.iter().find(|n| n.span == 2).unwrap();
        assert_eq!(child.target_busy_ns(), Some(1_000));
    }

    #[test]
    fn missing_parent_span_becomes_extra_root() {
        // Drop every span-1 event: span 2 has an unobserved parent and
        // must surface as a root rather than disappearing.
        let events: Vec<TraceEvent> = two_hop_events(11, 0)
            .into_iter()
            .filter(|e| e.span != 1)
            .collect();
        let graph = build_span_graph(&events);
        let tree = &graph.trees[0];
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.roots.len(), 1);
        assert!(tree.is_connected());
        assert_eq!(tree.nodes[0].span, 2);
    }

    #[test]
    fn span_zero_events_are_counted_not_linked() {
        let client = register_entity("sg-legacy");
        let cp = Callpath::root("legacy");
        let events = vec![ev(
            1,
            0,
            0,
            0,
            0,
            1,
            100,
            TraceEventKind::OriginForward,
            client,
            cp,
        )];
        let graph = build_span_graph(&events);
        assert_eq!(graph.unlinked_events, 1);
        assert!(graph.trees.is_empty());
    }

    #[test]
    fn retry_attempts_are_sibling_spans_under_logical_call() {
        let client = register_entity("sg-retry");
        let cp = Callpath::root("flaky");
        // Logical span 10 (attempt 0, timed out) and retry span 11
        // parented under 10.
        let mut e1 = ev(
            5,
            10,
            0,
            1,
            0,
            1,
            1_000,
            TraceEventKind::OriginForward,
            client,
            cp,
        );
        e1.samples = EventSamples::default();
        let mut retry_t1 = ev(
            5,
            11,
            10,
            1,
            0,
            3,
            9_000,
            TraceEventKind::OriginForward,
            client,
            cp,
        );
        retry_t1.samples.retry_attempt = Some(1);
        let mut retry_t14 = ev(
            5,
            11,
            10,
            1,
            0,
            4,
            12_000,
            TraceEventKind::OriginComplete,
            client,
            cp,
        );
        retry_t14.samples.retry_attempt = Some(1);
        let graph = build_span_graph(&[e1, retry_t1, retry_t14]);
        let tree = &graph.trees[0];
        assert!(tree.is_connected());
        let root = &tree.nodes[tree.roots[0]];
        assert_eq!(root.span, 10);
        assert_eq!(root.children.len(), 1);
        let retry = &tree.nodes[root.children[0]];
        assert_eq!(retry.retry_attempt(), Some(1));
        assert_eq!(retry.origin_latency_ns(), Some(3_000));
    }

    #[test]
    fn dedup_keeps_distinct_retry_attempts() {
        let client = register_entity("sg-dd");
        let cp = Callpath::root("dd");
        // Two attempts share (request, order, entity, kind) but differ in
        // span — both must survive.
        let a = ev(
            3,
            20,
            0,
            1,
            0,
            1,
            100,
            TraceEventKind::OriginForward,
            client,
            cp,
        );
        let b = ev(
            3,
            21,
            20,
            1,
            0,
            2,
            200,
            TraceEventKind::OriginForward,
            client,
            cp,
        );
        assert_eq!(dedup_events(&[a, b, a]).len(), 2);
    }

    #[test]
    fn walk_visits_depth_first_with_depths() {
        let graph = build_span_graph(&two_hop_events(13, 0));
        let mut seen = Vec::new();
        graph.trees[0].walk(|depth, node| seen.push((depth, node.span)));
        assert_eq!(seen, vec![(0, 1), (1, 2)]);
    }
}
