//! Plain-text report rendering: aligned tables and duration formatting,
//! shared by all figure/table harnesses.

/// Format nanoseconds human-readably (ns / µs / ms / s).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} \u{b5}s", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Format a ratio as a percentage with one decimal.
pub fn fmt_pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "  n/a".to_string()
    } else {
        format!("{:5.1}%", part as f64 * 100.0 / whole as f64)
    }
}

/// A simple text table with aligned columns.
#[derive(Debug, Default, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded; longer rows
    /// are truncated.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing spaces for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(900), "900 ns");
        assert_eq!(fmt_ns(1_500), "1.50 \u{b5}s");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }

    #[test]
    fn fmt_pct_handles_zero_denominator() {
        assert_eq!(fmt_pct(5, 0), "  n/a");
        assert_eq!(fmt_pct(1, 4), " 25.0%");
    }

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // The "value" column starts at the same offset in all data rows.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-a"]);
        t.row(["x", "y", "z-dropped"]);
        let s = t.render();
        assert!(!s.contains("z-dropped"));
        assert_eq!(t.len(), 2);
    }
}
