//! Configuration advisor: policy rules that map SYMBIOSYS saturation
//! signals to tuning actions.
//!
//! The paper closes (§VII) envisioning "policy-driven mechanisms whereby
//! rules governing response to poor performance behavior can be
//! formulated and applied based on performance monitoring". This module
//! implements that step for the four §V-C pathologies:
//!
//! | signal | rule | paper case |
//! |---|---|---|
//! | target handler time share high | add execution streams | C1→C2 |
//! | bursty completions + waiting work on a serial backend | fewer databases (or a concurrent backend) | C2→C3 |
//! | `num_ofi_events_read` pinned at the threshold | raise `OFI_max_events` | C5→C6 |
//! | large unaccounted share with a shared progress ULT | dedicate a progress stream | C6→C7 |

use crate::analysis::profile_summary::CallpathAggregate;
use crate::analysis::trace_summary::{OfiBacklogReport, SerializationReport};
use crate::intervals::Interval;

/// Facts about the configuration under analysis that the profile data
/// alone cannot reveal.
#[derive(Debug, Clone, Copy)]
pub struct DeploymentFacts {
    /// Handler execution streams per server.
    pub threads_per_server: usize,
    /// Databases per server.
    pub databases_per_server: usize,
    /// Whether the database backend supports concurrent insertions.
    pub backend_concurrent_writes: bool,
    /// The client `OFI_max_events` setting.
    pub ofi_max_events: usize,
    /// Whether clients run a dedicated progress stream.
    pub dedicated_client_progress: bool,
}

/// A tuning action the advisor can recommend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Increase the server's handler execution streams.
    AddExecutionStreams,
    /// Reduce the number of databases per server (or switch to a backend
    /// with concurrent insertions).
    ReduceDatabases,
    /// Raise the client's `OFI_max_events` threshold.
    RaiseOfiMaxEvents,
    /// Give the client progress loop a dedicated execution stream.
    DedicateProgressStream,
    /// Increase the client-side key-value batch size.
    IncreaseBatchSize,
}

impl Action {
    /// Short imperative label.
    pub fn label(self) -> &'static str {
        match self {
            Action::AddExecutionStreams => "add execution streams",
            Action::ReduceDatabases => "reduce databases (or use a concurrent backend)",
            Action::RaiseOfiMaxEvents => "raise OFI_max_events",
            Action::DedicateProgressStream => "dedicate a client progress stream",
            Action::IncreaseBatchSize => "increase the client batch size",
        }
    }
}

/// One recommendation with its evidence.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// What to change.
    pub action: Action,
    /// Severity in (0, 1]: how strongly the signal exceeded its policy
    /// threshold.
    pub severity: f64,
    /// Human-readable evidence.
    pub rationale: String,
}

/// Policy thresholds. Defaults follow the magnitudes the paper treats as
/// actionable.
#[derive(Debug, Clone, Copy)]
pub struct Policy {
    /// Handler-time share of end-to-end latency above which the service
    /// counts as ES-starved (C1's 26.6% was actionable).
    pub handler_share_threshold: f64,
    /// Mean waiting-work (blocked + runnable ULTs) per sample above which
    /// bursts count as serialized, scaled by handler streams.
    pub waiting_per_stream_threshold: f64,
    /// `num_ofi_events_read` breach fraction above which the completion
    /// queue counts as backed up.
    pub ofi_breach_threshold: f64,
    /// Unaccounted share of end-to-end latency above which the progress
    /// path counts as starved.
    pub unaccounted_share_threshold: f64,
    /// Mean per-call latency (ns) under which RPCs count as "tiny" and
    /// batching is recommended.
    pub tiny_rpc_mean_ns: u64,
    /// Calls per callpath above which tiny RPCs are considered a flood.
    pub tiny_rpc_flood_calls: u64,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            handler_share_threshold: 0.25,
            waiting_per_stream_threshold: 3.0,
            ofi_breach_threshold: 0.25,
            unaccounted_share_threshold: 0.30,
            tiny_rpc_mean_ns: 300_000,
            tiny_rpc_flood_calls: 1_000,
        }
    }
}

/// Evaluate the policy rules for one dominant callpath.
pub fn advise(
    aggregate: &CallpathAggregate,
    serialization: &SerializationReport,
    ofi: &OfiBacklogReport,
    facts: &DeploymentFacts,
    policy: &Policy,
) -> Vec<Recommendation> {
    let mut out = Vec::new();
    let total = aggregate.cumulative_latency_ns().max(1);

    // Rule 1 (C1→C2): handler-pool starvation.
    let handler_share = aggregate.interval(Interval::TargetUltHandler) as f64 / total as f64;
    if handler_share > policy.handler_share_threshold {
        out.push(Recommendation {
            action: Action::AddExecutionStreams,
            severity: (handler_share / policy.handler_share_threshold - 1.0).min(1.0),
            rationale: format!(
                "target ULT handler time is {:.1}% of end-to-end latency with {} \
                 execution streams per server (threshold {:.0}%)",
                handler_share * 100.0,
                facts.threads_per_server,
                policy.handler_share_threshold * 100.0
            ),
        });
    }

    // Rule 2 (C2→C3): backend write serialization.
    let waiting_per_stream = serialization.mean_waiting / facts.threads_per_server.max(1) as f64;
    if !facts.backend_concurrent_writes && waiting_per_stream > policy.waiting_per_stream_threshold
    {
        out.push(Recommendation {
            action: Action::ReduceDatabases,
            severity: (waiting_per_stream / policy.waiting_per_stream_threshold - 1.0).min(1.0),
            rationale: format!(
                "mean waiting work is {:.1} ULTs ({:.1} per stream) on a serial backend \
                 with {} databases per server; bursts complete with a mean spread of \
                 {:.2} ms",
                serialization.mean_waiting,
                waiting_per_stream,
                facts.databases_per_server,
                serialization.mean_spread_ns as f64 / 1e6
            ),
        });
    }

    // Rule 3 (C5→C6): OFI completion-queue backlog.
    if ofi.breach_fraction() > policy.ofi_breach_threshold {
        out.push(Recommendation {
            action: Action::RaiseOfiMaxEvents,
            severity: (ofi.breach_fraction() / policy.ofi_breach_threshold - 1.0).min(1.0),
            rationale: format!(
                "{:.1}% of progress reads hit the OFI_max_events threshold of {}",
                ofi.breach_fraction() * 100.0,
                facts.ofi_max_events
            ),
        });
    }

    // Rule 4 (C6→C7): progress-path starvation.
    let unaccounted_share = aggregate.unaccounted_ns() as f64 / total as f64;
    if !facts.dedicated_client_progress && unaccounted_share > policy.unaccounted_share_threshold {
        out.push(Recommendation {
            action: Action::DedicateProgressStream,
            severity: (unaccounted_share / policy.unaccounted_share_threshold - 1.0).min(1.0),
            rationale: format!(
                "{:.1}% of end-to-end latency is unaccounted (uninstrumented queues, \
                 chiefly the OFI event queue) while the progress ULT shares the main \
                 execution stream",
                unaccounted_share * 100.0
            ),
        });
    }

    // Rule 5 (C4 vs C5): a flood of tiny RPCs.
    if aggregate.count_origin > policy.tiny_rpc_flood_calls
        && aggregate.mean_latency_ns() < policy.tiny_rpc_mean_ns
    {
        out.push(Recommendation {
            action: Action::IncreaseBatchSize,
            severity: (aggregate.count_origin as f64 / policy.tiny_rpc_flood_calls as f64 - 1.0)
                .min(1.0),
            rationale: format!(
                "{} calls with a mean latency of only {:.0} \u{b5}s suggest per-RPC \
                 overhead dominates; batch the payload",
                aggregate.count_origin,
                aggregate.mean_latency_ns() as f64 / 1e3
            ),
        });
    }

    out.sort_by(|a, b| b.severity.partial_cmp(&a.severity).unwrap());
    out
}

/// Render recommendations as a report block.
pub fn render(recommendations: &[Recommendation]) -> String {
    if recommendations.is_empty() {
        return "no saturation signals above policy thresholds\n".to_string();
    }
    let mut out = String::new();
    for (i, r) in recommendations.iter().enumerate() {
        out.push_str(&format!(
            "{}. [severity {:.2}] {}\n     evidence: {}\n",
            i + 1,
            r.severity,
            r.action.label(),
            r.rationale
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callpath::Callpath;
    use crate::entity::register_entity;
    use crate::profile::{ProfileRow, Side};

    fn facts() -> DeploymentFacts {
        DeploymentFacts {
            threads_per_server: 5,
            databases_per_server: 32,
            backend_concurrent_writes: false,
            ofi_max_events: 16,
            dedicated_client_progress: false,
        }
    }

    fn aggregate(intervals: &[(Interval, u64)], count: u64) -> CallpathAggregate {
        let me = register_entity("adv-o");
        let peer = register_entity("adv-t");
        let mut cumulative_ns = [0u64; Interval::COUNT];
        for (i, ns) in intervals {
            cumulative_ns[i.index()] = *ns;
        }
        let row = ProfileRow {
            callpath: Callpath::root("adv_rpc"),
            entity: me,
            peer,
            side: Side::Origin,
            count,
            cumulative_ns,
        };
        crate::analysis::summarize_profiles(&[row]).aggregates[0].clone()
    }

    #[test]
    fn starved_handlers_trigger_more_streams() {
        let agg = aggregate(
            &[
                (Interval::OriginExecution, 1_000_000),
                (Interval::TargetUltHandler, 400_000),
            ],
            10,
        );
        let recs = advise(
            &agg,
            &SerializationReport::default(),
            &OfiBacklogReport::default(),
            &facts(),
            &Policy::default(),
        );
        assert!(recs.iter().any(|r| r.action == Action::AddExecutionStreams));
    }

    #[test]
    fn serialized_backend_triggers_fewer_databases() {
        let agg = aggregate(&[(Interval::OriginExecution, 1_000_000)], 10);
        let ser = SerializationReport {
            mean_waiting: 100.0,
            peak_waiting: 400,
            ..Default::default()
        };
        let recs = advise(
            &agg,
            &ser,
            &OfiBacklogReport::default(),
            &facts(),
            &Policy::default(),
        );
        assert!(recs.iter().any(|r| r.action == Action::ReduceDatabases));
        // With a concurrent backend the rule must not fire.
        let mut f = facts();
        f.backend_concurrent_writes = true;
        let recs = advise(
            &agg,
            &ser,
            &OfiBacklogReport::default(),
            &f,
            &Policy::default(),
        );
        assert!(!recs.iter().any(|r| r.action == Action::ReduceDatabases));
    }

    #[test]
    fn ofi_backlog_triggers_threshold_raise() {
        let agg = aggregate(&[(Interval::OriginExecution, 1_000_000)], 10);
        let ofi = OfiBacklogReport {
            samples: (0..10).map(|i| (i, 16)).collect(),
            threshold: 16,
            breaches: 8,
        };
        let recs = advise(
            &agg,
            &SerializationReport::default(),
            &ofi,
            &facts(),
            &Policy::default(),
        );
        assert!(recs.iter().any(|r| r.action == Action::RaiseOfiMaxEvents));
    }

    #[test]
    fn unaccounted_share_triggers_dedicated_progress_only_when_shared() {
        let agg = aggregate(&[(Interval::OriginExecution, 1_000_000)], 10);
        // Everything unaccounted.
        let recs = advise(
            &agg,
            &SerializationReport::default(),
            &OfiBacklogReport::default(),
            &facts(),
            &Policy::default(),
        );
        assert!(recs
            .iter()
            .any(|r| r.action == Action::DedicateProgressStream));
        let mut f = facts();
        f.dedicated_client_progress = true;
        let recs = advise(
            &agg,
            &SerializationReport::default(),
            &OfiBacklogReport::default(),
            &f,
            &Policy::default(),
        );
        assert!(!recs
            .iter()
            .any(|r| r.action == Action::DedicateProgressStream));
    }

    #[test]
    fn tiny_rpc_flood_triggers_batching() {
        let agg = aggregate(&[(Interval::OriginExecution, 200_000_000)], 2_000);
        // mean = 100 µs < 300 µs threshold, 2000 calls > 1000.
        let recs = advise(
            &agg,
            &SerializationReport::default(),
            &OfiBacklogReport::default(),
            &facts(),
            &Policy::default(),
        );
        assert!(recs.iter().any(|r| r.action == Action::IncreaseBatchSize));
    }

    #[test]
    fn healthy_profile_yields_no_recommendations() {
        let agg = aggregate(
            &[
                (Interval::OriginExecution, 1_000_000),
                (Interval::TargetUltExecution, 900_000),
                (Interval::TargetUltHandler, 50_000),
            ],
            10,
        );
        let recs = advise(
            &agg,
            &SerializationReport::default(),
            &OfiBacklogReport::default(),
            &facts(),
            &Policy::default(),
        );
        assert!(recs.is_empty(), "unexpected: {recs:?}");
        assert!(render(&recs).contains("no saturation signals"));
    }

    #[test]
    fn recommendations_sorted_by_severity_and_rendered() {
        let agg = aggregate(
            &[
                (Interval::OriginExecution, 1_000_000),
                (Interval::TargetUltHandler, 900_000),
            ],
            10,
        );
        let ofi = OfiBacklogReport {
            samples: (0..10).map(|i| (i, 16)).collect(),
            threshold: 16,
            breaches: 3,
        };
        let recs = advise(
            &agg,
            &SerializationReport::default(),
            &ofi,
            &facts(),
            &Policy::default(),
        );
        assert!(recs.len() >= 2);
        assert!(recs.windows(2).all(|w| w[0].severity >= w[1].severity));
        let text = render(&recs);
        assert!(text.contains("severity"));
        assert!(text.contains("evidence"));
    }
}
