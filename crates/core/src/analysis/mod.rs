//! Post-mortem analysis — the reproduction of the paper's "profile
//! summary", "trace summary", and "system statistics summary" scripts
//! (§V, Table V).
//!
//! * [`profile_summary`] — merges per-entity profile rows into global
//!   per-callpath aggregates, identifies dominant callpaths (Figure 6),
//!   and decomposes latency into the Table III intervals plus the
//!   *unaccounted* remainder (Figure 11).
//! * [`trace_summary`] — time-series extraction over trace events,
//!   latency distributions, and the two saturation detectors used in the
//!   case studies: backend write serialization (Figure 10) and OFI
//!   completion-queue backlog (Figure 12).
//! * [`system_summary`] — per-entity OS/tasking resource summaries.
//! * [`report`] — plain-text table rendering shared by the harnesses.
//! * [`span_graph`] — causal span-tree reconstruction across composed
//!   services from the wire-propagated span ids (Dapper-style).
//! * [`critical_path`](mod@critical_path) — per-hop latency attribution over span trees and
//!   the aggregate "top critical-path edges" report (Figure 7 analysis).
//! * [`chrome`] — Chrome `trace_event` JSON export of span trees for
//!   `chrome://tracing` / Perfetto.
//! * [`online`] — bounded-memory *streaming* reduction of the same
//!   questions (per-hop attribution, top-K callpaths, latency quantiles)
//!   plus live anomaly detectors, run in-situ by the margo monitor ULT.

pub mod advisor;
pub mod chrome;
pub mod critical_path;
pub mod online;
pub mod profile_summary;
pub mod report;
pub mod span_graph;
pub mod system_summary;
pub mod trace_summary;

pub use advisor::{advise, Action, DeploymentFacts, Policy, Recommendation};
pub use chrome::{to_chrome_json, to_chrome_json_with_actions};
pub use critical_path::{
    aggregate as aggregate_critical_paths, critical_path, CriticalPathReport, EdgeStats,
    HopBreakdown,
};
pub use online::{ActionRecord, Anomaly, DetectorConfig, OnlineAnalyzer, OnlineConfig};
pub use profile_summary::{summarize_profiles, CallpathAggregate, ProfileSummary};
pub use span_graph::{build_span_graph, dedup_events, SpanGraph, SpanNode, SpanTree};
pub use system_summary::{summarize_system, SystemSummary};
pub use trace_summary::{
    detect_ofi_backlog, detect_write_serialization, latency_stats, timeseries, LatencyStats,
    OfiBacklogReport, SerializationReport,
};
