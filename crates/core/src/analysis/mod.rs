//! Post-mortem analysis — the reproduction of the paper's "profile
//! summary", "trace summary", and "system statistics summary" scripts
//! (§V, Table V).
//!
//! * [`profile_summary`] — merges per-entity profile rows into global
//!   per-callpath aggregates, identifies dominant callpaths (Figure 6),
//!   and decomposes latency into the Table III intervals plus the
//!   *unaccounted* remainder (Figure 11).
//! * [`trace_summary`] — time-series extraction over trace events,
//!   latency distributions, and the two saturation detectors used in the
//!   case studies: backend write serialization (Figure 10) and OFI
//!   completion-queue backlog (Figure 12).
//! * [`system_summary`] — per-entity OS/tasking resource summaries.
//! * [`report`] — plain-text table rendering shared by the harnesses.

pub mod advisor;
pub mod profile_summary;
pub mod report;
pub mod system_summary;
pub mod trace_summary;

pub use advisor::{advise, Action, DeploymentFacts, Policy, Recommendation};
pub use profile_summary::{summarize_profiles, CallpathAggregate, ProfileSummary};
pub use system_summary::{summarize_system, SystemSummary};
pub use trace_summary::{
    detect_ofi_backlog, detect_write_serialization, latency_stats, timeseries, LatencyStats,
    OfiBacklogReport, SerializationReport,
};
