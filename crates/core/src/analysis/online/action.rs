//! Control-action records: the reaction half of detection→reaction.
//!
//! When the adaptive control loop acts on an anomaly (resizes pool lanes,
//! changes a pipeline window, toggles load shedding), it emits one
//! [`ActionRecord`]. Records are persisted to the flight ring as
//! `"kind":"action"` JSONL lines (codec in `telemetry::jsonl`, exact
//! round-trip like the trace records) and rendered by `symbi-analyze`
//! into the Chrome export as instant events, so the causal chain
//! *detected at t, reacted at t+ε* is visible on the same timeline as the
//! requests it affected.

/// One applied control action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionRecord {
    /// Per-entity action sequence number (1-based).
    pub seq: u64,
    /// Wall time (ns since the process trace epoch) the action applied.
    pub wall_ns: u64,
    /// Entity whose control loop acted.
    pub entity: String,
    /// Detector that triggered the action (e.g. `pool_backlog`).
    pub detector: String,
    /// What the detector fired on (pool name, link, …).
    pub subject: String,
    /// The action taken: `resize_lanes`, `set_pipeline_depth`, `shed_on`,
    /// `shed_off`.
    pub action: String,
    /// The setting before the action (lanes, depth, 0/1 for shed).
    pub from: u64,
    /// The setting after the action.
    pub to: u64,
    /// The observed value that crossed the threshold.
    pub value: u64,
    /// The threshold it crossed.
    pub threshold: u64,
}
