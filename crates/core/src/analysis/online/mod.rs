//! Online streaming analysis: bounded-memory in-situ reduction of the
//! trace stream plus live anomaly detection (ROADMAP item 5).
//!
//! The offline pipeline of §13 ships every span to `symbi-analyze` after
//! the run; at the scales the exascale-monitoring literature targets that
//! is not viable. This module runs *inside the margo monitor ULT* and
//! reduces the trace ring as it is drained:
//!
//! * [`attribution`] — sliding-window per-hop critical-path attribution
//!   (the Table III split, incrementally, in a bounded open-span table),
//! * [`topk`] — Space-Saving top-K slow callpaths (weight = latency),
//! * [`histogram`] — log-bucketed streaming latency histograms with
//!   p50/p99/p999 estimates,
//! * [`detector`] — threshold/EWMA detectors for progress-ULT starvation,
//!   pool backlog, and pipeline-window saturation,
//! * [`action`] — the control-action records the adaptive loop emits when
//!   it reacts.
//!
//! Everything the analyzer holds is **bounded**: the open-span table is
//! capacity-capped with FIFO eviction, the top-K summary holds K entries,
//! the histograms are fixed arrays, and the hop/detector maps are keyed
//! by hop depth (≤ 4) and pool name. Memory is therefore O(ring), never
//! O(requests). All aggregates export through the Prometheus plane under
//! `symbi_online_*`.

pub mod action;
pub mod attribution;
pub mod detector;
pub mod histogram;
pub mod topk;

pub use action::ActionRecord;
pub use attribution::{CompletedSpan, HopClassStats, OnlineAttribution};
pub use detector::{Anomaly, DetectorConfig, Detectors, Ewma};
pub use histogram::StreamingHistogram;
pub use topk::{SpaceSaving, TopEntry};

use crate::telemetry::{MetricPoint, MetricSnapshot};
use crate::trace::TraceEvent;
use crate::Callpath;
use std::collections::BTreeMap;

/// Configuration of one online analyzer.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Open-span table capacity (the sliding attribution window).
    pub max_open_spans: usize,
    /// Tracked slow-callpath count (Space-Saving K).
    pub topk: usize,
    /// Detector thresholds.
    pub detectors: DetectorConfig,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            max_open_spans: 4096,
            topk: 16,
            detectors: DetectorConfig::default(),
        }
    }
}

/// The in-situ streaming analyzer: feed it drained trace events and
/// telemetry snapshots; read back aggregates, quantiles, and anomalies.
#[derive(Debug)]
pub struct OnlineAnalyzer {
    config: OnlineConfig,
    attribution: OnlineAttribution,
    /// Per-hop-class latency histograms (hop depth ≤ 4).
    latency: BTreeMap<u32, StreamingHistogram>,
    topk: SpaceSaving,
    detectors: Detectors,
    events_ingested: u64,
}

impl OnlineAnalyzer {
    /// New analyzer.
    pub fn new(config: OnlineConfig) -> Self {
        OnlineAnalyzer {
            config,
            attribution: OnlineAttribution::new(config.max_open_spans),
            latency: BTreeMap::new(),
            topk: SpaceSaving::new(config.topk),
            detectors: Detectors::new(config.detectors),
            events_ingested: 0,
        }
    }

    /// Reduce one batch of drained trace events into the aggregates.
    pub fn ingest(&mut self, events: &[TraceEvent]) {
        self.events_ingested += events.len() as u64;
        for ev in events {
            if let Some(done) = self.attribution.ingest(ev) {
                if done.complete {
                    self.latency
                        .entry(done.hop)
                        .or_default()
                        .observe(done.total_ns);
                    self.topk.offer(done.callpath.0, done.total_ns);
                }
            }
        }
    }

    /// Evaluate the detector bank against one telemetry snapshot.
    pub fn observe_snapshot(&mut self, snap: &MetricSnapshot) -> Vec<Anomaly> {
        self.detectors.observe(snap)
    }

    /// Per-hop-class attribution aggregates.
    pub fn hop_stats(&self) -> &BTreeMap<u32, HopClassStats> {
        self.attribution.hop_stats()
    }

    /// Estimated latency quantile for one hop class (ns).
    pub fn quantile(&self, hop: u32, q: f64) -> Option<u64> {
        self.latency.get(&hop)?.quantile(q)
    }

    /// Top-K slow callpaths, heaviest first, with display names.
    pub fn top_callpaths(&self) -> Vec<(String, TopEntry)> {
        self.topk
            .top()
            .into_iter()
            .map(|e| (Callpath(e.key).display(), e))
            .collect()
    }

    /// Force-flush the open-span window (end of run).
    pub fn flush(&mut self) {
        self.attribution.flush();
    }

    /// Spans currently held in the attribution window (the memory bound).
    pub fn open_spans(&self) -> usize {
        self.attribution.open_spans()
    }

    /// Total trace events reduced so far.
    pub fn events_ingested(&self) -> u64 {
        self.events_ingested
    }

    /// The configuration this analyzer was built with.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Contribute the `symbi_online_*` metric families. Registered as a
    /// telemetry source by the margo plane, so every aggregate is
    /// scrapeable live.
    pub fn collect(&self, out: &mut Vec<MetricPoint>) {
        out.push(MetricPoint::counter(
            "symbi_online_events_ingested_total",
            self.events_ingested,
        ));
        out.push(MetricPoint::gauge(
            "symbi_online_open_spans",
            self.attribution.open_spans() as f64,
        ));
        out.push(MetricPoint::gauge(
            "symbi_online_open_span_capacity",
            self.attribution.capacity() as f64,
        ));
        out.push(MetricPoint::counter(
            "symbi_online_spans_completed_total",
            self.attribution.completed(),
        ));
        out.push(MetricPoint::counter(
            "symbi_online_spans_evicted_total",
            self.attribution.evicted(),
        ));
        out.push(MetricPoint::counter(
            "symbi_online_spans_unlinked_total",
            self.attribution.unlinked(),
        ));
        for (hop, stats) in self.attribution.hop_stats() {
            let hop_label = hop.to_string();
            let counter = |name: &str, v: u64| {
                MetricPoint::counter(name, v).with_label("hop", hop_label.clone())
            };
            out.push(counter("symbi_online_hop_requests_total", stats.requests));
            out.push(counter("symbi_online_hop_queue_ns_total", stats.queue_ns));
            out.push(counter("symbi_online_hop_busy_ns_total", stats.busy_ns));
            out.push(counter(
                "symbi_online_hop_network_ns_total",
                stats.network_ns,
            ));
            out.push(counter("symbi_online_hop_total_ns_total", stats.total_ns));
        }
        // Exported as a *native* Prometheus histogram only — no
        // precomputed quantile gauges. Quantile gauges cannot be
        // aggregated across processes; `_bucket{le=...}` series sum
        // exactly, which is what the federated collector endpoint does
        // to produce the `symbi_cluster_*` view.
        for (hop, hist) in &self.latency {
            out.push(
                MetricPoint::histogram("symbi_online_latency_ns", hist.to_metric())
                    .with_label("hop", hop.to_string()),
            );
        }
        for (rank, (name, entry)) in self.top_callpaths().into_iter().enumerate() {
            out.push(
                MetricPoint::gauge("symbi_online_topk_weight_ns", entry.weight as f64)
                    .with_label("callpath", name)
                    .with_label("rank", rank.to_string()),
            );
        }
        for (detector, count) in self.detectors.fired_total() {
            out.push(
                MetricPoint::counter("symbi_online_anomalies_total", count)
                    .with_label("detector", detector.to_string()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::register_entity;
    use crate::telemetry::MetricValue;
    use crate::trace::{EventSamples, TraceEventKind};

    fn span_events(span: u64, base_ns: u64, total_ns: u64, cp: Callpath) -> Vec<TraceEvent> {
        let entity = register_entity("online-mod");
        let mk = |kind, wall_ns, handler| TraceEvent {
            request_id: span,
            order: 0,
            span,
            parent_span: 0,
            hop: 1,
            lamport: 0,
            wall_ns,
            kind,
            entity,
            callpath: cp,
            samples: EventSamples {
                target_handler_ns: handler,
                ..Default::default()
            },
        };
        vec![
            mk(TraceEventKind::OriginForward, base_ns, None),
            mk(TraceEventKind::TargetUltStart, base_ns + 100, Some(50)),
            mk(
                TraceEventKind::TargetRespond,
                base_ns + total_ns - 100,
                Some(50),
            ),
            mk(TraceEventKind::OriginComplete, base_ns + total_ns, None),
        ]
    }

    #[test]
    fn end_to_end_reduction_exports_metrics() {
        let slow = Callpath::root("online_slow_rpc");
        let fast = Callpath::root("online_fast_rpc");
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        for i in 0..50u64 {
            a.ingest(&span_events(1_000 + i, i * 10_000, 20_000, fast));
        }
        a.ingest(&span_events(5_000, 600_000, 5_000_000, slow));

        assert_eq!(a.hop_stats()[&1].requests, 51);
        assert!(a.quantile(1, 0.5).unwrap() <= 32_768);
        assert!(a.quantile(1, 0.999).unwrap() >= 2_000_000);
        let top = a.top_callpaths();
        assert_eq!(top[0].1.key, slow.0, "slow callpath dominates by weight");
        assert!(top[0].0.contains("online_slow_rpc"));

        let mut points = Vec::new();
        a.collect(&mut points);
        let names: Vec<&str> = points.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"symbi_online_events_ingested_total"));
        assert!(names.contains(&"symbi_online_hop_total_ns_total"));
        assert!(names.contains(&"symbi_online_latency_ns"));
        assert!(names.contains(&"symbi_online_topk_weight_ns"));
        let hist = points
            .iter()
            .find(|p| p.name == "symbi_online_latency_ns")
            .unwrap();
        assert!(matches!(&hist.value, MetricValue::Histogram(h) if h.count == 51));
    }

    #[test]
    fn analyzer_memory_is_ring_bounded() {
        let mut a = OnlineAnalyzer::new(OnlineConfig {
            max_open_spans: 64,
            topk: 4,
            ..Default::default()
        });
        // 100k half-open spans (no completions): the window must not grow.
        let entity = register_entity("online-bound");
        let cp = Callpath::root("bound_rpc");
        for i in 0..100_000u64 {
            a.ingest(&[TraceEvent {
                request_id: i,
                order: 0,
                span: i + 1,
                parent_span: 0,
                hop: 1,
                lamport: 0,
                wall_ns: i,
                kind: TraceEventKind::OriginForward,
                entity,
                callpath: cp,
                samples: EventSamples::default(),
            }]);
        }
        assert!(a.open_spans() <= 64);
        assert_eq!(a.events_ingested(), 100_000);
    }

    #[test]
    fn snapshot_observation_counts_anomalies() {
        use crate::telemetry::SnapshotPoint;
        let mut a = OnlineAnalyzer::new(OnlineConfig {
            detectors: DetectorConfig {
                consecutive: 1,
                backlog_runnable: 2.0,
                ewma_alpha: 1.0,
                ..Default::default()
            },
            ..Default::default()
        });
        let snap = MetricSnapshot {
            seq: 0,
            wall_ns: 0,
            entity: None,
            points: vec![SnapshotPoint {
                point: MetricPoint::gauge("symbi_pool_runnable_ults", 50.0)
                    .with_label("pool", "primary"),
                delta: None,
            }],
        };
        let fired = a.observe_snapshot(&snap);
        assert_eq!(fired.len(), 1);
        let mut points = Vec::new();
        a.collect(&mut points);
        assert!(points
            .iter()
            .any(|p| p.name == "symbi_online_anomalies_total"));
    }
}
