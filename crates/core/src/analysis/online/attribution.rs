//! Incremental per-hop critical-path attribution over the trace stream.
//!
//! The offline pipeline (analysis::span_graph + analysis::critical_path)
//! reconstructs full Lamport-ordered span trees; at millions of requests
//! that cannot run in-situ. This module applies the same Table III
//! interval arithmetic *incrementally*: spans accumulate their four
//! timeline points (t1/t5/t8/t14) in a bounded open-span table keyed by
//! span id, and the moment a span has all four points it is folded into
//! per-hop-class aggregates and dropped. The per-span numbers mirror
//! [`crate::analysis::critical_path::breakdown`] exactly:
//!
//! * `total`   = t14 − t1 (target busy when the origin view is missing),
//! * `busy`    = t8 − t5,
//! * `queue`   = the `target_handler_ns` sample (t8 preferred, t5 fallback),
//! * `network` = total − queue − busy (saturating),
//!
//! so the online per-hop sums agree with the offline analyzer on the same
//! event stream (the PR's parity test pins this within 5%).
//!
//! ## Memory bound
//!
//! The open-span table holds at most `capacity` spans; when full, the
//! oldest open span is force-flushed with whatever points it has
//! (counted in `evicted`). Everything else — the per-hop aggregate map
//! (hop depth ≤ 4 by the callpath encoding) — is constant-size, so the
//! ingest path is O(ring) regardless of request count.

use crate::trace::{TraceEvent, TraceEventKind};
use crate::Callpath;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Accumulated attribution for one hop class (hop depth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopClassStats {
    /// Spans folded in with all four timeline points.
    pub requests: u64,
    /// Summed t4→t5 handler-pool queue wait (ns).
    pub queue_ns: u64,
    /// Summed t5→t8 target busy time (ns).
    pub busy_ns: u64,
    /// Summed network + delivery time (ns).
    pub network_ns: u64,
    /// Summed full hop latency (ns).
    pub total_ns: u64,
}

/// One span's partially-observed timeline.
#[derive(Debug, Clone, Copy, Default)]
struct OpenSpan {
    t1: Option<u64>,
    t5: Option<u64>,
    t8: Option<u64>,
    t14: Option<u64>,
    /// `target_handler_ns` sample; t8's value wins over t5's.
    handler_ns: Option<u64>,
    handler_from_t8: bool,
    callpath: Callpath,
    hop: u32,
}

impl OpenSpan {
    fn is_complete(&self) -> bool {
        self.t1.is_some() && self.t5.is_some() && self.t8.is_some() && self.t14.is_some()
    }
}

/// One finalized span, as delivered to the caller's sinks.
#[derive(Debug, Clone, Copy)]
pub struct CompletedSpan {
    /// Callpath at the hop.
    pub callpath: Callpath,
    /// Hop depth (1 = the end client's direct RPC).
    pub hop: u32,
    /// Full hop latency (ns).
    pub total_ns: u64,
    /// Whether all four timeline points were observed.
    pub complete: bool,
}

/// The bounded incremental attribution engine.
#[derive(Debug)]
pub struct OnlineAttribution {
    open: HashMap<u64, OpenSpan>,
    /// Insertion order for eviction (span ids; stale ids are skipped).
    fifo: VecDeque<u64>,
    capacity: usize,
    hops: BTreeMap<u32, HopClassStats>,
    completed: u64,
    evicted: u64,
    unlinked: u64,
}

impl OnlineAttribution {
    /// New engine holding at most `capacity` open spans (min 16).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        OnlineAttribution {
            open: HashMap::with_capacity(capacity),
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            hops: BTreeMap::new(),
            completed: 0,
            evicted: 0,
            unlinked: 0,
        }
    }

    /// Ingest one trace event; returns the finalized span if this event
    /// completed one.
    pub fn ingest(&mut self, ev: &TraceEvent) -> Option<CompletedSpan> {
        if ev.span == 0 {
            // Pre-span-propagation legacy events cannot be correlated.
            self.unlinked += 1;
            return None;
        }
        if !self.open.contains_key(&ev.span) {
            if self.open.len() >= self.capacity {
                self.evict_oldest();
            }
            self.fifo.push_back(ev.span);
        }
        let slot = self.open.entry(ev.span).or_default();
        if slot.callpath == Callpath::EMPTY {
            slot.callpath = ev.callpath;
        }
        if slot.hop == 0 {
            slot.hop = ev.hop;
        }
        match ev.kind {
            TraceEventKind::OriginForward => slot.t1 = slot.t1.or(Some(ev.wall_ns)),
            TraceEventKind::OriginComplete => slot.t14 = slot.t14.or(Some(ev.wall_ns)),
            TraceEventKind::TargetUltStart => {
                slot.t5 = slot.t5.or(Some(ev.wall_ns));
                if !slot.handler_from_t8 && slot.handler_ns.is_none() {
                    slot.handler_ns = ev.samples.target_handler_ns;
                }
            }
            TraceEventKind::TargetRespond => {
                slot.t8 = slot.t8.or(Some(ev.wall_ns));
                if let Some(h) = ev.samples.target_handler_ns {
                    slot.handler_ns = Some(h);
                    slot.handler_from_t8 = true;
                }
            }
        }
        if slot.is_complete() {
            let span = *slot;
            self.open.remove(&ev.span);
            Some(self.finalize(span, true))
        } else {
            None
        }
    }

    fn evict_oldest(&mut self) {
        while let Some(id) = self.fifo.pop_front() {
            if let Some(span) = self.open.remove(&id) {
                self.evicted += 1;
                self.finalize(span, false);
                return;
            }
        }
    }

    /// Fold one span into the per-hop aggregates, mirroring
    /// `critical_path::breakdown`.
    fn finalize(&mut self, span: OpenSpan, complete: bool) -> CompletedSpan {
        let busy = match (span.t5, span.t8) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => 0,
        };
        let total = match (span.t1, span.t14) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => busy,
        };
        let queue = span.handler_ns.unwrap_or(0);
        let network = total.saturating_sub(queue + busy);
        if complete {
            self.completed += 1;
            let agg = self.hops.entry(span.hop).or_default();
            agg.requests += 1;
            agg.queue_ns += queue;
            agg.busy_ns += busy;
            agg.network_ns += network;
            agg.total_ns += total;
        }
        CompletedSpan {
            callpath: span.callpath,
            hop: span.hop,
            total_ns: total,
            complete,
        }
    }

    /// Force-flush every open span (end of run / end of window). Partial
    /// spans are dropped from the aggregates but counted as evicted.
    pub fn flush(&mut self) {
        let spans: Vec<OpenSpan> = self.open.drain().map(|(_, s)| s).collect();
        self.fifo.clear();
        for span in spans {
            self.evicted += 1;
            self.finalize(span, false);
        }
    }

    /// Per-hop-class aggregates, keyed by hop depth.
    pub fn hop_stats(&self) -> &BTreeMap<u32, HopClassStats> {
        &self.hops
    }

    /// Spans currently open (≤ capacity — the memory bound).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// The configured open-span capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans finalized with all four timeline points.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Spans force-flushed before completing (window slid past them).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events with span id 0 that could not be correlated.
    pub fn unlinked(&self) -> u64 {
        self.unlinked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::register_entity;
    use crate::trace::EventSamples;

    fn ev(span: u64, kind: TraceEventKind, wall_ns: u64, handler: Option<u64>) -> TraceEvent {
        TraceEvent {
            request_id: span,
            order: 0,
            span,
            parent_span: 0,
            hop: 1,
            lamport: 0,
            wall_ns,
            kind,
            entity: register_entity("online-attr"),
            callpath: Callpath::root("attr_rpc"),
            samples: EventSamples {
                target_handler_ns: handler,
                ..Default::default()
            },
        }
    }

    #[test]
    fn completes_span_and_mirrors_breakdown_arithmetic() {
        let mut a = OnlineAttribution::new(64);
        assert!(a
            .ingest(&ev(1, TraceEventKind::OriginForward, 1_000, None))
            .is_none());
        assert!(a
            .ingest(&ev(1, TraceEventKind::TargetUltStart, 3_000, Some(500)))
            .is_none());
        assert!(a
            .ingest(&ev(1, TraceEventKind::TargetRespond, 8_000, Some(700)))
            .is_none());
        let done = a
            .ingest(&ev(1, TraceEventKind::OriginComplete, 11_000, None))
            .expect("span complete");
        assert!(done.complete);
        assert_eq!(done.total_ns, 10_000);
        let hop = a.hop_stats()[&1];
        assert_eq!(hop.requests, 1);
        assert_eq!(hop.busy_ns, 5_000); // t8 - t5
        assert_eq!(hop.queue_ns, 700); // t8's handler sample wins
        assert_eq!(hop.network_ns, 10_000 - 700 - 5_000);
        assert_eq!(hop.total_ns, 10_000);
        assert_eq!(a.open_spans(), 0);
    }

    #[test]
    fn out_of_order_cross_ring_arrival_still_completes() {
        // A multi-ring replay can deliver the origin's t14 before the
        // target's t5/t8; completion must be order-independent.
        let mut a = OnlineAttribution::new(64);
        a.ingest(&ev(2, TraceEventKind::OriginForward, 1_000, None));
        a.ingest(&ev(2, TraceEventKind::OriginComplete, 9_000, None));
        a.ingest(&ev(2, TraceEventKind::TargetUltStart, 2_000, Some(400)));
        let done = a
            .ingest(&ev(2, TraceEventKind::TargetRespond, 6_000, None))
            .expect("complete on last point");
        assert!(done.complete);
        let hop = a.hop_stats()[&1];
        assert_eq!(hop.queue_ns, 400, "t5 fallback used");
        assert_eq!(hop.busy_ns, 4_000);
    }

    #[test]
    fn memory_stays_bounded_under_never_completing_spans() {
        let mut a = OnlineAttribution::new(16);
        for i in 0..10_000u64 {
            a.ingest(&ev(i + 1, TraceEventKind::OriginForward, i, None));
            assert!(a.open_spans() <= 16, "open spans exceeded capacity");
        }
        assert!(a.evicted() > 0);
        assert_eq!(a.completed(), 0);
    }

    #[test]
    fn span_zero_is_counted_unlinked() {
        let mut a = OnlineAttribution::new(16);
        a.ingest(&ev(0, TraceEventKind::OriginForward, 1, None));
        assert_eq!(a.unlinked(), 1);
        assert_eq!(a.open_spans(), 0);
    }

    #[test]
    fn flush_drops_partials_without_polluting_aggregates() {
        let mut a = OnlineAttribution::new(16);
        a.ingest(&ev(5, TraceEventKind::OriginForward, 1_000, None));
        a.flush();
        assert_eq!(a.open_spans(), 0);
        assert_eq!(a.evicted(), 1);
        assert!(a.hop_stats().is_empty());
    }
}
