//! Log-linear streaming latency histograms (constant memory).
//!
//! The online analyzer cannot keep raw latencies — at millions of
//! requests per window that would defeat the bounded-memory goal — so it
//! folds every observation into a fixed array of buckets spanning
//! 2^10 ns (≈1 µs) to 2^36 ns (≈69 s). Buckets are **log-linear**: each
//! power-of-two octave is split into 2^SUB_BITS equal-width sub-buckets,
//! so quantile queries (which return the upper bound of the bucket
//! containing the target rank) carry a relative error bounded by the
//! sub-bucket width — 2^-SUB_BITS (25%) of the octave base instead of
//! the full 2× of pure power-of-two buckets. That keeps reported
//! p50/p99/p999 from snapping to exact powers of two while the whole
//! histogram still fits in ~0.9 KiB.

use crate::telemetry::HistogramValue;

/// log2 of the first bucket's upper bound (2^10 ns ≈ 1 µs).
const SHIFT_MIN: u32 = 10;
/// log2 of the last finite bucket's upper bound (2^36 ns ≈ 68.7 s).
const SHIFT_MAX: u32 = 36;
/// log2 of the sub-buckets per octave (4 linear steps per power of two).
const SUB_BITS: u32 = 2;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Octaves between the first bucket and the last finite bound.
const OCTAVES: usize = (SHIFT_MAX - SHIFT_MIN) as usize;
/// Number of finite buckets (one base bucket + the sub-bucketed
/// octaves); one overflow bucket rides behind them.
const FINITE: usize = 1 + OCTAVES * SUBS;

/// A fixed-size log-linear histogram of nanosecond durations.
#[derive(Debug, Clone)]
pub struct StreamingHistogram {
    /// Per-bucket (non-cumulative) counts; `counts[FINITE]` is overflow.
    counts: [u64; FINITE + 1],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        StreamingHistogram {
            counts: [0; FINITE + 1],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v <= 1 << SHIFT_MIN {
            return 0;
        }
        if v > 1 << SHIFT_MAX {
            return FINITE;
        }
        // v lies in octave (2^s, 2^(s+1)]; split it into SUBS equal
        // linear steps of 2^(s - SUB_BITS) ns each.
        let s = 63 - (v - 1).leading_zeros();
        let k = ((v - 1 - (1u64 << s)) >> (s - SUB_BITS)) as usize;
        1 + (s - SHIFT_MIN) as usize * SUBS + k
    }

    /// Inclusive upper bound (ns) of finite bucket `i`.
    fn index_upper_bound(i: usize) -> u64 {
        if i == 0 {
            return 1 << SHIFT_MIN;
        }
        let i = i - 1;
        let s = SHIFT_MIN + (i / SUBS) as u32;
        let k = (i % SUBS) as u64;
        (1u64 << s) + (k + 1) * (1u64 << (s - SUB_BITS))
    }

    /// Fold one duration into the histogram.
    pub fn observe(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed durations (ns).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest observed duration (ns).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Estimated `q`-quantile in ns (`0.0 < q <= 1.0`), or `None` when
    /// empty. Returns the upper bound of the bucket holding the target
    /// rank; the overflow bucket reports the exact observed maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i >= FINITE {
                    self.max_ns
                } else {
                    Self::index_upper_bound(i)
                });
            }
        }
        Some(self.max_ns)
    }

    /// Upper bound (ns) of the finite bucket `ns` falls into, or
    /// `u64::MAX` for the overflow bucket. This is the value
    /// [`StreamingHistogram::quantile`] would report for a rank landing
    /// on `ns`, so accuracy tests can compare an estimate against the
    /// bucket of the exact percentile.
    pub fn bucket_upper_bound(ns: u64) -> u64 {
        let i = Self::bucket_index(ns);
        if i >= FINITE {
            u64::MAX
        } else {
            Self::index_upper_bound(i)
        }
    }

    /// `(exclusive lower, inclusive upper)` bounds (ns) of the bucket
    /// `ns` falls into; the overflow bucket reports `u64::MAX` as its
    /// upper bound. Accuracy tests use this to reason about adjacent
    /// buckets without hard-coding the bucket geometry.
    pub fn bucket_bounds(ns: u64) -> (u64, u64) {
        let i = Self::bucket_index(ns);
        let lower = if i == 0 {
            0
        } else if i >= FINITE {
            1 << SHIFT_MAX
        } else {
            Self::index_upper_bound(i - 1)
        };
        let upper = if i >= FINITE {
            u64::MAX
        } else {
            Self::index_upper_bound(i)
        };
        (lower, upper)
    }

    /// Observations in the bucket that `ns` falls into. Lets a consumer
    /// judge whether a bucket is genuine tail mass or the bulk of the
    /// distribution (e.g. the tail sampler widens its slow threshold by
    /// one sub-bucket only when the quantile's own bucket is sparse).
    pub fn bucket_count(&self, ns: u64) -> u64 {
        self.counts[Self::bucket_index(ns)]
    }

    /// Fold another histogram into this one — per-worker histograms in a
    /// load generator merge into one distribution without re-observing.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Render as a telemetry [`HistogramValue`] (cumulative counts, the
    /// layout the Prometheus exposition expects).
    pub fn to_metric(&self) -> HistogramValue {
        let mut bounds = Vec::with_capacity(FINITE);
        for i in 0..FINITE {
            bounds.push(Self::index_upper_bound(i) as f64);
        }
        let mut counts = Vec::with_capacity(FINITE + 1);
        let mut cum = 0u64;
        for c in &self.counts {
            cum += c;
            counts.push(cum);
        }
        HistogramValue {
            bounds,
            counts,
            sum: self.sum_ns as f64,
            count: self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(StreamingHistogram::bucket_index(0), 0);
        assert_eq!(StreamingHistogram::bucket_index(1024), 0);
        assert_eq!(StreamingHistogram::bucket_index(1025), 1);
        // 2048 is the top of the first octave: its last sub-bucket.
        assert_eq!(StreamingHistogram::bucket_index(2048), SUBS);
        assert_eq!(StreamingHistogram::bucket_index(1 << SHIFT_MAX), FINITE - 1);
        assert_eq!(
            StreamingHistogram::bucket_index((1 << SHIFT_MAX) + 1),
            FINITE
        );
        assert_eq!(StreamingHistogram::bucket_index(u64::MAX), FINITE);
    }

    #[test]
    fn sub_bucket_bounds_are_contiguous_and_monotone() {
        let mut prev = 0u64;
        for i in 0..FINITE {
            let ub = StreamingHistogram::index_upper_bound(i);
            assert!(ub > prev, "bucket {i}: {ub} <= {prev}");
            // Every value in (prev, ub] must map back to bucket i.
            assert_eq!(StreamingHistogram::bucket_index(prev + 1), i);
            assert_eq!(StreamingHistogram::bucket_index(ub), i);
            prev = ub;
        }
        assert_eq!(prev, 1 << SHIFT_MAX);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = StreamingHistogram::new();
        // 99 fast (≈2 µs) + 1 slow (≈1 ms): p50 small, p99+ large.
        for _ in 0..99 {
            h.observe(2_000);
        }
        h.observe(1_000_000);
        let p50 = h.quantile(0.5).unwrap();
        let p999 = h.quantile(0.999).unwrap();
        assert!(p50 <= 2_048, "p50 {p50}");
        assert!(p999 >= 1_000_000, "p999 {p999}");
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn quantile_relative_error_is_bounded_by_sub_bucket_width() {
        // Pure power-of-two buckets would report p50 here as 65536 (2x
        // off from the exact 50_000); log-linear sub-buckets must land
        // within 25% of the octave base.
        let mut h = StreamingHistogram::new();
        for v in [10_000u64, 50_000, 250_000, 1_250_000] {
            for _ in 0..25 {
                h.observe(v);
            }
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= 50_000, "p50 {p50} underestimates");
        assert!(p50 - 50_000 <= 50_000 / 4 + 1, "p50 {p50} off by >25%");
    }

    #[test]
    fn quantiles_do_not_snap_to_powers_of_two() {
        let mut h = StreamingHistogram::new();
        for _ in 0..1_000 {
            h.observe(3_000_000);
        }
        let p50 = h.quantile(0.5).unwrap();
        // Old power-of-two buckets reported 4194304 (= 2^22, 40% high).
        assert!((3_000_000..4_194_304).contains(&p50), "p50 {p50}");
        assert!(p50 - 3_000_000 <= 3_000_000 / 4, "p50 {p50} off by >25%");
    }

    #[test]
    fn memory_stays_bounded() {
        // The sharper resolution must not blow the constant-memory
        // budget: the whole histogram stays under 1 KiB.
        assert!(std::mem::size_of::<StreamingHistogram>() <= 1024);
    }

    #[test]
    fn metric_rendering_is_cumulative() {
        let mut h = StreamingHistogram::new();
        h.observe(500);
        h.observe(3_000);
        h.observe(u64::MAX); // overflow bucket
        let m = h.to_metric();
        assert_eq!(m.bounds.len(), FINITE);
        assert_eq!(m.counts.len(), FINITE + 1);
        assert_eq!(*m.counts.last().unwrap(), 3, "cumulative total");
        assert_eq!(m.count, 3);
        assert!(m.counts.windows(2).all(|w| w[0] <= w[1]));
        assert!(m.bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(StreamingHistogram::new().quantile(0.99), None);
    }

    #[test]
    fn bucket_count_reports_the_value_bucket_only() {
        let mut h = StreamingHistogram::new();
        for _ in 0..3 {
            h.observe(50_000);
        }
        h.observe(5_000_000);
        h.observe(u64::MAX);
        // Any value inside the 50 µs bucket sees all three observations.
        let (lo, hi) = StreamingHistogram::bucket_bounds(50_000);
        assert_eq!(h.bucket_count(lo + 1), 3);
        assert_eq!(h.bucket_count(hi), 3);
        assert_eq!(h.bucket_count(5_000_000), 1);
        assert_eq!(h.bucket_count(u64::MAX), 1);
        assert_eq!(h.bucket_count(100), 0);
    }

    #[test]
    fn merge_is_equivalent_to_observing_everything() {
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        let mut all = StreamingHistogram::new();
        for v in [700u64, 5_000, 90_000, u64::MAX] {
            a.observe(v);
            all.observe(v);
        }
        for v in [2_500u64, 40_000_000] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum_ns(), all.sum_ns());
        assert_eq!(a.max_ns(), all.max_ns());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn bucket_upper_bound_matches_quantile_reporting() {
        assert_eq!(StreamingHistogram::bucket_upper_bound(900), 1 << 10);
        assert_eq!(StreamingHistogram::bucket_upper_bound(1 << 10), 1 << 10);
        // First sub-bucket of the first octave: 1024 + 256.
        assert_eq!(StreamingHistogram::bucket_upper_bound(1025), 1280);
        assert_eq!(StreamingHistogram::bucket_upper_bound(u64::MAX), u64::MAX);
        let mut h = StreamingHistogram::new();
        h.observe(3_000);
        assert_eq!(
            h.quantile(0.5).unwrap(),
            StreamingHistogram::bucket_upper_bound(3_000)
        );
    }

    #[test]
    fn bucket_bounds_bracket_the_value() {
        for v in [0u64, 512, 1024, 1025, 3_000, 50_000, 3_000_000, u64::MAX] {
            let (lo, hi) = StreamingHistogram::bucket_bounds(v);
            assert!(v > lo || v == 0, "{v} <= lower {lo}");
            assert!(v <= hi, "{v} > upper {hi}");
            assert_eq!(StreamingHistogram::bucket_upper_bound(v), hi);
        }
    }
}
