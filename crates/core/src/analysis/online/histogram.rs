//! Log-bucketed streaming latency histograms (constant memory).
//!
//! The online analyzer cannot keep raw latencies — at millions of
//! requests per window that would defeat the bounded-memory goal — so it
//! folds every observation into a fixed array of power-of-two buckets
//! spanning 2^10 ns (≈1 µs) to 2^36 ns (≈69 s). Quantile queries return
//! the upper bound of the bucket containing the target rank, an estimate
//! whose relative error is bounded by the bucket ratio (2×) — good enough
//! to rank p50/p99/p999 shifts, which is what the detectors consume.

use crate::telemetry::HistogramValue;

/// log2 of the first bucket's upper bound (2^10 ns ≈ 1 µs).
const SHIFT_MIN: u32 = 10;
/// log2 of the last finite bucket's upper bound (2^36 ns ≈ 68.7 s).
const SHIFT_MAX: u32 = 36;
/// Number of finite buckets; one overflow bucket rides behind them.
const FINITE: usize = (SHIFT_MAX - SHIFT_MIN + 1) as usize;

/// A fixed-size log2 histogram of nanosecond durations.
#[derive(Debug, Clone)]
pub struct StreamingHistogram {
    /// Per-bucket (non-cumulative) counts; `counts[FINITE]` is overflow.
    counts: [u64; FINITE + 1],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        StreamingHistogram {
            counts: [0; FINITE + 1],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v <= 1 << SHIFT_MIN {
            return 0;
        }
        // ceil(log2(v)) for v > 2^SHIFT_MIN.
        let log2 = 64 - (v - 1).leading_zeros();
        if log2 > SHIFT_MAX {
            FINITE
        } else {
            (log2 - SHIFT_MIN) as usize
        }
    }

    /// Fold one duration into the histogram.
    pub fn observe(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed durations (ns).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest observed duration (ns).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Estimated `q`-quantile in ns (`0.0 < q <= 1.0`), or `None` when
    /// empty. Returns the upper bound of the bucket holding the target
    /// rank; the overflow bucket reports the exact observed maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i >= FINITE {
                    self.max_ns
                } else {
                    1u64 << (SHIFT_MIN + i as u32)
                });
            }
        }
        Some(self.max_ns)
    }

    /// Upper bound (ns) of the finite bucket `ns` falls into, or
    /// `u64::MAX` for the overflow bucket. This is the value
    /// [`StreamingHistogram::quantile`] would report for a rank landing
    /// on `ns`, so accuracy tests can compare an estimate against the
    /// bucket of the exact percentile.
    pub fn bucket_upper_bound(ns: u64) -> u64 {
        let i = Self::bucket_index(ns);
        if i >= FINITE {
            u64::MAX
        } else {
            1u64 << (SHIFT_MIN + i as u32)
        }
    }

    /// Fold another histogram into this one — per-worker histograms in a
    /// load generator merge into one distribution without re-observing.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Render as a telemetry [`HistogramValue`] (cumulative counts, the
    /// layout the Prometheus exposition expects).
    pub fn to_metric(&self) -> HistogramValue {
        let mut bounds = Vec::with_capacity(FINITE);
        for shift in SHIFT_MIN..=SHIFT_MAX {
            bounds.push((1u64 << shift) as f64);
        }
        let mut counts = Vec::with_capacity(FINITE + 1);
        let mut cum = 0u64;
        for c in &self.counts {
            cum += c;
            counts.push(cum);
        }
        HistogramValue {
            bounds,
            counts,
            sum: self.sum_ns as f64,
            count: self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(StreamingHistogram::bucket_index(0), 0);
        assert_eq!(StreamingHistogram::bucket_index(1024), 0);
        assert_eq!(StreamingHistogram::bucket_index(1025), 1);
        assert_eq!(StreamingHistogram::bucket_index(2048), 1);
        assert_eq!(StreamingHistogram::bucket_index(u64::MAX), FINITE);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = StreamingHistogram::new();
        // 99 fast (≈2 µs) + 1 slow (≈1 ms): p50 small, p99+ large.
        for _ in 0..99 {
            h.observe(2_000);
        }
        h.observe(1_000_000);
        let p50 = h.quantile(0.5).unwrap();
        let p999 = h.quantile(0.999).unwrap();
        assert!(p50 <= 4_096, "p50 {p50}");
        assert!(p999 >= 1_000_000 / 2, "p999 {p999}");
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn quantile_relative_error_is_bounded_by_bucket_ratio() {
        let mut h = StreamingHistogram::new();
        for v in [10_000u64, 50_000, 250_000, 1_250_000] {
            for _ in 0..25 {
                h.observe(v);
            }
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((25_000..=100_000).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn metric_rendering_is_cumulative() {
        let mut h = StreamingHistogram::new();
        h.observe(500);
        h.observe(3_000);
        h.observe(u64::MAX); // overflow bucket
        let m = h.to_metric();
        assert_eq!(m.bounds.len(), FINITE);
        assert_eq!(m.counts.len(), FINITE + 1);
        assert_eq!(*m.counts.last().unwrap(), 3, "cumulative total");
        assert_eq!(m.count, 3);
        assert!(m.counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(StreamingHistogram::new().quantile(0.99), None);
    }

    #[test]
    fn merge_is_equivalent_to_observing_everything() {
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        let mut all = StreamingHistogram::new();
        for v in [700u64, 5_000, 90_000, u64::MAX] {
            a.observe(v);
            all.observe(v);
        }
        for v in [2_500u64, 40_000_000] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum_ns(), all.sum_ns());
        assert_eq!(a.max_ns(), all.max_ns());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn bucket_upper_bound_matches_quantile_reporting() {
        assert_eq!(StreamingHistogram::bucket_upper_bound(900), 1 << 10);
        assert_eq!(StreamingHistogram::bucket_upper_bound(1 << 10), 1 << 10);
        assert_eq!(StreamingHistogram::bucket_upper_bound(1025), 1 << 11);
        assert_eq!(StreamingHistogram::bucket_upper_bound(u64::MAX), u64::MAX);
        let mut h = StreamingHistogram::new();
        h.observe(3_000);
        assert_eq!(
            h.quantile(0.5).unwrap(),
            StreamingHistogram::bucket_upper_bound(3_000)
        );
    }
}
