//! Threshold / EWMA anomaly detectors over live metric snapshots.
//!
//! Three detectors cover the §V anomaly families the adaptive loop
//! reacts to:
//!
//! * **`progress_starvation`** — a pool's runnable backlog stays above
//!   threshold (EWMA-smoothed) while its per-completion queue wait grows:
//!   the C5/C6 signature of a progress loop competing with handler ULTs.
//! * **`pool_backlog`** — a pool's runnable depth alone stays above the
//!   backlog threshold: handlers arriving faster than they drain.
//! * **`pipeline_saturation`** — the send-side in-flight window is full
//!   and parked work accumulates, read from the PR 6 pipeline PVARs
//!   (`symbi_net_send_queue_depth`, `symbi_net_inflight`) and the margo
//!   gate gauges (`symbi_margo_pipeline_queued`).
//!
//! Every detector smooths with an EWMA and requires `consecutive`
//! over-threshold samples before firing, so one noisy snapshot cannot
//! trigger a reaction; a fired detector re-arms only after dropping below
//! threshold (level-triggered with hysteresis-by-streak).

use crate::telemetry::{MetricSnapshot, MetricValue};
use std::collections::HashMap;

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// New EWMA with smoothing factor `alpha` in (0, 1].
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(1e-6, 1.0),
            value: None,
        }
    }

    /// Fold one observation; returns the smoothed value.
    pub fn update(&mut self, v: f64) -> f64 {
        let next = match self.value {
            None => v,
            Some(prev) => prev + self.alpha * (v - prev),
        };
        self.value = Some(next);
        next
    }

    /// The current smoothed value, if any observation arrived.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Detector thresholds and smoothing.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// EWMA smoothing factor for all detectors.
    pub ewma_alpha: f64,
    /// Consecutive over-threshold samples before an anomaly fires.
    pub consecutive: u32,
    /// Runnable-ULT backlog that signals starvation (EWMA).
    pub starvation_runnable: f64,
    /// Mean queue wait per completion (ns, over the sample window) that
    /// corroborates starvation.
    pub starvation_queue_wait_ns: u64,
    /// Runnable-ULT backlog that signals a plain pool backlog (EWMA).
    pub backlog_runnable: f64,
    /// Parked/queued send-side work that signals pipeline saturation.
    pub pipeline_queued: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            ewma_alpha: 0.3,
            consecutive: 2,
            starvation_runnable: 8.0,
            starvation_queue_wait_ns: 1_000_000,
            backlog_runnable: 16.0,
            pipeline_queued: 8.0,
        }
    }
}

/// One detected anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Detector name (`progress_starvation`, `pool_backlog`,
    /// `pipeline_saturation`).
    pub detector: &'static str,
    /// What the detector fired on (a pool name, a link, …).
    pub subject: String,
    /// The observed (smoothed) value, rounded.
    pub value: u64,
    /// The threshold it crossed.
    pub threshold: u64,
}

#[derive(Debug, Default)]
struct Streak {
    ewma: Option<Ewma>,
    over: u32,
    fired: bool,
}

impl Streak {
    /// Track one observation against a threshold; true when the streak
    /// just crossed `consecutive` (fires once per excursion).
    fn track(&mut self, alpha: f64, v: f64, threshold: f64, consecutive: u32) -> Option<f64> {
        let ewma = self.ewma.get_or_insert_with(|| Ewma::new(alpha));
        let smoothed = ewma.update(v);
        if smoothed > threshold {
            self.over += 1;
            if self.over >= consecutive && !self.fired {
                self.fired = true;
                return Some(smoothed);
            }
        } else {
            self.over = 0;
            self.fired = false;
        }
        None
    }
}

/// The detector bank; feed it every telemetry snapshot.
#[derive(Debug)]
pub struct Detectors {
    config: DetectorConfig,
    /// Per-(detector, subject) streak state. Subjects are pool names and
    /// link families — a handful per instance, so the map stays tiny.
    streaks: HashMap<(&'static str, String), Streak>,
    /// Previous queue-wait / completion counters per pool, for window
    /// deltas.
    prev_pool: HashMap<String, (u64, u64)>,
    fired_total: HashMap<&'static str, u64>,
}

impl Detectors {
    /// New detector bank.
    pub fn new(config: DetectorConfig) -> Self {
        Detectors {
            config,
            streaks: HashMap::new(),
            prev_pool: HashMap::new(),
            fired_total: HashMap::new(),
        }
    }

    /// Evaluate one snapshot; returns the anomalies that fired on it.
    pub fn observe(&mut self, snap: &MetricSnapshot) -> Vec<Anomaly> {
        let mut out = Vec::new();
        self.observe_pools(snap, &mut out);
        self.observe_pipeline(snap, &mut out);
        for a in &out {
            *self.fired_total.entry(a.detector).or_insert(0) += 1;
        }
        out
    }

    /// Cumulative fire counts per detector (for `symbi_online_anomalies_total`).
    pub fn fired_total(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.fired_total.iter().map(|(k, v)| (*k, *v))
    }

    fn observe_pools(&mut self, snap: &MetricSnapshot, out: &mut Vec<Anomaly>) {
        let cfg = self.config;
        // Gather per-pool runnable gauges and queue-wait/completion
        // counters in one pass.
        let mut pools: HashMap<String, (f64, u64, u64)> = HashMap::new();
        for sp in &snap.points {
            let Some(pool) = sp
                .point
                .labels
                .iter()
                .find(|(k, _)| k == "pool")
                .map(|(_, v)| v.clone())
            else {
                continue;
            };
            let entry = pools.entry(pool).or_insert((0.0, 0, 0));
            match (sp.point.name.as_str(), &sp.point.value) {
                ("symbi_pool_runnable_ults", MetricValue::Gauge(v)) => entry.0 = *v,
                ("symbi_pool_queue_wait_ns_total", MetricValue::Counter(v)) => entry.1 = *v,
                ("symbi_pool_completed_total", MetricValue::Counter(v)) => entry.2 = *v,
                _ => {}
            }
        }
        for (pool, (runnable, wait_total, completed_total)) in pools {
            let (prev_wait, prev_completed) = self
                .prev_pool
                .get(&pool)
                .copied()
                .unwrap_or((wait_total, completed_total));
            let wait_delta = wait_total.saturating_sub(prev_wait);
            let completed_delta = completed_total.saturating_sub(prev_completed);
            let mean_wait_ns = wait_delta.checked_div(completed_delta).unwrap_or(0);
            self.prev_pool
                .insert(pool.clone(), (wait_total, completed_total));

            // Starvation: backlog AND growing per-completion queue wait.
            if mean_wait_ns >= cfg.starvation_queue_wait_ns {
                let streak = self
                    .streaks
                    .entry(("progress_starvation", pool.clone()))
                    .or_default();
                if let Some(v) = streak.track(
                    cfg.ewma_alpha,
                    runnable,
                    cfg.starvation_runnable,
                    cfg.consecutive,
                ) {
                    out.push(Anomaly {
                        detector: "progress_starvation",
                        subject: pool.clone(),
                        value: v.round() as u64,
                        threshold: cfg.starvation_runnable as u64,
                    });
                }
            } else if let Some(streak) =
                self.streaks.get_mut(&("progress_starvation", pool.clone()))
            {
                streak.over = 0;
                streak.fired = false;
            }

            // Plain backlog: runnable depth alone.
            let streak = self
                .streaks
                .entry(("pool_backlog", pool.clone()))
                .or_default();
            if let Some(v) = streak.track(
                cfg.ewma_alpha,
                runnable,
                cfg.backlog_runnable,
                cfg.consecutive,
            ) {
                out.push(Anomaly {
                    detector: "pool_backlog",
                    subject: pool,
                    value: v.round() as u64,
                    threshold: cfg.backlog_runnable as u64,
                });
            }
        }
    }

    fn observe_pipeline(&mut self, snap: &MetricSnapshot, out: &mut Vec<Anomaly>) {
        let cfg = self.config;
        // Parked send-side work: the socket transport's queue depth plus
        // margo's gate-parked jobs (whichever sources are present).
        let mut queued = 0.0;
        let mut subject = "pipeline";
        for sp in &snap.points {
            match (sp.point.name.as_str(), &sp.point.value) {
                ("symbi_net_send_queue_depth", MetricValue::Gauge(v)) => {
                    queued += v;
                    subject = "symbi_net_send_queue_depth";
                }
                ("symbi_margo_pipeline_queued", MetricValue::Gauge(v)) => {
                    queued += v;
                    subject = "symbi_margo_pipeline_queued";
                }
                _ => {}
            }
        }
        let streak = self
            .streaks
            .entry(("pipeline_saturation", "send".to_string()))
            .or_default();
        if let Some(v) = streak.track(cfg.ewma_alpha, queued, cfg.pipeline_queued, cfg.consecutive)
        {
            out.push(Anomaly {
                detector: "pipeline_saturation",
                subject: subject.to_string(),
                value: v.round() as u64,
                threshold: cfg.pipeline_queued as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{MetricPoint, SnapshotPoint};

    fn snap(points: Vec<MetricPoint>) -> MetricSnapshot {
        MetricSnapshot {
            seq: 0,
            wall_ns: 0,
            entity: None,
            points: points
                .into_iter()
                .map(|point| SnapshotPoint { point, delta: None })
                .collect(),
        }
    }

    fn pool_points(runnable: f64, wait_total: u64, completed: u64) -> Vec<MetricPoint> {
        vec![
            MetricPoint::gauge("symbi_pool_runnable_ults", runnable).with_label("pool", "p"),
            MetricPoint::counter("symbi_pool_queue_wait_ns_total", wait_total)
                .with_label("pool", "p"),
            MetricPoint::counter("symbi_pool_completed_total", completed).with_label("pool", "p"),
        ]
    }

    #[test]
    fn ewma_smooths_toward_observations() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.update(0.0), 5.0);
        assert!(e.value().unwrap() < 10.0);
    }

    #[test]
    fn backlog_fires_after_consecutive_samples_then_rearms() {
        let mut d = Detectors::new(DetectorConfig {
            consecutive: 2,
            backlog_runnable: 4.0,
            ewma_alpha: 1.0,
            ..Default::default()
        });
        assert!(d.observe(&snap(pool_points(50.0, 0, 0))).is_empty());
        let fired = d.observe(&snap(pool_points(50.0, 0, 0)));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].detector, "pool_backlog");
        assert_eq!(fired[0].subject, "p");
        // Stays quiet while the excursion persists (fires once).
        assert!(d.observe(&snap(pool_points(50.0, 0, 0))).is_empty());
        // Drops below, then re-fires on a fresh excursion.
        assert!(d.observe(&snap(pool_points(0.0, 0, 0))).is_empty());
        d.observe(&snap(pool_points(50.0, 0, 0)));
        assert_eq!(d.observe(&snap(pool_points(50.0, 0, 0))).len(), 1);
        let total: u64 = d
            .fired_total()
            .filter(|(n, _)| *n == "pool_backlog")
            .map(|(_, c)| c)
            .sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn starvation_needs_backlog_and_queue_wait_growth() {
        let mut d = Detectors::new(DetectorConfig {
            consecutive: 1,
            starvation_runnable: 4.0,
            starvation_queue_wait_ns: 1_000_000,
            ewma_alpha: 1.0,
            ..Default::default()
        });
        // Backlog but cheap queue waits: no starvation.
        d.observe(&snap(pool_points(50.0, 0, 0)));
        let quiet = d.observe(&snap(pool_points(50.0, 1_000, 100)));
        assert!(!quiet.iter().any(|a| a.detector == "progress_starvation"));
        // Backlog and ≥1 ms mean wait per completion: fires.
        let fired = d.observe(&snap(pool_points(50.0, 301_000_000, 200)));
        assert!(
            fired.iter().any(|a| a.detector == "progress_starvation"),
            "{fired:?}"
        );
    }

    #[test]
    fn pipeline_saturation_reads_net_and_margo_gauges() {
        let mut d = Detectors::new(DetectorConfig {
            consecutive: 1,
            pipeline_queued: 4.0,
            ewma_alpha: 1.0,
            ..Default::default()
        });
        let fired = d.observe(&snap(vec![
            MetricPoint::gauge("symbi_net_send_queue_depth", 3.0),
            MetricPoint::gauge("symbi_margo_pipeline_queued", 9.0).with_label("dest", "1"),
        ]));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].detector, "pipeline_saturation");
        assert_eq!(fired[0].value, 12);
    }
}
