//! Space-Saving top-K heavy hitters (Metwally et al.), keyed by callpath.
//!
//! Tracks the K heaviest keys by cumulative weight in O(K) memory. When a
//! new key arrives at capacity it replaces the current minimum and
//! inherits its weight as the entry's error bound, so `weight - error` is
//! a guaranteed lower bound on the key's true weight — the classic
//! Space-Saving guarantee. The online analyzer uses it with
//! weight = request latency, so "heavy" means "slow in aggregate", the
//! Figure 6 dominant-callpath question answered online.

use std::collections::HashMap;

/// One tracked heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopEntry {
    /// The tracked key (a callpath ancestry hash).
    pub key: u64,
    /// Cumulative weight attributed to the key (may overcount by `error`).
    pub weight: u64,
    /// Maximum possible overcount inherited at replacement time.
    pub error: u64,
}

/// A Space-Saving summary over `u64` keys.
#[derive(Debug)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<TopEntry>,
    index: HashMap<u64, usize>,
}

impl SpaceSaving {
    /// New summary tracking at most `capacity` keys (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpaceSaving {
            capacity,
            entries: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
        }
    }

    /// Attribute `weight` to `key`, evicting the minimum entry if the
    /// summary is full and the key is new.
    pub fn offer(&mut self, key: u64, weight: u64) {
        if let Some(&i) = self.index.get(&key) {
            self.entries[i].weight = self.entries[i].weight.saturating_add(weight);
            return;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(key, self.entries.len());
            self.entries.push(TopEntry {
                key,
                weight,
                error: 0,
            });
            return;
        }
        // Replace the minimum-weight entry; its weight becomes the error
        // bound of the newcomer (capacity is small, a scan is fine).
        let (min_i, _) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.weight)
            .expect("capacity >= 1");
        let evicted = self.entries[min_i];
        self.index.remove(&evicted.key);
        self.index.insert(key, min_i);
        self.entries[min_i] = TopEntry {
            key,
            weight: evicted.weight.saturating_add(weight),
            error: evicted.weight,
        };
    }

    /// Tracked entries, heaviest first.
    pub fn top(&self) -> Vec<TopEntry> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.key.cmp(&b.key)));
        out
    }

    /// Number of tracked keys (≤ capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the summary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity (the memory bound).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_heavy_hitters_exactly_under_capacity() {
        let mut s = SpaceSaving::new(4);
        s.offer(1, 10);
        s.offer(2, 5);
        s.offer(1, 10);
        let top = s.top();
        assert_eq!(top[0], {
            TopEntry {
                key: 1,
                weight: 20,
                error: 0,
            }
        });
        assert_eq!(top[1].key, 2);
    }

    #[test]
    fn eviction_keeps_true_heavy_hitters() {
        let mut s = SpaceSaving::new(2);
        // Key 100 is genuinely heavy; keys 1..=20 are one-shot noise.
        for round in 0..50 {
            s.offer(100, 1_000);
            s.offer(1 + (round % 20), 1);
        }
        let top = s.top();
        assert_eq!(top[0].key, 100);
        assert!(top[0].weight - top[0].error >= 50 * 1_000);
        assert_eq!(s.len(), 2, "memory stays at capacity");
    }

    #[test]
    fn error_bound_is_previous_minimum() {
        let mut s = SpaceSaving::new(1);
        s.offer(7, 5);
        s.offer(8, 3);
        let top = s.top();
        assert_eq!(top[0].key, 8);
        assert_eq!(top[0].weight, 8);
        assert_eq!(top[0].error, 5);
    }
}
