//! Trace analysis: time-series extraction, latency distributions, and the
//! two resource-saturation detectors used in the paper's case studies.

use crate::analysis::span_graph::dedup_events;
use crate::callpath::Callpath;
use crate::trace::{TraceEvent, TraceEventKind};
use std::collections::HashMap;

/// Extract a `(wall_ns, value)` time series from trace events, filtered
/// by event kind, using `extract` to pick the sampled value. This is the
/// primitive behind Figures 10 and 12 (blocked-ULT and
/// `num_ofi_events_read` scatter plots).
pub fn timeseries(
    events: &[TraceEvent],
    kind: TraceEventKind,
    extract: impl Fn(&TraceEvent) -> Option<u64>,
) -> Vec<(u64, u64)> {
    let mut series: Vec<(u64, u64)> = events
        .iter()
        .filter(|e| e.kind == kind)
        .filter_map(|e| extract(e).map(|v| (e.wall_ns, v)))
        .collect();
    series.sort_unstable();
    series
}

/// Order statistics over a latency population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (ns).
    pub mean_ns: f64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

/// Compute order statistics; returns `None` for an empty population.
pub fn latency_stats(values: &[u64]) -> Option<LatencyStats> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let count = sorted.len();
    let sum: u128 = sorted.iter().map(|v| *v as u128).sum();
    let pct = |p: f64| -> u64 {
        let idx = ((count as f64 - 1.0) * p).round() as usize;
        sorted[idx.min(count - 1)]
    };
    Some(LatencyStats {
        count,
        mean_ns: sum as f64 / count as f64,
        p50_ns: pct(0.50),
        p95_ns: pct(0.95),
        max_ns: sorted[count - 1],
    })
}

/// One burst of requests that started execution close together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Bucketed arrival time (ns since trace epoch).
    pub arrival_bucket_ns: u64,
    /// Requests that began execution within the bucket.
    pub n_requests: usize,
    /// Spread between the first and last completion (ns). Large spreads
    /// for simultaneous arrivals indicate back-end serialization — the
    /// "vertical line" pattern of Figure 10.
    pub completion_spread_ns: u64,
    /// Highest blocked-ULT count sampled within the burst.
    pub max_blocked: u64,
    /// Highest *waiting* work (blocked + runnable ULTs) sampled within
    /// the burst. In this reproduction a ULT blocked on a backend lock
    /// pins its execution stream, so queued (runnable) ULTs are part of
    /// the same serialization signal the paper's Figure 10 plots.
    pub max_waiting: u64,
}

/// Write-serialization detector report (Figure 10 analysis).
#[derive(Debug, Clone, Default)]
pub struct SerializationReport {
    /// Bursts of ≥2 requests, ordered by arrival.
    pub bursts: Vec<Burst>,
    /// Mean completion spread over all multi-request bursts (ns).
    pub mean_spread_ns: u64,
    /// Peak blocked-ULT count over all samples.
    pub peak_blocked: u64,
    /// Peak waiting work (blocked + runnable) over all samples.
    pub peak_waiting: u64,
    /// Mean waiting work over all samples.
    pub mean_waiting: f64,
}

impl SerializationReport {
    /// Heuristic severity in [0, 1]: how strongly the trace shows the
    /// serialized-completion pattern (requests arriving together but
    /// finishing spread out while many ULTs sit blocked).
    pub fn severity(&self) -> f64 {
        if self.bursts.is_empty() {
            return 0.0;
        }
        let serialized = self
            .bursts
            .iter()
            .filter(|b| b.n_requests >= 2 && b.max_blocked as usize >= b.n_requests / 2)
            .count();
        serialized as f64 / self.bursts.len() as f64
    }
}

/// Detect back-end write serialization from target-side trace events for
/// one callpath: bucket [`TraceEventKind::TargetUltStart`] events by
/// arrival time and measure how spread-out the matching
/// [`TraceEventKind::TargetRespond`] events are.
pub fn detect_write_serialization(
    events: &[TraceEvent],
    callpath: Callpath,
    bucket_ns: u64,
) -> SerializationReport {
    // FaultPlan message duplication re-runs handlers, producing exact
    // duplicate target events; dedup first so they can't double-count
    // bursts or waiting-ULT samples.
    let events = dedup_events(events);
    let mut completions: HashMap<u64, u64> = HashMap::new();
    for e in &events {
        if e.kind == TraceEventKind::TargetRespond && e.callpath == callpath {
            completions.insert(e.request_id, e.wall_ns);
        }
    }
    // bucket -> (starts, min_completion, max_completion, max_blocked, max_waiting)
    let mut buckets: HashMap<u64, (usize, u64, u64, u64, u64)> = HashMap::new();
    let mut peak_blocked = 0u64;
    let mut peak_waiting = 0u64;
    let mut waiting_sum = 0u128;
    let mut waiting_count = 0u64;
    for e in &events {
        if e.kind != TraceEventKind::TargetUltStart || e.callpath != callpath {
            continue;
        }
        let blocked = e.samples.blocked_ults.unwrap_or(0);
        let waiting = blocked + e.samples.runnable_ults.unwrap_or(0);
        peak_blocked = peak_blocked.max(blocked);
        peak_waiting = peak_waiting.max(waiting);
        waiting_sum += waiting as u128;
        waiting_count += 1;
        let Some(&done) = completions.get(&e.request_id) else {
            continue;
        };
        let bucket = match e.wall_ns.checked_div(bucket_ns) {
            Some(b) => b * bucket_ns,
            None => e.wall_ns,
        };
        let entry = buckets.entry(bucket).or_insert((0, u64::MAX, 0, 0, 0));
        entry.0 += 1;
        entry.1 = entry.1.min(done);
        entry.2 = entry.2.max(done);
        entry.3 = entry.3.max(blocked);
        entry.4 = entry.4.max(waiting);
    }
    let mut bursts: Vec<Burst> = buckets
        .into_iter()
        .map(
            |(arrival_bucket_ns, (n, lo, hi, max_blocked, max_waiting))| Burst {
                arrival_bucket_ns,
                n_requests: n,
                completion_spread_ns: hi.saturating_sub(lo),
                max_blocked,
                max_waiting,
            },
        )
        .collect();
    bursts.sort_by_key(|b| b.arrival_bucket_ns);
    let multi: Vec<&Burst> = bursts.iter().filter(|b| b.n_requests >= 2).collect();
    let mean_spread_ns = if multi.is_empty() {
        0
    } else {
        multi.iter().map(|b| b.completion_spread_ns).sum::<u64>() / multi.len() as u64
    };
    SerializationReport {
        bursts,
        mean_spread_ns,
        peak_blocked,
        peak_waiting,
        mean_waiting: if waiting_count == 0 {
            0.0
        } else {
            waiting_sum as f64 / waiting_count as f64
        },
    }
}

/// OFI completion-queue backlog report (Figure 12 analysis).
#[derive(Debug, Clone, Default)]
pub struct OfiBacklogReport {
    /// `(wall_ns, num_ofi_events_read)` samples.
    pub samples: Vec<(u64, u64)>,
    /// The `OFI_max_events` threshold in effect.
    pub threshold: u64,
    /// Samples that hit the threshold (queue not fully drained).
    pub breaches: usize,
}

impl OfiBacklogReport {
    /// Fraction of samples at the threshold. "Clearly the number of OFI
    /// events read consistently breaches the threshold value ...
    /// suggesting that the completion queue is backed up" (§V-C4).
    pub fn breach_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.breaches as f64 / self.samples.len() as f64
        }
    }

    /// Whether the queue shows sustained backlog (>25% of reads maxed).
    pub fn is_backed_up(&self) -> bool {
        self.breach_fraction() > 0.25
    }
}

/// Build the Figure 12 analysis from trace events: every event carrying a
/// `num_ofi_events_read` sample contributes one point.
pub fn detect_ofi_backlog(events: &[TraceEvent], threshold: u64) -> OfiBacklogReport {
    let events = dedup_events(events);
    let mut samples: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| e.samples.num_ofi_events_read.map(|v| (e.wall_ns, v)))
        .collect();
    samples.sort_unstable();
    let breaches = samples.iter().filter(|(_, v)| *v >= threshold).count();
    OfiBacklogReport {
        samples,
        threshold,
        breaches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::register_entity;
    use crate::trace::EventSamples;

    fn event(
        request_id: u64,
        wall_ns: u64,
        kind: TraceEventKind,
        callpath: Callpath,
        samples: EventSamples,
    ) -> TraceEvent {
        TraceEvent {
            request_id,
            order: 0,
            span: 0,
            parent_span: 0,
            hop: 0,
            lamport: 0,
            wall_ns,
            kind,
            entity: register_entity("ts"),
            callpath,
            samples,
        }
    }

    #[test]
    fn timeseries_filters_and_sorts() {
        let cp = Callpath::root("ts_rpc");
        let mk = |rid, t, blocked| {
            event(
                rid,
                t,
                TraceEventKind::TargetUltStart,
                cp,
                EventSamples {
                    blocked_ults: Some(blocked),
                    ..Default::default()
                },
            )
        };
        let events = vec![mk(1, 300, 5), mk(2, 100, 2), mk(3, 200, 3)];
        let series = timeseries(&events, TraceEventKind::TargetUltStart, |e| {
            e.samples.blocked_ults
        });
        assert_eq!(series, vec![(100, 2), (200, 3), (300, 5)]);
    }

    #[test]
    fn latency_stats_basic() {
        let s = latency_stats(&[10, 20, 30, 40, 100]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.p50_ns, 30);
        assert_eq!(s.max_ns, 100);
        assert!((s.mean_ns - 40.0).abs() < 1e-9);
        assert!(latency_stats(&[]).is_none());
    }

    #[test]
    fn serialization_detected_for_spread_out_completions() {
        let cp = Callpath::root("ser_rpc");
        let mut events = Vec::new();
        // 8 requests all start at ~t=1000 (same bucket) with high blocked
        // counts, completing one after another (spread = 7000).
        for i in 0..8u64 {
            events.push(event(
                i,
                1_000 + i, // same 1µs bucket
                TraceEventKind::TargetUltStart,
                cp,
                EventSamples {
                    blocked_ults: Some(7),
                    ..Default::default()
                },
            ));
            events.push(event(
                i,
                2_000 + i * 1_000,
                TraceEventKind::TargetRespond,
                cp,
                EventSamples::default(),
            ));
        }
        let report = detect_write_serialization(&events, cp, 1_000);
        assert_eq!(report.bursts.len(), 1);
        assert_eq!(report.bursts[0].n_requests, 8);
        assert_eq!(report.bursts[0].completion_spread_ns, 7_000);
        assert_eq!(report.peak_blocked, 7);
        assert!(report.severity() > 0.9);
    }

    #[test]
    fn no_serialization_for_parallel_completions() {
        let cp = Callpath::root("par_rpc");
        let mut events = Vec::new();
        for i in 0..8u64 {
            events.push(event(
                i,
                1_000 + i,
                TraceEventKind::TargetUltStart,
                cp,
                EventSamples {
                    blocked_ults: Some(0),
                    ..Default::default()
                },
            ));
            events.push(event(
                i,
                2_000 + i, // all finish together
                TraceEventKind::TargetRespond,
                cp,
                EventSamples::default(),
            ));
        }
        let report = detect_write_serialization(&events, cp, 1_000);
        assert!(report.severity() < 0.1);
        assert!(report.mean_spread_ns < 100);
    }

    #[test]
    fn serialization_ignores_other_callpaths() {
        let cp = Callpath::root("mine");
        let other = Callpath::root("other");
        let events = vec![
            event(
                1,
                0,
                TraceEventKind::TargetUltStart,
                other,
                EventSamples::default(),
            ),
            event(
                1,
                10,
                TraceEventKind::TargetRespond,
                other,
                EventSamples::default(),
            ),
        ];
        let report = detect_write_serialization(&events, cp, 1_000);
        assert!(report.bursts.is_empty());
    }

    #[test]
    fn ofi_backlog_breach_fraction() {
        let cp = Callpath::root("ofi_rpc");
        let mk = |t, v| {
            event(
                t, // reuse t as rid
                t,
                TraceEventKind::OriginComplete,
                cp,
                EventSamples {
                    num_ofi_events_read: Some(v),
                    ..Default::default()
                },
            )
        };
        // 3 of 4 samples hit the threshold of 16.
        let events = vec![mk(1, 16), mk(2, 16), mk(3, 4), mk(4, 16)];
        let report = detect_ofi_backlog(&events, 16);
        assert_eq!(report.breaches, 3);
        assert!((report.breach_fraction() - 0.75).abs() < 1e-9);
        assert!(report.is_backed_up());
    }

    #[test]
    fn ofi_backlog_healthy_queue() {
        let cp = Callpath::root("ofi_ok");
        let events: Vec<_> = (0..10u64)
            .map(|i| {
                event(
                    i,
                    i,
                    TraceEventKind::OriginComplete,
                    cp,
                    EventSamples {
                        num_ofi_events_read: Some(1 + i % 3),
                        ..Default::default()
                    },
                )
            })
            .collect();
        let report = detect_ofi_backlog(&events, 16);
        assert_eq!(report.breaches, 0);
        assert!(!report.is_backed_up());
    }

    #[test]
    fn duplicated_events_do_not_double_count() {
        // FaultPlan duplicate delivery: the exact same target events show
        // up twice in the merged stream. Bursts and OFI samples must
        // count each underlying event once.
        let cp = Callpath::root("dup_rpc");
        let mut events = Vec::new();
        for i in 0..4u64 {
            events.push(event(
                i,
                1_000 + i,
                TraceEventKind::TargetUltStart,
                cp,
                EventSamples {
                    blocked_ults: Some(3),
                    num_ofi_events_read: Some(16),
                    ..Default::default()
                },
            ));
            events.push(event(
                i,
                2_000 + i,
                TraceEventKind::TargetRespond,
                cp,
                EventSamples::default(),
            ));
        }
        let doubled: Vec<TraceEvent> = events.iter().chain(events.iter()).copied().collect();
        let clean = detect_write_serialization(&events, cp, 1_000);
        let duped = detect_write_serialization(&doubled, cp, 1_000);
        assert_eq!(clean.bursts.len(), duped.bursts.len());
        assert_eq!(
            clean.bursts[0].n_requests, duped.bursts[0].n_requests,
            "duplicates must not inflate burst sizes"
        );
        let ofi_clean = detect_ofi_backlog(&events, 16);
        let ofi_duped = detect_ofi_backlog(&doubled, 16);
        assert_eq!(ofi_clean.samples.len(), ofi_duped.samples.len());
        assert_eq!(ofi_clean.breaches, ofi_duped.breaches);
    }

    #[test]
    fn events_without_samples_are_skipped() {
        let cp = Callpath::root("nosample");
        let events = vec![event(
            1,
            5,
            TraceEventKind::OriginComplete,
            cp,
            EventSamples::default(),
        )];
        assert!(detect_ofi_backlog(&events, 16).samples.is_empty());
    }
}
