//! OS-layer system statistics (paper §IV-C: "At these instrumentation
//! points, it also samples memory usage and CPU utilization from the OS
//! layer").

use std::time::Instant;

/// A point-in-time OS-level sample for the current process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SysStats {
    /// Resident set size in KiB (`/proc/self/statm`), 0 if unavailable.
    pub memory_kb: u64,
    /// Cumulative user+system CPU time in milliseconds
    /// (`/proc/self/stat`), 0 if unavailable.
    pub cpu_time_ms: u64,
}

impl SysStats {
    /// Take a fresh sample. Falls back to zeros on non-Linux systems or
    /// if `/proc` is unreadable, so instrumentation never fails the
    /// request path.
    pub fn sample() -> SysStats {
        SysStats {
            memory_kb: read_rss_kb().unwrap_or(0),
            cpu_time_ms: read_cpu_ms().unwrap_or(0),
        }
    }

    /// Take a sample, reusing the last one if it is younger than 1 ms.
    /// OS statistics move on millisecond scales while trace events can be
    /// microseconds apart; caching keeps the §VI overhead claim honest
    /// without losing signal (standard practice in monitoring tools).
    pub fn sample_cached() -> SysStats {
        Self::sample_cached_with_ttl(std::time::Duration::from_millis(1))
    }

    /// Take a sample, reusing the last one if it is younger than `ttl`.
    /// The cache is process-global (there is one `/proc/self`), so callers
    /// with different TTLs share it: a sample is refreshed whenever it is
    /// older than the *calling* site's TTL, and a longer-TTL caller may be
    /// served a fresher value than it asked for — never a staler one.
    pub fn sample_cached_with_ttl(ttl: std::time::Duration) -> SysStats {
        use parking_lot::Mutex;
        use std::sync::OnceLock;
        static CACHE: OnceLock<Mutex<(Instant, SysStats)>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new((Instant::now(), SysStats::sample())));
        let mut guard = cache.lock();
        if guard.0.elapsed() > ttl {
            *guard = (Instant::now(), SysStats::sample());
        }
        guard.1
    }
}

fn read_rss_kb() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let rss_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    // Page size is 4 KiB on every platform we target.
    Some(rss_pages * 4)
}

fn read_cpu_ms() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields 14 and 15 (1-indexed) are utime/stime in clock ticks; the
    // command name (field 2) may contain spaces, so split after the last ')'.
    let after = stat.rsplit_once(')')?.1;
    let mut fields = after.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    // Clock tick is 100 Hz on the systems we target → 10 ms per tick.
    Some((utime + stime) * 10)
}

/// Utility for measuring elapsed wall time in integer nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Start timing.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed nanoseconds since start.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// The underlying start instant.
    pub fn started_at(&self) -> Instant {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_returns_plausible_values() {
        let s = SysStats::sample();
        // On Linux this process certainly has >1 MiB resident.
        if cfg!(target_os = "linux") {
            assert!(s.memory_kb > 1024, "rss {} KiB too small", s.memory_kb);
        }
    }

    #[test]
    fn cpu_time_is_monotone() {
        let a = SysStats::sample().cpu_time_ms;
        // Burn a bit of CPU.
        let mut x = 0u64;
        for i in 0..3_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = SysStats::sample().cpu_time_ms;
        assert!(b >= a);
    }

    #[test]
    fn cached_cpu_time_is_monotone_non_decreasing() {
        // Whatever mix of cache hits and refreshes the TTL produces, the
        // cumulative CPU-time series a caller observes must never go
        // backwards.
        let mut last = SysStats::sample_cached_with_ttl(std::time::Duration::from_micros(200));
        let mut x = 0u64;
        for i in 0..50u64 {
            for j in 0..200_000u64 {
                x = x.wrapping_add(i * j);
            }
            std::hint::black_box(x);
            let s = SysStats::sample_cached_with_ttl(std::time::Duration::from_micros(200));
            assert!(
                s.cpu_time_ms >= last.cpu_time_ms,
                "cpu time went backwards: {} -> {}",
                last.cpu_time_ms,
                s.cpu_time_ms
            );
            last = s;
        }
    }

    #[test]
    fn stopwatch_measures_elapsed() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(sw.elapsed_ns() >= 4_000_000);
    }

    #[test]
    fn sampling_is_fast_enough_for_hot_paths() {
        // The paper's overhead result depends on sampling being cheap;
        // guard against accidental slow paths (e.g. reading /proc with
        // buffered readers per byte). 2000 samples should be well under a
        // second even on a loaded CI box.
        let sw = Stopwatch::start();
        for _ in 0..2000 {
            std::hint::black_box(SysStats::sample());
        }
        assert!(sw.elapsed_ns() < 2_000_000_000);
    }
}
