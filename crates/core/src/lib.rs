//! # symbi-core — the SYMBIOSYS measurement and analysis framework
//!
//! This crate is the paper's primary contribution (IPDPS 2021, §IV): an
//! *integrated* performance instrumentation, measurement, and analysis
//! framework for microservice-based HPC data services. It provides:
//!
//! * **Distributed callpath profiling** ([`callpath`], [`profile`]) —
//!   64-bit callpath-ancestry hashes propagated along RPC chains, with
//!   per-entity `(callpath, peer)` profiles of the nine Table III
//!   intervals ([`intervals`]).
//! * **Distributed request tracing** ([`trace`], [`lamport`]) — events at
//!   t1/t14 (origin) and t5/t8 (target) carrying request ids, order
//!   counters, Lamport clocks, and fused performance samples.
//! * **Performance-data exchange** — the Margo layer samples Mercury's
//!   PVAR interface (implemented in `symbi-mercury`) and the tasking and
//!   OS layers ([`sampling`]) at the instrumentation points, fusing the
//!   values into trace events and profiles (§IV-C).
//! * **Analysis** ([`analysis`], [`zipkin`]) — the "scripts" of §V/§VI:
//!   profile summaries (dominant callpaths), trace stitching + Zipkin
//!   JSON export, system-statistics summaries, unaccounted-time
//!   decomposition, and resource-saturation detectors.
//! * **Overhead staging** ([`Stage`]) — Baseline / Stage 1 / Stage 2 /
//!   Full Support, as in the §VI overhead study.
//!
//! The [`Symbiosys`] context object ties these together; one instance is
//! attached to each Margo instance (see `symbi-margo`).

pub mod analysis;
pub mod callpath;
pub mod entity;
pub mod intervals;
pub mod lamport;
pub mod profile;
pub mod sampling;
pub mod stage;
pub mod telemetry;
pub mod trace;
pub mod zipkin;

pub use callpath::Callpath;
pub use entity::{entity_name, register_entity, EntityId, UNKNOWN_ENTITY};
pub use intervals::{Interval, Strategy};
pub use lamport::LamportClock;
pub use profile::{ProfileRow, Profiler, Side};
pub use sampling::{Stopwatch, SysStats};
pub use stage::Stage;
pub use telemetry::{MetricPoint, MetricSnapshot, MetricValue, SnapshotPoint, TelemetryRegistry};
pub use trace::{now_ns, EventSamples, TraceEvent, TraceEventKind, Tracer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The per-entity SYMBIOSYS context: one per Margo instance.
///
/// Bundles the measurement stage, the entity identity, the callpath
/// profiler, the trace buffer, the Lamport clock, and the request-id
/// generator. All members are individually thread-safe; the context is
/// shared via [`Arc`].
pub struct Symbiosys {
    stage: Stage,
    entity: EntityId,
    profiler: Profiler,
    tracer: Tracer,
    lamport: LamportClock,
    req_seq: AtomicU64,
    span_seq: AtomicU64,
}

impl std::fmt::Debug for Symbiosys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Symbiosys(entity={}, stage={}, profile_rows={}, trace_events={})",
            entity_name(self.entity),
            self.stage,
            self.profiler.len(),
            self.tracer.len()
        )
    }
}

impl Symbiosys {
    /// Create a context for a new entity at the given measurement stage.
    pub fn new(entity_name: &str, stage: Stage) -> Arc<Self> {
        Arc::new(Symbiosys {
            stage,
            entity: register_entity(entity_name),
            profiler: Profiler::new(),
            tracer: Tracer::new(),
            lamport: LamportClock::new(),
            req_seq: AtomicU64::new(1),
            span_seq: AtomicU64::new(1),
        })
    }

    /// The measurement stage in effect.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// This context's entity id.
    pub fn entity(&self) -> EntityId {
        self.entity
    }

    /// The callpath profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The trace buffer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The Lamport clock.
    pub fn lamport(&self) -> &LamportClock {
        &self.lamport
    }

    /// Generate a globally unique request (trace) id: entity id in bits
    /// 40.., the [`process_nonce`] in bits 32..40, and a local sequence
    /// number in the low 32 bits (§IV-A2: "the end-client generates a
    /// globally unique request ID"). The nonce keeps ids distinct across
    /// the OS processes of a multi-process deployment, where entity
    /// registration order — and therefore entity ids — can repeat.
    pub fn next_request_id(&self) -> u64 {
        (self.entity.0 << 40)
            | (process_nonce() << 32)
            | (self.req_seq.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff)
    }

    /// Generate a globally unique span id for one RPC attempt. Uses the
    /// same entity/nonce-prefixed layout as request ids but a separate
    /// sequence, so span ids are unique across every entity that issues
    /// sub-RPCs — in every process of the deployment.
    pub fn next_span_id(&self) -> u64 {
        (self.entity.0 << 40)
            | (process_nonce() << 32)
            | (self.span_seq.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff)
    }
}

/// The per-process id nonce occupying bits 32..40 of request and span
/// ids.
///
/// Entity ids are assigned by per-process registration order, so two OS
/// processes of one deployment can hold the same entity id for different
/// entities; without a process discriminator their request/span ids would
/// collide and `symbi-analyze` would stitch unrelated spans together when
/// merging per-process flight rings. Reads `SYMBI_NET_NODE_ID` when set
/// (so the nonce is stable and log-correlatable under `symbi-deploy`),
/// otherwise derives 8 bits from the pid and clock. Computed once per
/// process.
pub fn process_nonce() -> u64 {
    use std::sync::OnceLock;
    static NONCE: OnceLock<u64> = OnceLock::new();
    *NONCE.get_or_init(|| {
        if let Ok(v) = std::env::var("SYMBI_NET_NODE_ID") {
            if let Ok(n) = v.trim().parse::<u64>() {
                return n & 0xff;
            }
        }
        let pid = std::process::id() as u64;
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut z = pid.rotate_left(32) ^ nanos;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & 0xff
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_wires_up_components() {
        let sym = Symbiosys::new("ctx-test", Stage::Full);
        assert_eq!(sym.stage(), Stage::Full);
        assert!(sym.profiler().is_empty());
        assert!(sym.tracer().is_empty());
        assert_eq!(sym.lamport().now(), 0);
    }

    #[test]
    fn request_ids_unique_within_entity() {
        let sym = Symbiosys::new("rid", Stage::Full);
        let a = sym.next_request_id();
        let b = sym.next_request_id();
        assert_ne!(a, b);
    }

    #[test]
    fn request_ids_unique_across_entities() {
        let s1 = Symbiosys::new("rid-a", Stage::Full);
        let s2 = Symbiosys::new("rid-b", Stage::Full);
        assert_ne!(s1.next_request_id(), s2.next_request_id());
    }

    #[test]
    fn ids_carry_the_process_nonce() {
        let sym = Symbiosys::new("nonce-bits", Stage::Full);
        let rid = sym.next_request_id();
        let sid = sym.next_span_id();
        let nonce = process_nonce();
        assert!(nonce <= 0xff);
        assert_eq!((rid >> 32) & 0xff, nonce);
        assert_eq!((sid >> 32) & 0xff, nonce);
        // The nonce is stable within one process.
        assert_eq!((sym.next_request_id() >> 32) & 0xff, nonce);
    }

    #[test]
    fn debug_format_mentions_entity() {
        let sym = Symbiosys::new("dbg-entity", Stage::Measure);
        let s = format!("{sym:?}");
        assert!(s.contains("dbg-entity"));
        assert!(s.contains("Stage 2"));
    }
}
